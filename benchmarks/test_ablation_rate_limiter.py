"""Ablation: rate-limiting background I/O to protect read tails.

The paper's interference findings (Figures 6/10/14) come from compaction
and flush I/O competing with foreground reads.  RocksDB's deployment-side
mitigation is a background rate limiter; this ablation quantifies the
read-tail/throughput trade on the SATA flash device, where interference is
worst.
"""

from repro.harness.experiments import run_workload
from repro.harness.report import ExperimentResult
from repro.sim.units import mb

from conftest import regenerate


def ablation(preset):
    res = ExperimentResult(
        exp_id="ablation-ratelimit",
        title="Background I/O rate limiter (SATA flash, R/W 1:1)",
        columns=["limit_mb_s", "kops", "read_p90_us", "write_p90_us"],
        paper_expectation=(
            "throttling background I/O shortens foreground read tails at "
            "some cost in sustained write throughput"
        ),
    )
    for limit in (0, 8):
        opts = preset.options(rate_limit_bytes_per_sec=limit * mb(1))
        run = run_workload("sata-flash", preset, write_fraction=0.5,
                           options=opts, seed=17)
        res.add_row(
            limit_mb_s=limit if limit else "off",
            kops=round(run.result.kops, 1),
            read_p90_us=round(run.result.read_latency.percentile(90) / 1e3, 1),
            write_p90_us=round(run.result.write_latency.percentile(90) / 1e3, 1),
        )
    return res


def test_ablation_rate_limiter(benchmark, preset):
    res = regenerate(benchmark, ablation, preset)
    unlimited = res.row_for(limit_mb_s="off")
    limited = res.row_for(limit_mb_s=8)
    # The limited run must not be catastrophically slower overall, and its
    # foreground read tail should not be longer.
    assert limited["read_p90_us"] <= unlimited["read_p90_us"] * 1.1
    assert limited["kops"] > 0.5 * unlimited["kops"]
