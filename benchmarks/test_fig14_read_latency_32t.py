"""Figure 14: read latency at 32 threads."""

from repro.harness.experiments import fig14_read_latency_32t

from conftest import regenerate


def test_fig14_read_latency_32t(benchmark, preset):
    res = regenerate(benchmark, fig14_read_latency_32t, preset)
    xp = res.row_for(device="xpoint")["p90_us"]
    sata = res.row_for(device="sata-flash")["p90_us"]
    # Paper: XPoint read p90 (335 us) ~76% below SATA flash (1.4 ms).
    assert xp < 0.6 * sata
