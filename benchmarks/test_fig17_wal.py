"""Figure 17: write latency with and without the WAL."""

from repro.harness.experiments import fig17_wal

from conftest import regenerate


def test_fig17_wal(benchmark, preset):
    res = regenerate(benchmark, fig17_wal, preset)
    # Paper: disabling the WAL cuts write p90 substantially on every device
    # (XPoint: 54 -> 22 us).
    for device in ("sata-flash", "pcie-flash", "xpoint"):
        on = res.row_for(device=device, wal="on")["write_p90_us"]
        off = res.row_for(device=device, wal="off")["write_p90_us"]
        assert off < on, device
    xp_on = res.row_for(device="xpoint", wal="on")["write_p90_us"]
    xp_off = res.row_for(device="xpoint", wal="off")["write_p90_us"]
    assert xp_off < 0.85 * xp_on
