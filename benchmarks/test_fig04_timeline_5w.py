"""Figure 4: throughput timeline at 5% writes (smooth everywhere)."""

from repro.harness.experiments import fig04_timeline_5w

from conftest import regenerate


def test_fig04_timeline_5w(benchmark, preset):
    res = regenerate(benchmark, fig04_timeline_5w, preset)
    for row in res.rows:
        # Light writes: no near-stop valleys on any device.
        assert row["near_stop_frac"] <= 0.05, row
        assert row["mean_kops"] > 0
