"""Figure 10: read tail latency vs number of Level-0 files."""

from repro.harness.experiments import fig10_read_latency_vs_l0

from conftest import regenerate


def test_fig10_read_latency_vs_l0(benchmark, preset):
    res = regenerate(benchmark, fig10_read_latency_vs_l0, preset)
    # Fewer Level-0 files -> shorter read tails on XPoint (paper: 101 us at
    # 2 files vs 134 us at 8).
    xp = sorted(
        (r for r in res.rows if r["device"] == "xpoint"),
        key=lambda r: r["avg_l0_files"],
    )
    assert xp[0]["read_p90_us"] < xp[-1]["read_p90_us"]
