"""Figure 18: two-stage throttling removes the near-stop situation."""

from repro.harness.experiments import fig18_two_stage

from conftest import regenerate


def test_fig18_two_stage(benchmark, preset):
    res = regenerate(benchmark, fig18_two_stage, preset)
    original = res.row_for(controller="original")
    two_stage = res.row_for(controller="two-stage")
    # Two-stage throttling lifts the throughput floor and spends no more
    # time near-stopped than the original (paper: valleys disappear).
    assert two_stage["near_stop_frac"] <= original["near_stop_frac"]
    assert two_stage["min_kops"] >= original["min_kops"]
    # Mean throughput must not regress materially.
    assert two_stage["mean_kops"] > 0.85 * original["mean_kops"]
