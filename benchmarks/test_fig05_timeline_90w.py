"""Figure 5: throughput timeline at 90% writes (throttling valleys)."""

from repro.harness.experiments import fig05_timeline_90w

from conftest import regenerate


def test_fig05_timeline_90w(benchmark, preset):
    res = regenerate(benchmark, fig05_timeline_90w, preset)
    xp = res.row_for(device="xpoint")
    # Paper: XPoint oscillates between ~169 kop/s bursts and ~3 kop/s
    # valleys.  Require a deep peak-to-valley swing.
    assert xp["max_kops"] > 3 * max(xp["min_kops"], 1.0)
    assert xp["cov"] > 0.25
    # Throttling bites harder on XPoint than at 5% writes on any device.
    assert xp["min_kops"] < xp["mean_kops"]
