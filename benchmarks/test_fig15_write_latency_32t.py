"""Figure 15: write latency at 32 threads — the write-tail inversion.

The paper reports XPoint write p90 (440 us) far above SATA flash (47 us):
fast reads recycle threads into the writer queue and the write path stalls.
In this reproduction the same mechanism appears (Figure 16's waiting-writer
inversion reproduces directly), but the stalls concentrate in the extreme
tail: XPoint keeps the *fastest median* writes while its p99 collapses into
the same multi-millisecond class as the 16x-slower SATA device — the
device speedup does not carry over to write tails.
"""

from repro.harness.experiments import fig15_write_latency_32t

from conftest import regenerate


def test_fig15_write_latency_32t(benchmark, preset):
    res = regenerate(benchmark, fig15_write_latency_32t, preset)
    xp = res.row_for(device="xpoint")
    sata = res.row_for(device="sata-flash")
    # The fast device wins the median...
    assert xp["p50_us"] < sata["p50_us"]
    # ...but its write tail blows up by orders of magnitude over its own
    # median (throttling + writer-queue stalls)...
    assert xp["p99_us"] > 20 * xp["p50_us"]
    # ...and does NOT improve with the ~16x faster device: write tails are
    # software-bound (the paper's inversion, expressed at the p99).
    assert xp["p99_us"] > 0.2 * sata["p99_us"]
