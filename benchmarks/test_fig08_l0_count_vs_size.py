"""Figure 8: number of Level-0 files vs Level-0 file size."""

from repro.harness.experiments import _l0_size_multipliers, fig08_l0_count_vs_size

from conftest import regenerate


def test_fig08_l0_count_vs_size(benchmark, preset):
    res = regenerate(benchmark, fig08_l0_count_vs_size, preset)
    # Larger Level-0 files -> fewer Level-0 files, on every device.
    for device in ("sata-flash", "pcie-flash", "xpoint"):
        rows = sorted(
            (r for r in res.rows if r["device"] == device),
            key=lambda r: r["file_size_mb"],
        )
        counts = [r["avg_l0_files"] for r in rows]
        assert counts[0] > counts[-1], (device, counts)
