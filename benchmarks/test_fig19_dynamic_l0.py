"""Figure 19: dynamic Level-0 management vs default."""

from repro.harness.experiments import fig19_dynamic_l0

from conftest import regenerate


def test_fig19_dynamic_l0(benchmark, preset):
    res = regenerate(benchmark, fig19_dynamic_l0, preset)
    # Read-heavy: dynamic L0 wins (paper: +13% at 90% reads).
    best = res.row_for(read_ratio=0.9)
    assert best["dynamic_kops"] > best["default_kops"]
    # Write-heavy: both configurations coincide (paper: similar at 5% reads).
    tie = res.row_for(read_ratio=0.05)
    assert abs(tie["gain_pct"]) < 10
