"""Figure 7: write latency at 90% writes."""

from repro.harness.experiments import fig07_write_latency_90w

from conftest import regenerate


def test_fig07_write_latency_90w(benchmark, preset):
    res = regenerate(benchmark, fig07_write_latency_90w, preset)
    xp = res.row_for(device="xpoint")["p90_us"]
    sata = res.row_for(device="sata-flash")["p90_us"]
    # Paper: write p90 close across devices (26 us XPoint vs 28 us SATA) —
    # writes land in the memtable, so the device matters far less than for
    # reads.  Accept a 3x band.
    assert max(xp, sata) < 3 * min(xp, sata)
