"""Figure 3: throughput vs insertion ratio on three devices."""

from repro.harness.experiments import FIG3_RATIOS, fig03_insertion_ratio

from conftest import regenerate


def series_for(res, device):
    return [res.row_for(device=device, write_fraction=wf)["kops"] for wf in FIG3_RATIOS]


def test_fig03_insertion_ratio(benchmark, preset):
    res = regenerate(benchmark, fig03_insertion_ratio, preset)
    xp = series_for(res, "xpoint")
    pcie = series_for(res, "pcie-flash")
    sata = series_for(res, "sata-flash")

    # XPoint falls as the insertion ratio rises (paper: 115 -> 45 kop/s).
    assert xp[0] > 1.5 * xp[-1]
    # Flash ends higher than it starts (paper PCIe: 32 -> 41.3 kop/s).
    assert pcie[-1] > pcie[0]
    assert sata[-1] > sata[0]
    # XPoint dominates at read-heavy mixes...
    assert xp[0] > 2.5 * pcie[0] > 2.5 * 0.9 * sata[0]
    # ...but converges toward PCIe flash at 100% writes (paper: 45 vs 41.3).
    assert abs(xp[-1] - pcie[-1]) / pcie[-1] < 0.35
