"""Figure 12: write tail latency vs SST/memtable size."""

from repro.harness.experiments import fig12_write_latency_vs_sst

from conftest import regenerate


def test_fig12_write_latency_vs_sst(benchmark, preset):
    res = regenerate(benchmark, fig12_write_latency_vs_sst, preset)
    # O(log N) skiplist insertion: the median grows with memtable size on
    # every device (paper SATA: 25 -> 31 us p90 from 64 to 256 MB).  Tails
    # on the flash devices are dominated by device noise at this scale, so
    # the p90 check applies where software dominates — XPoint, which is the
    # paper's point about software costs surfacing on fast storage.
    for device in ("sata-flash", "pcie-flash", "xpoint"):
        rows = sorted(
            (r for r in res.rows if r["device"] == device),
            key=lambda r: r["file_size_mb"],
        )
        assert rows[-1]["write_p50_us"] > rows[0]["write_p50_us"], device
    xp = sorted(
        (r for r in res.rows if r["device"] == "xpoint"),
        key=lambda r: r["file_size_mb"],
    )
    assert xp[-1]["write_p90_us"] > xp[0]["write_p90_us"]
