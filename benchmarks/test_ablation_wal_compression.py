"""Ablation (Section VI implication): compressing the write-ahead log."""

from repro.harness.experiments import run_workload
from repro.harness.report import ExperimentResult

from conftest import regenerate


def ablation(preset):
    res = ExperimentResult(
        exp_id="ablation-walz",
        title="WAL compression (3D XPoint, 90% insertion)",
        columns=["compression", "kops", "write_p90_us", "wal_mb"],
        paper_expectation=(
            "Section VI: compressing the log trades CPU for log I/O traffic"
        ),
    )
    for compressed in (False, True):
        opts = preset.options(wal_compression=compressed)
        run = run_workload("xpoint", preset, write_fraction=0.9,
                           options=opts, seed=17)
        res.add_row(
            compression="on" if compressed else "off",
            kops=round(run.result.kops, 1),
            write_p90_us=round(run.result.write_latency.percentile(90) / 1e3, 1),
            wal_mb=round(run.db.wal.bytes_written / 2**20, 1),
        )
    return res


def test_ablation_wal_compression(benchmark, preset):
    res = regenerate(benchmark, ablation, preset)
    on = res.row_for(compression="on")
    off = res.row_for(compression="off")
    # Log traffic per op must shrink by roughly the compression ratio.
    assert on["wal_mb"] / max(on["kops"], 1e-9) < 0.8 * (
        off["wal_mb"] / max(off["kops"], 1e-9)
    )
