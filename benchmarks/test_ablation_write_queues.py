"""Ablation (Section VI implication): multiple short write queues.

The paper suggests "multiple short write thread queues rather than one
single long queue" to relieve the writer-queue pressure Figure 15/16 expose
on 3D XPoint.  This ablation compares 1 vs 4 queue shards at 32 threads.
"""

from repro.harness.experiments import run_workload
from repro.harness.report import ExperimentResult

from conftest import regenerate


def ablation(preset):
    res = ExperimentResult(
        exp_id="ablation-wq",
        title="Write-queue sharding at 32 threads (3D XPoint, R/W 1:1)",
        columns=["queues", "kops", "write_p90_us", "mean_waiting"],
        paper_expectation=(
            "Section VI: more queues -> more overlap, shorter writer waits"
        ),
    )
    for shards in (1, 4):
        opts = preset.options(write_queue_shards=shards)
        run = run_workload("xpoint", preset, write_fraction=0.5,
                           processes=32, options=opts, seed=17)
        res.add_row(
            queues=shards,
            kops=round(run.result.kops, 1),
            write_p90_us=round(run.result.write_latency.percentile(90) / 1e3, 1),
            mean_waiting=round(run.result.mean_waiting_writers, 2),
        )
    return res


def test_ablation_write_queues(benchmark, preset):
    res = regenerate(benchmark, ablation, preset)
    one = res.row_for(queues=1)
    four = res.row_for(queues=4)
    # Sharding must not collapse throughput; queueing should not worsen.
    assert four["kops"] > 0.8 * one["kops"]
    assert four["mean_waiting"] <= one["mean_waiting"] * 1.1
