"""Figure 9: throughput vs number of Level-0 files."""

from repro.harness.experiments import fig09_throughput_vs_l0

from conftest import regenerate


def rows_for(res, device):
    return sorted(
        (r for r in res.rows if r["device"] == device),
        key=lambda r: r["avg_l0_files"],
    )


def test_fig09_throughput_vs_l0(benchmark, preset):
    res = regenerate(benchmark, fig09_throughput_vs_l0, preset)
    xp = rows_for(res, "xpoint")
    pcie = rows_for(res, "pcie-flash")
    # More L0 files -> lower throughput on XPoint (paper: -19.9%).
    assert xp[-1]["kops"] < xp[0]["kops"]
    xp_drop = (xp[0]["kops"] - xp[-1]["kops"]) / xp[0]["kops"]
    pcie_drop = (pcie[0]["kops"] - pcie[-1]["kops"]) / max(pcie[0]["kops"], 1e-9)
    # The relative penalty is larger on the faster device (paper's point).
    assert xp_drop > pcie_drop
