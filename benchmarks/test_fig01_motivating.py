"""Figure 1: motivating example — raw device vs RocksDB throughput."""

from repro.harness.experiments import fig01_motivating

from conftest import regenerate


def test_fig01_motivating(benchmark, preset):
    res = regenerate(benchmark, fig01_motivating, preset)
    raw_sata = res.row_for(system="raw", device="sata-flash")["kops"]
    raw_xp = res.row_for(system="raw", device="xpoint")["kops"]
    kv_sata = res.row_for(system="rocksdb", device="sata-flash")["kops"]
    kv_xp = res.row_for(system="rocksdb", device="xpoint")["kops"]

    # Paper: raw 26 -> 408 kop/s. Calibrated to land near those numbers.
    assert 15 < raw_sata < 40
    assert 280 < raw_xp < 550
    # The headline: raw speedup (15.7x) dwarfs the end-to-end speedup.
    raw_speedup = raw_xp / raw_sata
    kv_speedup = kv_xp / kv_sata
    assert raw_speedup > 10
    assert kv_speedup < raw_speedup / 2
