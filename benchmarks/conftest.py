"""Benchmark-suite configuration.

Each benchmark regenerates one paper figure at the active scale preset
(``REPRO_PRESET``, default ``small``) and prints the regenerated rows/series
next to the paper's expectation.  ``REPRO_BENCH_SECONDS`` bounds the
simulated duration per run (default 2.5 s — enough for several flush +
compaction + stall cycles at the ``small`` scale).

Runs are memoized across benchmarks that share workloads (e.g. Figures
13–16 all use the parallelism sweep), exactly as the paper derives several
figures from one experiment.
"""

import os

import pytest

os.environ.setdefault("REPRO_BENCH_SECONDS", "2.5")

from repro.harness.presets import bench_preset  # noqa: E402


@pytest.fixture(scope="session")
def preset():
    return bench_preset()


def regenerate(benchmark, experiment, preset):
    """Run one experiment under pytest-benchmark and print its report."""
    result = benchmark.pedantic(experiment, args=(preset,), rounds=1, iterations=1)
    print()
    print(result.render())
    return result
