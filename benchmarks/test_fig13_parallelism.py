"""Figure 13: throughput vs parallelism."""

from repro.harness.experiments import PARALLELISM_LEVELS, fig13_parallelism

from conftest import regenerate


def test_fig13_parallelism(benchmark, preset):
    res = regenerate(benchmark, fig13_parallelism, preset)
    # Paper: throughput rises with threads on all devices (XPoint
    # 35.4 -> 79.5 kop/s from 1 to 32).
    for device in ("sata-flash", "pcie-flash", "xpoint"):
        one = res.row_for(device=device, processes=1)["kops"]
        many = res.row_for(device=device, processes=32)["kops"]
        assert many > 1.4 * one, device
