"""Figure 20: write latency vs logging configuration."""

from repro.harness.experiments import fig20_nvm_wal

from conftest import regenerate


def test_fig20_nvm_wal(benchmark, preset):
    res = regenerate(benchmark, fig20_nvm_wal, preset)
    ssd = res.row_for(config="wal-ssd")["write_p90_us"]
    nvm = res.row_for(config="wal-nvm")["write_p90_us"]
    off = res.row_for(config="wal-off")["write_p90_us"]
    # Paper: NVM logging cuts write p90 ~18.8% vs SSD logging, yet cannot
    # reach the WAL-off floor.
    assert nvm < ssd
    assert off < nvm
    gain = (ssd - nvm) / ssd
    assert 0.05 < gain < 0.6
