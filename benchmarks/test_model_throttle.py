"""Analysis #1: the analytic throttle model (Equations 1-2)."""

import pytest

from repro.harness.experiments import model_throttle

from conftest import regenerate


def test_model_throttle(benchmark, preset):
    res = regenerate(benchmark, model_throttle, preset)
    xp = res.row_for(device="xpoint")
    sata = res.row_for(device="sata-flash")
    # Paper's computed values: 2.74 and 1.88 kop/s.
    assert xp["lambda_a_kops"] == pytest.approx(2.74, abs=0.01)
    assert sata["lambda_a_kops"] == pytest.approx(1.88, abs=0.01)
