"""Figure 16: average waiting writer threads at 32 threads."""

from repro.harness.experiments import fig16_waiting_threads

from conftest import regenerate


def test_fig16_waiting_threads(benchmark, preset):
    res = regenerate(benchmark, fig16_waiting_threads, preset)
    xp = res.row_for(device="xpoint")["mean_waiting"]
    sata = res.row_for(device="sata-flash")["mean_waiting"]
    pcie = res.row_for(device="pcie-flash")["mean_waiting"]
    # Paper: evidently more writers queue on XPoint than on the flash SSDs.
    assert xp >= sata
    assert xp >= pcie * 0.9
