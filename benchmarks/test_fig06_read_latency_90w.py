"""Figure 6: read latency at 90% writes."""

from repro.harness.experiments import fig06_read_latency_90w

from conftest import regenerate


def test_fig06_read_latency_90w(benchmark, preset):
    res = regenerate(benchmark, fig06_read_latency_90w, preset)
    xp = res.row_for(device="xpoint")
    sata = res.row_for(device="sata-flash")
    pcie = res.row_for(device="pcie-flash")
    # Paper: XPoint read p90 251 us vs SATA flash 839 us (~3x shorter).
    assert xp["p90_us"] < pcie["p90_us"] < sata["p90_us"]
    assert sata["p90_us"] > 2 * xp["p90_us"]
    for row in res.rows:
        assert row["p50_us"] <= row["p90_us"] <= row["p99_us"]
