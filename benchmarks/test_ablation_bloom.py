"""Ablation: bloom filters vs the paper's Level-0 query overhead.

The paper's Finding #2 exists because RocksDB's default table format has no
filter policy: every L0 file whose range covers a key must be searched.
Enabling a 10-bits/key bloom filter removes most of those probes' block
reads — quantifying how much of the L0 overhead is 'just' a configuration
default.
"""

from repro.core.bottlenecks import read_amplification
from repro.harness.experiments import run_workload
from repro.harness.report import ExperimentResult

from conftest import regenerate


def ablation(preset):
    res = ExperimentResult(
        exp_id="ablation-bloom",
        title="Bloom filters vs L0 query overhead (3D XPoint, R/W 1:1)",
        columns=["bloom_bits", "kops", "read_p90_us", "dev_reads_per_get"],
        paper_expectation=(
            "with bloom filters the per-L0-file search cost mostly vanishes"
        ),
    )
    for bits in (0, 10):
        opts = preset.options(bloom_bits_per_key=bits)
        run = run_workload("xpoint", preset, write_fraction=0.5,
                           options=opts, seed=17)
        res.add_row(
            bloom_bits=bits,
            kops=round(run.result.kops, 1),
            read_p90_us=round(run.result.read_latency.percentile(90) / 1e3, 1),
            dev_reads_per_get=round(read_amplification(run.db), 2),
        )
    return res


def test_ablation_bloom(benchmark, preset):
    res = regenerate(benchmark, ablation, preset)
    plain = res.row_for(bloom_bits=0)
    bloom = res.row_for(bloom_bits=10)
    # Fewer device reads per GET with filters.
    assert bloom["dev_reads_per_get"] < plain["dev_reads_per_get"]
    assert bloom["kops"] >= plain["kops"] * 0.95
