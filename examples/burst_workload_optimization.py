#!/usr/bin/env python3
"""Case study A in action: removing the near-stop situation.

Reproduces the paper's Figure 18 scenario at demo scale: a workload with
periodic write bursts drives stock RocksDB-style throttling into near-stop
(< 10 kop/s) valleys on a 3D XPoint SSD; the paper's two-stage throttling
keeps a floor under throughput.

Run:  python examples/burst_workload_optimization.py
"""

from repro.core.bottlenecks import near_stop_fraction, near_stop_periods
from repro.core.two_stage_throttle import TwoStageWriteController
from repro.harness.machine import Machine
from repro.harness.presets import TINY
from repro.harness.report import render_sparkline
from repro.storage import xpoint_ssd
from repro.sim.units import ms, seconds
from repro.workloads import BurstSchedule, DbBench, DbBenchConfig, prefill

DURATION = seconds(3.0)
# The paper: R/W 1:1 with a 1:9 burst 25 s out of every minute; same duty
# cycle here on a compressed period.
SCHEDULE = BurstSchedule(
    base_write_fraction=0.5,
    burst_write_fraction=1.0,
    period_ns=seconds(1.0),
    burst_ns=seconds(0.42),
)


def run(controller_label, controller_factory):
    machine = Machine.create(xpoint_ssd(), TINY.page_cache_bytes, seed=5)
    options = TINY.options()
    controller = (
        controller_factory(machine.engine, options) if controller_factory else None
    )
    db = machine.open_db(options, controller=controller)
    prefill(db, TINY.prefill_spec())
    bench = DbBench(DbBenchConfig(
        processes=4,
        duration_ns=DURATION,
        write_fraction=0.5,
        value_size=TINY.value_size,
        key_count=TINY.key_count,
        seed=5,
        schedule=SCHEDULE,
        timeline_bucket_ns=ms(100),
    ))
    result = bench.run(db)
    series = result.timeline.series(0, DURATION)
    return result, series


def main() -> None:
    print("Workload: R/W 1:1 with periodic write bursts "
          "(100% writes for 42% of each period)\n")
    for label, factory in (
        ("original throttling (Algorithm 1)", None),
        ("two-stage throttling (case study A)",
         lambda engine, opts: TwoStageWriteController(engine, opts)),
    ):
        result, series = run(label, factory)
        rates = [r for _, r in series]
        print(f"== {label}")
        print(render_sparkline("throughput", series))
        print(f"   mean {sum(rates) / len(rates) / 1e3:6.1f} kop/s   "
              f"min {min(rates) / 1e3:6.1f} kop/s")
        frac = near_stop_fraction(series)
        periods = near_stop_periods(series)
        print(f"   near-stop (<10 kop/s): {frac:.0%} of the run, "
              f"{len(periods)} period(s)\n")
    print("Two-stage throttling paces writes at the user-configured floor in"
          " stage 1, so bursts slow the system down instead of stopping it.")


if __name__ == "__main__":
    main()
