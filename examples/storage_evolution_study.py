#!/usr/bin/env python3
"""Storage evolution study: the same workload on three SSD generations.

A miniature of the paper's Figures 1 and 3: run an identical
randomreadrandomwrite workload against an existing database on a SATA flash
SSD, a PCIe flash SSD and a 3D XPoint SSD, then compare raw-device speedup
with the end-to-end RocksDB-style speedup — the gap is the paper's whole
motivation.

Run:  python examples/storage_evolution_study.py  [--seconds 2]
"""

import argparse

from repro.harness.machine import Machine
from repro.harness.presets import TINY
from repro.harness.report import format_table
from repro.storage import (
    RawBenchmark,
    RawWorkloadConfig,
    pcie_flash_ssd,
    sata_flash_ssd,
    xpoint_ssd,
)
from repro.sim.units import seconds, us
from repro.workloads import DbBench, DbBenchConfig, prefill

PROFILES = (sata_flash_ssd, pcie_flash_ssd, xpoint_ssd)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seconds", type=float, default=1.5,
                        help="simulated seconds per run")
    parser.add_argument("--write-fraction", type=float, default=0.5)
    args = parser.parse_args()

    rows = []
    raw_cfg = RawWorkloadConfig(
        threads=8,
        read_fraction=1.0 - args.write_fraction,
        duration_ns=seconds(min(args.seconds, 1.0)),
        submit_overhead_ns=us(2),
    )
    for factory in PROFILES:
        profile = factory()
        raw = RawBenchmark(raw_cfg).run_profile(profile)

        machine = Machine.create(profile, TINY.page_cache_bytes, seed=7)
        db = machine.open_db(TINY.options())
        prefill(db, TINY.prefill_spec())
        bench = DbBench(DbBenchConfig(
            processes=8,
            duration_ns=seconds(args.seconds),
            write_fraction=args.write_fraction,
            value_size=TINY.value_size,
            key_count=TINY.key_count,
            seed=7,
        ))
        result = bench.run(db)
        rows.append({
            "device": profile.name,
            "raw_kops": round(raw.kops, 1),
            "kv_kops": round(result.kops, 1),
            "read_p90_us": round(result.read_latency.percentile(90) / 1e3, 1),
            "write_p90_us": round(result.write_latency.percentile(90) / 1e3, 1),
            "software_tax": round(raw.kops / max(result.kops, 0.001), 1),
        })

    print(format_table(
        ["device", "raw_kops", "kv_kops", "read_p90_us", "write_p90_us", "software_tax"],
        rows,
        title="Raw device vs key-value store throughput "
              f"(R/W {1 - args.write_fraction:.0%}:{args.write_fraction:.0%}, 8 threads)",
    ))

    raw_gain = rows[-1]["raw_kops"] / rows[0]["raw_kops"]
    kv_gain = rows[-1]["kv_kops"] / rows[0]["kv_kops"]
    print(f"\nSATA -> XPoint raw speedup:      {raw_gain:5.1f}x")
    print(f"SATA -> XPoint end-to-end speedup: {kv_gain:4.1f}x")
    print("\nThe paper's Figure 1 in one sentence: the storage got "
          f"{raw_gain:.0f}x faster, the key-value store only {kv_gain:.1f}x —"
          " the difference is software bottlenecks (throttling, L0 search,"
          " write pipelining, logging).")


if __name__ == "__main__":
    main()
