#!/usr/bin/env python3
"""YCSB core workloads across the three SSD generations.

The paper calibrates its read/write mixes against the YCSB
characterization of datacenter workloads; this example runs the six YCSB
core workloads (A-F, with the classic Zipfian skew) on the simulated SATA
flash and 3D XPoint devices and shows where the storage upgrade pays off —
read-dominated zipfian workloads — and where software bottlenecks cap it.

Run:  python examples/ycsb_workloads.py
"""

from repro.harness.machine import Machine
from repro.harness.presets import TINY
from repro.harness.report import format_table
from repro.storage import sata_flash_ssd, xpoint_ssd
from repro.sim.units import seconds
from repro.workloads import PrefillSpec, prefill
from repro.workloads.ycsb import CORE_WORKLOADS, YcsbRunner


def run_one(profile_factory, spec):
    machine = Machine.create(profile_factory(), TINY.page_cache_bytes, seed=21)
    db = machine.open_db(TINY.options())
    prefill(db, PrefillSpec(key_count=TINY.key_count, value_size=TINY.value_size))
    runner = YcsbRunner(
        spec,
        key_count=TINY.key_count,
        value_size=TINY.value_size,
        clients=4,
        duration_ns=seconds(0.8),
        seed=21,
    )
    return runner.run(db)


def main() -> None:
    rows = []
    for name, spec in sorted(CORE_WORKLOADS.items()):
        sata = run_one(sata_flash_ssd, spec)
        xp = run_one(xpoint_ssd, spec)
        rows.append({
            "workload": name,
            "mix": _describe(spec),
            "sata_kops": round(sata.kops, 1),
            "xpoint_kops": round(xp.kops, 1),
            "speedup": round(xp.kops / max(sata.kops, 0.001), 1),
        })
    print(format_table(
        ["workload", "mix", "sata_kops", "xpoint_kops", "speedup"],
        rows,
        title="YCSB core workloads: SATA flash vs 3D XPoint (zipfian, 4 clients)",
    ))
    print("\nRead-dominated workloads (B, C, D) enjoy the largest device"
          " speedups; update-heavy ones (A, F) are capped by the software"
          " write path the paper dissects.")


def _describe(spec) -> str:
    parts = []
    for frac, label in (
        (spec.read, "read"),
        (spec.update, "update"),
        (spec.insert, "insert"),
        (spec.scan, "scan"),
        (spec.rmw, "rmw"),
    ):
        if frac:
            parts.append(f"{int(frac * 100)}% {label}")
    return " + ".join(parts)


if __name__ == "__main__":
    main()
