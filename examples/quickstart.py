#!/usr/bin/env python3
"""Quickstart: open a key-value store on a simulated 3D XPoint SSD.

Demonstrates the public API end to end: machine assembly, puts/gets/deletes,
batches, scans, flush/compaction, and the statistics the paper's experiments
are built on.

Run:  python examples/quickstart.py
"""

from repro import Machine, Options, WriteBatch, xpoint_ssd
from repro.sim.units import fmt_bytes, fmt_time, kb, mb


def main() -> None:
    # A simulated host: Optane-class SSD + page cache, all in virtual time.
    machine = Machine.create(xpoint_ssd(), page_cache_bytes=mb(64), seed=1)
    options = Options(
        write_buffer_size=kb(256),  # small, so this demo flushes + compacts
        max_bytes_for_level_base=mb(1),
        target_file_size_base=kb(256),
        name="quickstart",
    )
    db = machine.open_db(options)

    # --- basic operations -------------------------------------------------
    db.run_sync(db.put(b"language", b"python"))
    db.run_sync(db.put(b"paper", b"ISPASS'20 Flash-to-3D-XPoint"))
    print("GET language  ->", db.run_sync(db.get(b"language")))
    print("GET missing   ->", db.run_sync(db.get(b"missing")))

    db.run_sync(db.delete(b"language"))
    print("after DELETE  ->", db.run_sync(db.get(b"language")))

    # --- atomic batches ----------------------------------------------------
    batch = WriteBatch()
    for i in range(5):
        batch.put(b"user:%04d" % i, b"profile-%d" % i)
    db.run_sync(db.write(batch))

    # --- enough data to exercise flush and compaction ------------------------
    def filler():
        for i in range(5000):
            yield from db.put(b"key:%08d" % i, b"x" * 100)

    db.run_sync(filler())
    db.run_sync(db.flush_all())
    db.run_sync(db.wait_idle())

    print("\nLSM shape (files per level):", db.level_shape())
    print("total SST bytes:", fmt_bytes(int(db.property_value("total-sst-bytes"))))

    # --- range scan ---------------------------------------------------------
    rows = db.run_sync(db.scan(b"user:", b"user:~", limit=3))
    print("\nscan user:* ->")
    for key, value in rows:
        print("   ", key, "=", value)

    # --- the paper's currency: virtual-time performance numbers ----------------
    reads = db.stats.histogram("read.latency")
    writes = db.stats.histogram("write.latency")
    print("\nvirtual clock:", fmt_time(machine.engine.now))
    print(f"writes: n={writes.count}  p50={writes.percentile(50) / 1e3:.1f} us  "
          f"p90={writes.percentile(90) / 1e3:.1f} us")
    if reads.count:
        print(f"reads:  n={reads.count}  p50={reads.percentile(50) / 1e3:.1f} us")
    print("flushes:", db.stats.get("flush.count"),
          " compactions:", db.stats.get("compaction.count"))
    print("device bytes written:", fmt_bytes(machine.device.bytes_written))


if __name__ == "__main__":
    main()
