#!/usr/bin/env python3
"""Case study B in action: dynamic Level-0 management.

Reproduces the paper's Figure 19 idea at demo scale: Level-0 file size
trades read latency (fewer, larger files are faster to search) against
write latency (smaller skiplists are faster to insert into).  The dynamic
manager watches the live read/write ratio and retunes the memtable size
online.

Run:  python examples/dynamic_l0_tuning.py
"""

from repro.core.dynamic_l0 import DynamicL0Manager, dynamic_l0_options
from repro.harness.machine import Machine
from repro.harness.presets import TINY
from repro.harness.report import format_table
from repro.storage import xpoint_ssd
from repro.sim.units import seconds
from repro.workloads import DbBench, DbBenchConfig, prefill


def run(read_ratio: float, dynamic: bool):
    machine = Machine.create(xpoint_ssd(), TINY.page_cache_bytes, seed=3)
    options = dynamic_l0_options(TINY.options())
    db = machine.open_db(options)
    prefill(db, TINY.prefill_spec())
    manager = None
    if dynamic:
        manager = DynamicL0Manager(db, l0_volume_bytes=24 * options.write_buffer_size)
        manager.start()
    bench = DbBench(DbBenchConfig(
        processes=4,
        duration_ns=seconds(1.2),
        write_fraction=1.0 - read_ratio,
        value_size=TINY.value_size,
        key_count=TINY.key_count,
        seed=3,
    ))
    result = bench.run(db)
    return result, manager


def main() -> None:
    rows = []
    for read_ratio in (0.05, 0.5, 0.9):
        default_result, _ = run(read_ratio, dynamic=False)
        dynamic_result, manager = run(read_ratio, dynamic=True)
        rows.append({
            "read_ratio": read_ratio,
            "default_kops": round(default_result.kops, 1),
            "dynamic_kops": round(dynamic_result.kops, 1),
            "mode_at_end": manager.mode,
            "switches": manager.mode_switches,
        })
    print(format_table(
        ["read_ratio", "default_kops", "dynamic_kops", "mode_at_end", "switches"],
        rows,
        title="Default vs dynamic Level-0 management (3D XPoint)",
    ))
    print("\nThe manager tags the workload WRITE-intensive above 25% writes"
          " (24 small L0 files) and READ-intensive below it (6 large files),"
          " exactly the paper's case study B policy.")


if __name__ == "__main__":
    main()
