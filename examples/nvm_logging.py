#!/usr/bin/env python3
"""Case study C in action: reducing logging overhead with NVM.

Reproduces the paper's Figure 20 comparison at demo scale: write tail
latency with the WAL on the data SSD, with the WAL relocated to
byte-addressable NVM (the paper emulates it with tmpfs), and with the WAL
disabled entirely.

Run:  python examples/nvm_logging.py
"""

from repro.core.nvm_wal import logging_configurations
from repro.harness.machine import Machine
from repro.harness.presets import TINY
from repro.harness.report import format_table
from repro.storage import xpoint_ssd
from repro.sim.units import seconds
from repro.workloads import DbBench, DbBenchConfig, prefill


def main() -> None:
    rows = []
    for config in logging_configurations():
        machine = Machine.create(
            xpoint_ssd(), TINY.page_cache_bytes, seed=9, with_nvm=config.wal_on_nvm
        )
        options = config.apply(TINY.options())
        db = machine.open_db(options, wal_on_nvm=config.wal_on_nvm)
        prefill(db, TINY.prefill_spec())
        bench = DbBench(DbBenchConfig(
            processes=4,
            duration_ns=seconds(1.5),
            write_fraction=0.5,  # the paper's 50% insertion ratio
            value_size=TINY.value_size,
            key_count=TINY.key_count,
            seed=9,
        ))
        result = bench.run(db)
        hist = result.write_latency
        rows.append({
            "config": config.label,
            "write_p50_us": round(hist.percentile(50) / 1e3, 1),
            "write_p90_us": round(hist.percentile(90) / 1e3, 1),
            "write_p99_us": round(hist.percentile(99) / 1e3, 1),
            "kops": round(result.kops, 1),
        })

    print(format_table(
        ["config", "write_p50_us", "write_p90_us", "write_p99_us", "kops"],
        rows,
        title="Write latency vs logging configuration (50% insertion, 3D XPoint)",
    ))
    ssd = rows[0]["write_p90_us"]
    nvm = rows[1]["write_p90_us"]
    if ssd > 0:
        print(f"\nNVM logging cuts write p90 by {(ssd - nvm) / ssd:.1%} "
              "(paper: 18.8%), but WAL-off shows the overhead is not fully"
              " removable by relocation alone.")


if __name__ == "__main__":
    main()
