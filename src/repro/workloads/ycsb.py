"""YCSB-style workloads.

The paper configures its read/write mixes "based on prior study about I/O
characterization in large-scale data centers" — the YCSB paper [Cooper et
al., SoCC'10].  This module provides the standard YCSB core workloads as
ready-made specs over this repo's key-value store, including the classic
Zipfian request distribution:

* **A** — update heavy (50/50 read/update), zipfian;
* **B** — read mostly (95/5), zipfian;
* **C** — read only, zipfian;
* **D** — read latest (95/5 insert), latest distribution;
* **E** — short scans (95/5 insert), zipfian scan starts;
* **F** — read-modify-write (50/50), zipfian.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import WorkloadError
from repro.lsm.db import DB
from repro.lsm.format import KIND_PUT
from repro.sim.engine import Engine, drive
from repro.sim.rng import RandomStream
from repro.sim.stats import LatencyHistogram
from repro.sim.units import SEC
from repro.workloads.batching import batch_ops, batching_enabled
from repro.workloads.generators import ValueSpec, encode_key

OP_READ = "read"
OP_UPDATE = "update"
OP_INSERT = "insert"
OP_SCAN = "scan"
OP_RMW = "read-modify-write"


class ZipfianGenerator:
    """Zipfian-distributed integers in [0, n) (Gray et al.'s algorithm).

    Item 0 is the hottest.  ``theta`` = 0.99 is YCSB's default skew.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n <= 0:
            raise WorkloadError(f"zipfian needs a positive range: {n}")
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"theta must be in (0,1): {theta}")
        self.n = n
        self.theta = theta
        self._zetan = self._zeta(min(n, 2), theta) if n <= 2 else self._zeta(n, theta)
        self._zeta2 = self._zeta(min(n, 2), theta)
        self._alpha = 1.0 / (1.0 - theta)
        denom = 1 - self._zeta2 / self._zetan
        if denom == 0.0:
            # n <= 2: ranks 0 and 1 are resolved directly in next(); the
            # eta-based tail formula is never reached.
            self._eta = 0.0
        else:
            self._eta = (1 - (2.0 / n) ** (1 - theta)) / denom

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact up to 10k, then the standard integral approximation.
        if n <= 10_000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10_001))
        tail = (n ** (1 - theta) - 10_000 ** (1 - theta)) / (1 - theta)
        return head + tail

    def rank_of(self, u: float) -> int:
        """Map one uniform draw ``u`` in [0, 1) to a zipfian rank.

        Pure in ``u`` for a fixed generator — batched clients pre-draw the
        uniforms and defer (or front-load) the mapping freely.
        """
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        # As u -> 1 the tail formula's float rounding can land exactly on n;
        # clamp to the documented [0, n) range.
        return min(
            self.n - 1, int(self.n * (self._eta * u - self._eta + 1) ** self._alpha)
        )

    def next(self, rng: RandomStream) -> int:
        return self.rank_of(rng.random())


class LatestGenerator:
    """YCSB's 'latest' distribution: recent inserts are hottest."""

    def __init__(self, initial_n: int, theta: float = 0.99) -> None:
        self.n = initial_n
        self._zipf = ZipfianGenerator(max(1, initial_n), theta)
        self.theta = theta

    def grow(self) -> None:
        self.n += 1
        if self.n > self._zipf.n * 2:
            self._zipf = ZipfianGenerator(self.n, self.theta)

    def key_for(self, u: float) -> int:
        """Map one uniform draw to a key under the *current* population.

        Unlike :meth:`ZipfianGenerator.rank_of` this mapping shifts as
        inserts grow ``n`` — batched clients must apply it at execution
        time, not at draw time.
        """
        return max(0, self.n - 1 - self._zipf.rank_of(u))

    def next(self, rng: RandomStream) -> int:
        return self.key_for(rng.random())


@dataclass(frozen=True)
class YcsbSpec:
    """Operation mix of one YCSB core workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"  # zipfian | uniform | latest
    max_scan_len: int = 100

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"workload {self.name}: mix sums to {total}, not 1")
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise WorkloadError(f"unknown distribution {self.distribution!r}")

    def op_for(self, u: float) -> str:
        """Map one uniform draw in [0, 1) to an operation kind (pure)."""
        for fraction, op in (
            (self.read, OP_READ),
            (self.update, OP_UPDATE),
            (self.insert, OP_INSERT),
            (self.scan, OP_SCAN),
        ):
            if u < fraction:
                return op
            u -= fraction
        return OP_RMW

    def pick_op(self, rng: RandomStream) -> str:
        return self.op_for(rng.random())


WORKLOAD_A = YcsbSpec("A", read=0.5, update=0.5)
WORKLOAD_B = YcsbSpec("B", read=0.95, update=0.05)
WORKLOAD_C = YcsbSpec("C", read=1.0)
WORKLOAD_D = YcsbSpec("D", read=0.95, insert=0.05, distribution="latest")
WORKLOAD_E = YcsbSpec("E", scan=0.95, insert=0.05)
WORKLOAD_F = YcsbSpec("F", read=0.5, rmw=0.5)

CORE_WORKLOADS: Dict[str, YcsbSpec] = {
    spec.name: spec
    for spec in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D, WORKLOAD_E, WORKLOAD_F)
}

# Extended mixes for the experiment matrix (repro.matrix).  "scan-heavy"
# pushes range reads much harder than YCSB E's insert-diluted 95/5 (the
# scatter-gather shape a range-sharded serving tier cares about);
# "rmw" concentrates on the read-modify-write cycle that YCSB F only
# half-exercises.
WORKLOAD_SCAN_HEAVY = YcsbSpec("scan-heavy", read=0.2, update=0.1, scan=0.7)
WORKLOAD_RMW = YcsbSpec("rmw", read=0.1, rmw=0.9)

#: Every named mix the experiment matrix can reference: the six YCSB core
#: workloads plus the extended mixes above.
MATRIX_WORKLOADS: Dict[str, YcsbSpec] = {
    **CORE_WORKLOADS,
    WORKLOAD_SCAN_HEAVY.name: WORKLOAD_SCAN_HEAVY,
    WORKLOAD_RMW.name: WORKLOAD_RMW,
}


@dataclass
class YcsbResult:
    """Measurements of one YCSB run."""

    workload: str
    ops: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)
    duration_ns: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    read_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    update_latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def kops(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.ops * SEC / self.duration_ns / 1e3

    def summary(self) -> Dict[str, float]:
        return {
            "workload": self.workload,
            "kops": round(self.kops, 1),
            "p50_us": round(self.latency.percentile(50) / 1e3, 1),
            "p99_us": round(self.latency.percentile(99) / 1e3, 1),
        }


class YcsbRunner:
    """Closed-loop YCSB clients against one DB."""

    def __init__(
        self,
        spec: YcsbSpec,
        key_count: int,
        value_size: int = 1024,
        clients: int = 4,
        duration_ns: int = SEC,
        seed: int = 1,
        zipf_theta: float = 0.99,
    ) -> None:
        if key_count <= 0:
            raise WorkloadError(f"key_count must be positive: {key_count}")
        self.spec = spec
        self.key_count = key_count
        self.values = ValueSpec(value_size)
        self.clients = clients
        self.duration_ns = duration_ns
        self.seed = seed
        self.zipf_theta = zipf_theta
        self._next_insert = key_count

    def run(self, db: DB) -> YcsbResult:
        # Per-run state: a previous run()'s inserts must not shift this
        # run's key space (the chooser is rebuilt per run; the insert
        # counter has to match it).
        self._next_insert = self.key_count
        engine: Engine = db.engine
        result = YcsbResult(workload=self.spec.name)
        end = engine.now + self.duration_ns
        if self.spec.distribution == "latest":
            chooser = LatestGenerator(self.key_count, self.zipf_theta)
        elif self.spec.distribution == "zipfian":
            chooser = ZipfianGenerator(self.key_count, self.zipf_theta)
        else:
            chooser = None  # uniform
        # Uniform key picks draw randint(0, next_insert - 1): the *bound*
        # (hence the stream consumption) shifts with inserts, so that one
        # combination stays per-op.
        batched = batching_enabled() and not (
            chooser is None and self.spec.insert > 0.0
        )
        buffers = []
        for cid in range(self.clients):
            rng = RandomStream(self.seed, f"ycsb/{self.spec.name}/{cid}")
            if batched:
                buf = ([], [], [])
                buffers.append(buf)
                gen = self._client_batched(
                    engine, db, rng, chooser, end, result, buf
                )
                if self.clients == 1:
                    # Same rule as db_bench: only a solo, drive()-wrapped
                    # client may warp the clock (fast paths, inline
                    # overhead); see DbBench.run.
                    gen = drive(engine, gen)
                engine.process(gen, name=f"ycsb-{self.spec.name}-{cid}")
            else:
                engine.process(
                    self._client(engine, db, rng, chooser, end, result),
                    name=f"ycsb-{self.spec.name}-{cid}",
                )
        engine.run(until=end)
        for lat_all, lat_read, lat_update in buffers:
            result.latency.record_many(lat_all)
            result.read_latency.record_many(lat_read)
            result.update_latency.record_many(lat_update)
        result.duration_ns = self.duration_ns
        return result

    def _pick_key(self, rng: RandomStream, chooser) -> int:
        if chooser is None:
            return rng.randint(0, max(0, self._next_insert - 1))
        return min(chooser.next(rng), self._next_insert - 1)

    def _client(self, engine, db, rng, chooser, end, result: YcsbResult):
        spec = self.spec
        while engine.now < end:
            yield db.costs.client_op_overhead_ns
            op = spec.pick_op(rng)
            began = engine.now
            if op == OP_READ:
                index = self._pick_key(rng, chooser)
                yield from db.get(encode_key(index))
                result.read_latency.record(engine.now - began)
            elif op == OP_UPDATE:
                index = self._pick_key(rng, chooser)
                yield from db.put(encode_key(index), self.values.value_for(index, 1))
                result.update_latency.record(engine.now - began)
            elif op == OP_INSERT:
                index = self._next_insert
                self._next_insert += 1
                if isinstance(chooser, LatestGenerator):
                    chooser.grow()
                yield from db.put(encode_key(index), self.values.value_for(index))
            elif op == OP_SCAN:
                start = self._pick_key(rng, chooser)
                length = rng.randint(1, spec.max_scan_len)
                yield from db.scan(
                    encode_key(start),
                    encode_key(min(start + length, 10**15 - 1)),
                    limit=length,
                )
            else:  # read-modify-write
                index = self._pick_key(rng, chooser)
                yield from db.get(encode_key(index))
                yield from db.put(encode_key(index), self.values.value_for(index, 2))
            result.ops += 1
            result.op_counts[op] = result.op_counts.get(op, 0) + 1
            result.latency.record(engine.now - began)

    def _client_batched(self, engine, db, rng, chooser, end, result: YcsbResult, buf):
        """Vectorized twin of :meth:`_client`, bit-identical op stream.

        Per wakeup one vector of ops is pre-drawn in the exact per-op draw
        order (the op-kind uniform, then the key draw, then a scan-length
        draw).  Zipfian ranks are mapped at draw time (the mapping is fixed);
        'latest' keys store the raw uniform and map at *execution* time —
        the population grows with inserts.  Key clamps against the shared
        insert counter likewise apply at execution time.  Latencies buffer
        in ``buf`` for one ``record_many`` per run; surplus tail draws when
        the run ends mid-vector are unobservable (the stream is private).
        """
        spec = self.spec
        values = self.values
        overhead = db.costs.client_op_overhead_ns
        op_for = spec.op_for
        random = rng.random
        randint = rng.randint
        max_scan_len = spec.max_scan_len
        latest = isinstance(chooser, LatestGenerator)
        zipf_rank = (
            chooser.rank_of if (chooser is not None and not latest) else None
        )
        uniform_bound = max(0, self._next_insert - 1)  # fixed: no inserts
        solo = self.clients == 1
        # Fast paths (and the inline overhead warp) are solo-client only —
        # they advance ``engine._now`` synchronously, which is safe only
        # under the rebasing drive() wrapper (see DbBench._client_batched).
        put_fast = db.put_fast
        get_fast = db.get_fast
        write_ops = db._write_ops
        queue = (
            db.write_queues[0]
            if solo and len(db.write_queues) == 1
            else None
        )
        fast_mts = db.memtables if solo else None
        nowq = engine._nowq
        heap = engine._heap
        batch = batch_ops()
        lat_all, lat_read, lat_update = buf
        op_counts = result.op_counts
        while engine._now < end:
            ops = []
            append = ops.append
            for _ in range(batch):
                op = op_for(random())
                if op is OP_INSERT:
                    append((op, 0, 0))
                    continue
                if zipf_rank is not None:
                    draw = zipf_rank(random())
                elif latest:
                    draw = random()
                else:
                    draw = randint(0, uniform_bound)
                if op is OP_SCAN:
                    append((op, draw, randint(1, max_scan_len)))
                else:
                    append((op, draw, 0))
            for op, draw, scan_len in ops:
                if engine._now >= end:
                    return
                if overhead:
                    if solo:
                        wake = engine._now + overhead
                        if (
                            nowq
                            or (heap and heap[0][0] <= wake)
                            or wake > engine.run_limit
                        ):
                            yield overhead
                        else:
                            engine._now = wake
                    else:
                        yield overhead
                began = engine._now
                if op is OP_INSERT:
                    index = self._next_insert
                    self._next_insert += 1
                    if latest:
                        chooser.grow()
                    yield from db.put(
                        encode_key(index), values.value_for(index)
                    )
                elif op is OP_SCAN:
                    if latest:
                        start = min(
                            chooser.key_for(draw), self._next_insert - 1
                        )
                    elif zipf_rank is not None:
                        start = min(draw, self._next_insert - 1)
                    else:
                        start = draw
                    yield from db.scan(
                        encode_key(start),
                        encode_key(min(start + scan_len, 10**15 - 1)),
                        limit=scan_len,
                    )
                else:
                    if latest:
                        index = min(
                            chooser.key_for(draw), self._next_insert - 1
                        )
                    elif zipf_rank is not None:
                        index = min(draw, self._next_insert - 1)
                    else:
                        index = draw
                    key = encode_key(index)
                    if op is OP_READ:
                        if not (
                            fast_mts is not None
                            and (
                                fast_mts.immutables
                                or fast_mts.mutable.get(key) is not None
                            )
                            and get_fast(key) is not None
                        ):
                            yield from db.get(key)
                        lat_read.append(engine._now - began)
                    elif op is OP_UPDATE:
                        value = values.value_for(index, 1)
                        if queue is not None and not (
                            queue._has_leader or queue._waiting
                        ):
                            lat = put_fast(key, value)
                        else:
                            lat = None
                        if lat is None:
                            yield from write_ops(
                                [(KIND_PUT, key, value)],
                                len(key) + value.size,
                            )
                        lat_update.append(engine._now - began)
                    else:  # read-modify-write
                        yield from db.get(key)
                        yield from db.put(key, values.value_for(index, 2))
                result.ops += 1
                op_counts[op] = op_counts.get(op, 0) + 1
                lat_all.append(engine._now - began)
