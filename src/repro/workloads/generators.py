"""Key/value/operation generators (the db_bench workload vocabulary).

Keys follow db_bench's convention: fixed-width 16-byte decimal strings, so
byte ordering equals numeric ordering.  Values are
:class:`~repro.lsm.value.ValueRef` descriptors sized per the workload spec
(1 KB in the paper, following the YCSB-style characterization it cites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import WorkloadError
from repro.lsm.value import ValueRef
from repro.sim.rng import RandomStream

KEY_WIDTH = 16

OP_READ = "read"
OP_WRITE = "write"


def encode_key(index: int) -> bytes:
    """db_bench-style fixed-width key (byte order == numeric order)."""
    if index < 0:
        raise WorkloadError(f"key index must be >= 0: {index}")
    return b"%016d" % index


def decode_key(key: bytes) -> int:
    return int(key)


@dataclass(frozen=True)
class KeySpace:
    """A contiguous logical key space of ``count`` keys."""

    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise WorkloadError(f"key space must be non-empty: {self.count}")

    def random_key(self, rng: RandomStream) -> bytes:
        return encode_key(rng.randint(0, self.count - 1))

    def key_at(self, index: int) -> bytes:
        if not 0 <= index < self.count:
            raise WorkloadError(f"key index {index} out of [0, {self.count})")
        return encode_key(index)

    def span(self) -> Tuple[bytes, bytes]:
        return encode_key(0), encode_key(self.count - 1)


@dataclass(frozen=True)
class ValueSpec:
    """How workload values are produced."""

    size: int = 1024  # the paper's 1 KB values

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WorkloadError(f"value size must be positive: {self.size}")

    def value_for(self, key_index: int, version: int = 0) -> ValueRef:
        return ValueRef(seed=(key_index << 20) | (version & 0xFFFFF), size=self.size)


class OperationMix:
    """randomreadrandomwrite: a Bernoulli read/write mixer.

    ``write_fraction`` is the paper's "insertion ratio".
    """

    def __init__(self, write_fraction: float) -> None:
        if not 0.0 <= write_fraction <= 1.0:
            raise WorkloadError(f"write_fraction out of [0,1]: {write_fraction}")
        self.write_fraction = write_fraction

    def next_op(self, rng: RandomStream) -> str:
        return OP_WRITE if rng.chance(self.write_fraction) else OP_READ


class BurstSchedule:
    """Time-varying write fraction (case study A's periodic write bursts).

    The paper's Figure 18 workload: a 1:1 baseline with a write burst
    (R/W 1:9) lasting ``burst_ns`` out of every ``period_ns``.
    """

    def __init__(
        self,
        base_write_fraction: float,
        burst_write_fraction: float,
        period_ns: int,
        burst_ns: int,
    ) -> None:
        if period_ns <= 0 or not 0 < burst_ns <= period_ns:
            raise WorkloadError(
                f"invalid burst schedule: period={period_ns}, burst={burst_ns}"
            )
        for frac in (base_write_fraction, burst_write_fraction):
            if not 0.0 <= frac <= 1.0:
                raise WorkloadError(f"write fraction out of [0,1]: {frac}")
        self.base = base_write_fraction
        self.burst = burst_write_fraction
        self.period_ns = period_ns
        self.burst_ns = burst_ns

    def write_fraction_at(self, now: int) -> float:
        phase = now % self.period_ns
        return self.burst if phase < self.burst_ns else self.base

    def in_burst(self, now: int) -> bool:
        return (now % self.period_ns) < self.burst_ns
