"""db_bench analog: closed-loop key-value benchmark clients.

Each simulated "process" (the paper's term; db_bench threads) runs a closed
loop of randomreadrandomwrite operations against one DB, mixing reads and
writes per the configured insertion ratio (optionally time-varying for the
burst workloads of case study A).  Latency histograms, a per-second
throughput timeline and queue statistics are collected — everything the
paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.lsm.db import DB
from repro.lsm.format import KIND_PUT
from repro.sim.engine import Engine, drive
from repro.sim.rng import RandomStream
from repro.sim.stats import LatencyHistogram, TimeSeries
from repro.sim.units import SEC, seconds
from repro.workloads.batching import batch_ops, batching_enabled
from repro.workloads.generators import (
    BurstSchedule,
    KeySpace,
    OperationMix,
    ValueSpec,
)


@dataclass(frozen=True)
class DbBenchConfig:
    """Parameters of one benchmark run (paper defaults)."""

    processes: int = 4
    duration_ns: int = seconds(10)
    write_fraction: float = 0.5  # the paper's insertion ratio
    value_size: int = 1024
    key_count: int = 1_000_000
    seed: int = 1
    warmup_ns: int = 0
    schedule: Optional[BurstSchedule] = None
    timeline_bucket_ns: int = SEC

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise WorkloadError(f"processes must be >= 1: {self.processes}")
        if self.duration_ns <= 0:
            raise WorkloadError(f"duration must be positive: {self.duration_ns}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError(f"write_fraction out of [0,1]: {self.write_fraction}")
        if self.warmup_ns < 0 or self.warmup_ns >= self.duration_ns:
            if self.warmup_ns != 0:
                raise WorkloadError("warmup must fall inside the run")


@dataclass
class BenchResult:
    """Everything a figure needs from one run."""

    config: DbBenchConfig
    ops: int = 0
    reads: int = 0
    writes: int = 0
    measured_ns: int = 0
    read_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    write_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    timeline: TimeSeries = field(default_factory=TimeSeries)
    mean_waiting_writers: float = 0.0
    db_tickers: Dict[str, int] = field(default_factory=dict)
    l0_file_counts: List[Tuple[int, int]] = field(
        default_factory=list
    )  # sampled (t, count)

    @property
    def kops(self) -> float:
        """Measured throughput in thousands of operations per second."""
        if self.measured_ns <= 0:
            return 0.0
        return self.ops * SEC / self.measured_ns / 1e3

    @property
    def l0_max(self) -> int:
        """Peak sampled Level-0 file count over the run."""
        return max((count for _t, count in self.l0_file_counts), default=0)

    def summary(self) -> Dict[str, float]:
        return {
            "kops": round(self.kops, 1),
            "read_p50_us": round(self.read_latency.percentile(50) / 1e3, 1),
            "read_p90_us": round(self.read_latency.percentile(90) / 1e3, 1),
            "read_p99_us": round(self.read_latency.percentile(99) / 1e3, 1),
            "write_p50_us": round(self.write_latency.percentile(50) / 1e3, 1),
            "write_p90_us": round(self.write_latency.percentile(90) / 1e3, 1),
            "write_p99_us": round(self.write_latency.percentile(99) / 1e3, 1),
            "mean_waiting": round(self.mean_waiting_writers, 2),
            "l0_max": float(self.l0_max),
        }


class DbBench:
    """Runs one configured workload against one DB."""

    def __init__(self, config: DbBenchConfig) -> None:
        self.config = config

    def run(self, db: DB) -> BenchResult:
        """Execute the workload; returns the collected measurements.

        The engine is run up to the configured duration; background work
        keeps competing with the clients exactly as in the real system.
        """
        cfg = self.config
        engine: Engine = db.engine
        start = engine.now
        end = start + cfg.duration_ns
        measure_from = start + cfg.warmup_ns
        result = BenchResult(config=cfg)
        result.timeline = TimeSeries(bucket_ns=cfg.timeline_bucket_ns)
        keyspace = KeySpace(cfg.key_count)
        values = ValueSpec(cfg.value_size)
        mix = OperationMix(cfg.write_fraction)

        # Batched clients pre-draw RNG vectors and use the DB fast path;
        # burst schedules stay per-op (the chance draw is time-dependent,
        # and draw *counts* change when the fraction saturates at 0 or 1).
        batched = batching_enabled() and cfg.schedule is None
        buffers: List[Tuple[List[int], List[int], List[int]]] = []
        for pid in range(cfg.processes):
            rng = RandomStream(cfg.seed, f"db_bench/client{pid}")
            if batched:
                buf: Tuple[List[int], List[int], List[int]] = ([], [], [])
                buffers.append(buf)
                gen = self._client_batched(
                    engine, db, rng, keyspace, values, mix, end,
                    measure_from, result, buf,
                )
                if cfg.processes == 1:
                    # The drive() wrapper rebases kernel sleeps issued after
                    # a synchronous clock warp — without it a post-warp
                    # ``yield overhead`` would be scheduled from the kernel's
                    # stale pop-time clock, rewinding time.  The batched
                    # client therefore only warps (fast paths included) when
                    # it is the sole client and wrapped; concurrent clients
                    # never touch the clock and skip the wrapper's per-yield
                    # frame hop.
                    gen = drive(engine, gen)
                engine.process(gen, name=f"db_bench-{pid}")
            else:
                engine.process(
                    self._client(
                        engine, db, rng, keyspace, values, mix, end,
                        measure_from, result,
                    ),
                    name=f"db_bench-{pid}",
                )
        engine.process(
            self._sampler(engine, db, end, result), name="db_bench-sampler"
        )
        engine.run(until=end)

        # Bulk-flush the batched clients' buffered samples.  Histogram and
        # timeline state is order-independent (integer adds), so one flush
        # per client matches the per-op run's interleaved records exactly.
        for w_lat, r_lat, fin in buffers:
            result.write_latency.record_many(w_lat)
            result.read_latency.record_many(r_lat)
            result.timeline.record_many(fin)

        result.measured_ns = end - measure_from
        result.mean_waiting_writers = db.mean_waiting_writers()
        result.db_tickers = db.stats.tickers()
        return result

    def _client(
        self,
        engine: Engine,
        db: DB,
        rng: RandomStream,
        keyspace: KeySpace,
        values: ValueSpec,
        mix: OperationMix,
        end: int,
        measure_from: int,
        result: BenchResult,
    ):
        cfg = self.config
        overhead = db.costs.client_op_overhead_ns
        schedule = cfg.schedule
        version_counter = 1
        while engine.now < end:
            if overhead:
                yield overhead
            if schedule is not None:
                write = rng.chance(schedule.write_fraction_at(engine.now))
            else:
                write = mix.next_op(rng) == "write"
            key_index = rng.randint(0, keyspace.count - 1)
            key = keyspace.key_at(key_index)
            began = engine.now
            if write:
                version_counter += 1
                yield from db.put(key, values.value_for(key_index, version_counter))
                finished = engine.now
                if began >= measure_from:
                    result.writes += 1
                    result.write_latency.record(finished - began)
            else:
                yield from db.get(key)
                finished = engine.now
                if began >= measure_from:
                    result.reads += 1
                    result.read_latency.record(finished - began)
            if began >= measure_from:
                result.ops += 1
                result.timeline.record(finished)

    def _client_batched(
        self,
        engine: Engine,
        db: DB,
        rng: RandomStream,
        keyspace: KeySpace,
        values: ValueSpec,
        mix: OperationMix,
        end: int,
        measure_from: int,
        result: BenchResult,
        buf: "Tuple[List[int], List[int], List[int]]",
    ):
        """Vectorized twin of :meth:`_client`, bit-identical op stream.

        Per wakeup, one op vector's RNG values are pre-drawn in the exact
        per-op order (the mix's chance draw — skipped entirely when the
        write fraction saturates, matching ``RandomStream.chance`` — then
        the key draw).  Each op tries the DB fast path first and falls back
        to the per-op generator at any boundary; latencies and timeline
        stamps accumulate in ``buf`` for one ``record_many`` per run.
        Surplus tail draws when the run ends mid-vector are unobservable:
        the stream is private to this client.
        """
        overhead = db.costs.client_op_overhead_ns
        wf = mix.write_fraction
        count = keyspace.count
        random = rng.random
        # rng.randint(0, count - 1) normalizes its arguments through two
        # call layers before landing in Random._randbelow(count); drawing
        # through _randbelow directly consumes the identical underlying
        # stream (randrange's width path) at a fraction of the call cost.
        randbelow = getattr(rng._rng, "_randbelow", None)
        if randbelow is None:  # non-CPython Random: keep the public API
            randint = rng.randint
            def randbelow(n):
                return randint(0, n - 1)
        key_at = keyspace.key_at
        put_fast = db.put_fast
        get_fast = db.get_fast
        write_ops = db._write_ops
        mts = db.memtables
        solo = self.config.processes == 1
        # Cheap eligibility gates, hoisted from the fast paths themselves:
        # attempting (and bailing out of) put_fast/get_fast costs more than
        # these probes.  Fast paths (and the inline overhead warp below) are
        # solo-client only: they advance ``engine._now`` synchronously, which
        # is safe only under the rebasing drive() wrapper run() adds for
        # single-client configs.  With concurrent clients every op takes the
        # generator path — the gates are perf-only either way, the op stream
        # is bit-identical.
        queue = (
            db.write_queues[0]
            if solo and len(db.write_queues) == 1
            else None
        )
        fast_mts = mts if solo else None
        nowq = engine._nowq
        heap = engine._heap
        batch = batch_ops()
        version_counter = 1
        w_lat, r_lat, fin = buf
        always_write = wf >= 1.0
        never_write = wf <= 0.0
        mixed = not (always_write or never_write)
        while engine._now < end:
            if mixed:
                ops = [
                    (random() < wf, randbelow(count)) for _ in range(batch)
                ]
            else:
                ops = [
                    (always_write, randbelow(count)) for _ in range(batch)
                ]
            for write, key_index in ops:
                if engine._now >= end:
                    return
                if overhead:
                    if solo:
                        wake = engine._now + overhead
                        if (
                            nowq
                            or (heap and heap[0][0] <= wake)
                            or wake > engine.run_limit
                        ):
                            yield overhead
                        else:
                            engine._now = wake
                    else:
                        yield overhead
                key = key_at(key_index)
                began = engine._now
                if write:
                    version_counter += 1
                    value = values.value_for(key_index, version_counter)
                    if queue is not None and not (
                        queue._has_leader or queue._waiting
                    ):
                        lat = put_fast(key, value)
                    else:
                        lat = None
                    if lat is None:
                        # db.put() minus its wrapper: the op tuple and the
                        # data-bytes arithmetic are built inline (values are
                        # always ValueRefs here).
                        yield from write_ops(
                            [(KIND_PUT, key, value)], len(key) + value.size
                        )
                        lat = engine._now - began
                    if began >= measure_from:
                        result.writes += 1
                        result.ops += 1
                        w_lat.append(lat)
                        fin.append(began + lat)
                else:
                    if (
                        fast_mts is not None
                        and (
                            fast_mts.immutables
                            or fast_mts.mutable.get(key) is not None
                        )
                        and get_fast(key) is not None
                    ):
                        pass  # memtable hit, clock already advanced
                    else:
                        yield from db.get(key)
                    if began >= measure_from:
                        result.reads += 1
                        result.ops += 1
                        r_lat.append(engine._now - began)
                        fin.append(engine._now)

    def _sampler(self, engine: Engine, db: DB, end: int, result: BenchResult):
        """Sample the Level-0 file count once per timeline bucket."""
        bucket = self.config.timeline_bucket_ns
        while engine.now < end:
            result.l0_file_counts.append(
                (engine.now, db.versions.current.num_files(0))
            )
            yield bucket
