"""db_bench analog: closed-loop key-value benchmark clients.

Each simulated "process" (the paper's term; db_bench threads) runs a closed
loop of randomreadrandomwrite operations against one DB, mixing reads and
writes per the configured insertion ratio (optionally time-varying for the
burst workloads of case study A).  Latency histograms, a per-second
throughput timeline and queue statistics are collected — everything the
paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import WorkloadError
from repro.lsm.db import DB
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.stats import LatencyHistogram, TimeSeries
from repro.sim.units import SEC, seconds
from repro.workloads.generators import (
    BurstSchedule,
    KeySpace,
    OperationMix,
    ValueSpec,
)


@dataclass(frozen=True)
class DbBenchConfig:
    """Parameters of one benchmark run (paper defaults)."""

    processes: int = 4
    duration_ns: int = seconds(10)
    write_fraction: float = 0.5  # the paper's insertion ratio
    value_size: int = 1024
    key_count: int = 1_000_000
    seed: int = 1
    warmup_ns: int = 0
    schedule: Optional[BurstSchedule] = None
    timeline_bucket_ns: int = SEC

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise WorkloadError(f"processes must be >= 1: {self.processes}")
        if self.duration_ns <= 0:
            raise WorkloadError(f"duration must be positive: {self.duration_ns}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError(f"write_fraction out of [0,1]: {self.write_fraction}")
        if self.warmup_ns < 0 or self.warmup_ns >= self.duration_ns:
            if self.warmup_ns != 0:
                raise WorkloadError("warmup must fall inside the run")


@dataclass
class BenchResult:
    """Everything a figure needs from one run."""

    config: DbBenchConfig
    ops: int = 0
    reads: int = 0
    writes: int = 0
    measured_ns: int = 0
    read_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    write_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    timeline: TimeSeries = field(default_factory=TimeSeries)
    mean_waiting_writers: float = 0.0
    db_tickers: Dict[str, int] = field(default_factory=dict)
    l0_file_counts: list = field(default_factory=list)  # sampled (t, count)

    @property
    def kops(self) -> float:
        """Measured throughput in thousands of operations per second."""
        if self.measured_ns <= 0:
            return 0.0
        return self.ops * SEC / self.measured_ns / 1e3

    def summary(self) -> Dict[str, float]:
        return {
            "kops": round(self.kops, 1),
            "read_p50_us": round(self.read_latency.percentile(50) / 1e3, 1),
            "read_p90_us": round(self.read_latency.percentile(90) / 1e3, 1),
            "read_p99_us": round(self.read_latency.percentile(99) / 1e3, 1),
            "write_p50_us": round(self.write_latency.percentile(50) / 1e3, 1),
            "write_p90_us": round(self.write_latency.percentile(90) / 1e3, 1),
            "write_p99_us": round(self.write_latency.percentile(99) / 1e3, 1),
            "mean_waiting": round(self.mean_waiting_writers, 2),
        }


class DbBench:
    """Runs one configured workload against one DB."""

    def __init__(self, config: DbBenchConfig) -> None:
        self.config = config

    def run(self, db: DB) -> BenchResult:
        """Execute the workload; returns the collected measurements.

        The engine is run up to the configured duration; background work
        keeps competing with the clients exactly as in the real system.
        """
        cfg = self.config
        engine: Engine = db.engine
        start = engine.now
        end = start + cfg.duration_ns
        measure_from = start + cfg.warmup_ns
        result = BenchResult(config=cfg)
        result.timeline = TimeSeries(bucket_ns=cfg.timeline_bucket_ns)
        keyspace = KeySpace(cfg.key_count)
        values = ValueSpec(cfg.value_size)
        mix = OperationMix(cfg.write_fraction)

        for pid in range(cfg.processes):
            rng = RandomStream(cfg.seed, f"db_bench/client{pid}")
            engine.process(
                self._client(
                    engine, db, rng, keyspace, values, mix, end, measure_from, result
                ),
                name=f"db_bench-{pid}",
            )
        engine.process(
            self._sampler(engine, db, end, result), name="db_bench-sampler"
        )
        engine.run(until=end)

        result.measured_ns = end - measure_from
        result.mean_waiting_writers = db.mean_waiting_writers()
        result.db_tickers = db.stats.tickers()
        return result

    def _client(
        self,
        engine: Engine,
        db: DB,
        rng: RandomStream,
        keyspace: KeySpace,
        values: ValueSpec,
        mix: OperationMix,
        end: int,
        measure_from: int,
        result: BenchResult,
    ):
        cfg = self.config
        overhead = db.costs.client_op_overhead_ns
        schedule = cfg.schedule
        version_counter = 1
        while engine.now < end:
            if overhead:
                yield overhead
            if schedule is not None:
                write = rng.chance(schedule.write_fraction_at(engine.now))
            else:
                write = mix.next_op(rng) == "write"
            key_index = rng.randint(0, keyspace.count - 1)
            key = keyspace.key_at(key_index)
            began = engine.now
            if write:
                version_counter += 1
                yield from db.put(key, values.value_for(key_index, version_counter))
                finished = engine.now
                if began >= measure_from:
                    result.writes += 1
                    result.write_latency.record(finished - began)
            else:
                yield from db.get(key)
                finished = engine.now
                if began >= measure_from:
                    result.reads += 1
                    result.read_latency.record(finished - began)
            if began >= measure_from:
                result.ops += 1
                result.timeline.record(finished)

    def _sampler(self, engine: Engine, db: DB, end: int, result: BenchResult):
        """Sample the Level-0 file count once per timeline bucket."""
        bucket = self.config.timeline_bucket_ns
        while engine.now < end:
            result.l0_file_counts.append(
                (engine.now, db.versions.current.num_files(0))
            )
            yield bucket
