"""The batched-execution knob shared by every workload client.

Batched clients pre-draw ``batch_ops()`` operations' worth of RNG values
per wakeup and execute them through the DB fast path + clock-warp layer
(:func:`repro.sim.engine.drive`), falling back to the per-op generator
path at any stall/flush/fault boundary.  The op *stream* is identical
either way — batching only changes how much host work each simulated op
costs — and the differential test suite asserts byte-identical output.

Set ``REPRO_BATCH_OPS=0`` (or ``1``) in the environment, pass
``--batch-ops 0`` on the harness CLIs, or call :func:`set_batch_ops` to
disable batching; any larger value sets the pre-draw chunk size.
"""

from __future__ import annotations

import os

from repro.errors import WorkloadError

DEFAULT_BATCH_OPS = 64

_batch_ops: int = DEFAULT_BATCH_OPS
_env = os.environ.get("REPRO_BATCH_OPS")
if _env is not None:
    _batch_ops = int(_env)


def batch_ops() -> int:
    """Current op-vector size; values below 2 mean batching is off."""
    return _batch_ops


def batching_enabled() -> bool:
    return _batch_ops >= 2


def set_batch_ops(n: int) -> None:
    """Set the op-vector size (0 or 1 disables batching)."""
    global _batch_ops
    if n < 0:
        raise WorkloadError(f"batch size must be >= 0: {n}")
    _batch_ops = n
