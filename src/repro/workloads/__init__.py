"""Workload generation: db_bench analog, YCSB suite, generators, prefill."""

from repro.workloads.db_bench import BenchResult, DbBench, DbBenchConfig
from repro.workloads.generators import (
    KEY_WIDTH,
    OP_READ,
    OP_WRITE,
    BurstSchedule,
    KeySpace,
    OperationMix,
    ValueSpec,
    decode_key,
    encode_key,
)
from repro.workloads.prefill import PrefillSpec, prefill
from repro.workloads.ycsb import (
    CORE_WORKLOADS,
    MATRIX_WORKLOADS,
    LatestGenerator,
    YcsbResult,
    YcsbRunner,
    YcsbSpec,
    ZipfianGenerator,
)

__all__ = [
    "BenchResult",
    "CORE_WORKLOADS",
    "MATRIX_WORKLOADS",
    "LatestGenerator",
    "YcsbResult",
    "YcsbRunner",
    "YcsbSpec",
    "ZipfianGenerator",
    "BurstSchedule",
    "DbBench",
    "DbBenchConfig",
    "KEY_WIDTH",
    "KeySpace",
    "OP_READ",
    "OP_WRITE",
    "OperationMix",
    "PrefillSpec",
    "ValueSpec",
    "decode_key",
    "encode_key",
    "prefill",
]
