"""Database pre-population (db_bench's ``--use_existing_db`` fixture).

The paper benchmarks against an existing ~100 GB database.  Simulating the
initial fill op-by-op would dwarf the measured run, so the prefiller builds
the steady-state LSM shape directly: keys are deterministically distributed
across levels (L1 .. Lk filled to their byte targets, the remainder in the
deepest level), cut into target-size SST files, and installed through real
version edits on durably "synced" files.  The page cache starts cold, as
after a reboot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.lsm.db import DB
from repro.lsm.sst import SSTBuilder
from repro.lsm.version import FileMetadata, VersionEdit
from repro.workloads.generators import KeySpace, ValueSpec, encode_key

_HASH = 2654435761  # Knuth multiplicative hash


@dataclass(frozen=True)
class PrefillSpec:
    """What the pre-existing database should look like."""

    key_count: int
    value_size: int = 1024

    def __post_init__(self) -> None:
        if self.key_count <= 0:
            raise WorkloadError(f"key_count must be positive: {self.key_count}")
        if self.value_size <= 0:
            raise WorkloadError(f"value_size must be positive: {self.value_size}")

    @property
    def entry_bytes(self) -> int:
        return 16 + self.value_size + 8  # key + value + header

    @property
    def total_bytes(self) -> int:
        return self.key_count * self.entry_bytes

    def keyspace(self) -> KeySpace:
        return KeySpace(self.key_count)

    def value_spec(self) -> ValueSpec:
        return ValueSpec(self.value_size)


_FILL_FACTOR = 0.9  # fill shallow levels to 90% of target: steady state,
# not already past the compaction trigger


def _level_budgets(db: DB, total_bytes: int) -> Dict[int, int]:
    """Bytes per level: L1..L(k-1) near target, deepest level takes the rest."""
    opts = db.options
    budgets: Dict[int, int] = {}
    remaining = total_bytes
    for level in range(1, opts.num_levels):
        if level == opts.num_levels - 1:
            budgets[level] = remaining
            remaining = 0
            break
        cap = int(opts.max_bytes_for_level(level) * _FILL_FACTOR)
        if remaining <= cap:
            budgets[level] = remaining
            remaining = 0
            break
        budgets[level] = cap
        remaining -= cap
    return {lvl: b for lvl, b in budgets.items() if b > 0}


def prefill(db: DB, spec: PrefillSpec) -> Dict[int, int]:
    """Populate ``db`` with ``spec.key_count`` keys; returns files-per-level.

    Deterministic: each key index hashes to a level with probability
    proportional to the level's byte budget, so every level's files span the
    whole key space (the real read-amplification shape: a GET walks through
    every level above the key's home level before finding it).
    """
    if db.versions.current.num_files() != 0:
        raise WorkloadError("prefill requires an empty database")
    budgets = _level_budgets(db, spec.total_bytes)
    if not budgets:
        raise WorkloadError("no level budget computed")
    levels = sorted(budgets)
    total = sum(budgets.values())
    # Cumulative probability thresholds scaled to 2^32.
    thresholds: List[int] = []
    acc = 0
    for level in levels:
        acc += budgets[level]
        thresholds.append(int(acc / total * (1 << 32)))

    values = spec.value_spec()
    per_level_keys: Dict[int, List[int]] = {level: [] for level in levels}
    for i in range(spec.key_count):
        h = (i * _HASH) & 0xFFFFFFFF
        for level, bound in zip(levels, thresholds):
            if h < bound:
                per_level_keys[level].append(i)
                break
        else:
            per_level_keys[levels[-1]].append(i)

    edit = VersionEdit()
    files_per_level: Dict[int, int] = {}
    seq = db.versions.last_sequence
    for level in levels:
        key_indices = per_level_keys[level]
        if not key_indices:
            continue
        target = db.options.target_file_size(level)
        builder: SSTBuilder | None = None
        count = 0

        def finish(builder: SSTBuilder) -> None:
            sst = builder.finish()
            f = db.fs.install_synced(f"sst/{sst.number:06d}.sst", sst.file_bytes)
            f.payload = sst
            edit.add_file(level, FileMetadata(sst.number, sst, f, level))

        for i in key_indices:
            if builder is None:
                builder = SSTBuilder(
                    db.versions.new_file_number(),
                    db.options.block_size,
                    db.options.bloom_bits_per_key,
                )
            seq += 1
            builder.add(encode_key(i), (seq, 1, values.value_for(i)))
            if builder.estimated_bytes >= target:
                finish(builder)
                builder = None
                count += 1
        if builder is not None and not builder.empty():
            finish(builder)
            count += 1
        files_per_level[level] = count

    db.versions.last_sequence = seq
    db.versions.apply(edit)
    db.versions.current.check_invariants()
    db.stats.inc("prefill.keys", spec.key_count)
    return files_per_level


def prefill_keys(
    db: DB,
    keys: Sequence[bytes],
    value_size: int = 1024,
    value_sizes: Optional[Sequence[int]] = None,
) -> Dict[int, int]:
    """Like :func:`prefill` but over an explicit sorted key list.

    Serving shards need this: consistent-hash routing hands each shard a
    scattered (non-contiguous) subset of the tenants' prefixed key spaces,
    so the shard's pre-existing LSM shape must be built from those exact
    keys.  Level assignment hashes the key's *position* — same scheme as
    :func:`prefill`, so every level spans the shard's whole key range.
    ``value_sizes`` optionally gives a per-key value size (tenants with
    different value specs sharing one shard).
    """
    if not keys:
        return {}
    if db.versions.current.num_files() != 0:
        raise WorkloadError("prefill requires an empty database")
    if value_sizes is not None and len(value_sizes) != len(keys):
        raise WorkloadError("value_sizes must align with keys")
    if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
        raise WorkloadError("prefill_keys requires strictly ascending keys")

    def size_of(i: int) -> int:
        return value_sizes[i] if value_sizes is not None else value_size

    total_bytes = sum(len(k) + size_of(i) + 8 for i, k in enumerate(keys))
    budgets = _level_budgets(db, total_bytes)
    if not budgets:
        raise WorkloadError("no level budget computed")
    levels = sorted(budgets)
    total = sum(budgets.values())
    thresholds: List[int] = []
    acc = 0
    for level in levels:
        acc += budgets[level]
        thresholds.append(int(acc / total * (1 << 32)))

    per_level: Dict[int, List[int]] = {level: [] for level in levels}
    for i in range(len(keys)):
        h = (i * _HASH) & 0xFFFFFFFF
        for level, bound in zip(levels, thresholds):
            if h < bound:
                per_level[level].append(i)
                break
        else:
            per_level[levels[-1]].append(i)

    edit = VersionEdit()
    files_per_level: Dict[int, int] = {}
    seq = db.versions.last_sequence
    for level in levels:
        indices = per_level[level]
        if not indices:
            continue
        target = db.options.target_file_size(level)
        builder: SSTBuilder | None = None
        count = 0

        def finish(builder: SSTBuilder) -> None:
            sst = builder.finish()
            f = db.fs.install_synced(f"sst/{sst.number:06d}.sst", sst.file_bytes)
            f.payload = sst
            edit.add_file(level, FileMetadata(sst.number, sst, f, level))

        for i in indices:
            if builder is None:
                builder = SSTBuilder(
                    db.versions.new_file_number(),
                    db.options.block_size,
                    db.options.bloom_bits_per_key,
                )
            seq += 1
            value = ValueSpec(size_of(i)).value_for(i)
            builder.add(keys[i], (seq, 1, value))
            if builder.estimated_bytes >= target:
                finish(builder)
                builder = None
                count += 1
        if builder is not None and not builder.empty():
            finish(builder)
            count += 1
        files_per_level[level] = count

    db.versions.last_sequence = seq
    db.versions.apply(edit)
    db.versions.current.check_invariants()
    db.stats.inc("prefill.keys", len(keys))
    return files_per_level
