"""Per-incarnation views over a node's filesystem.

A cluster node's DB instance must not survive that node's power failure:
any I/O its leftover processes issue after the crash has to fail with a
typed, *non-transient* error so the error handler classifies it fatal and
the stale incarnation winds down — while the node's next incarnation opens
the same underlying files through a fresh view.

:class:`NodeFsView` wraps a :class:`~repro.fs.filesystem.SimFileSystem`
(or its fault-injecting subclass) and hands out :class:`NodeFileView`
wrappers; calling :meth:`NodeFsView.kill` marks every handle dead.  Views
cache per ``file_id`` so identity comparisons inside the DB (e.g.
``WalManager.release_up_to``'s ``f is self.current``) keep working.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import IOFaultError

#: SimFile attributes that views pass through by delegation.  Attribute
#: *writes* also delegate (recovery code assigns ``size``/``synced_size``
#: etc. directly, and those must land on the real file).
_VIEW_FIELDS = ("_fs_view", "_file", "dead")


class NodeFileView:
    """A per-incarnation handle over one :class:`SimFile`."""

    def __init__(self, fs_view: "NodeFsView", real_file: Any) -> None:
        object.__setattr__(self, "_fs_view", fs_view)
        object.__setattr__(self, "_file", real_file)

    @property
    def dead(self) -> bool:
        return self._fs_view.dead

    def _check_dead(self, op: str) -> None:
        if self._fs_view.dead:
            raise IOFaultError(
                f"node incarnation dead: {op} on {self._file.path}",
                op=op,
                transient=False,
            )

    # -- I/O entry points (dead-checked) -----------------------------------

    def append(self, nbytes: int, record: Any = None):
        self._check_dead("append")
        return self._file.append(nbytes, record)

    def read(self, offset: int, nbytes: int, sequential: bool = False):
        self._check_dead("read")
        return self._file.read(offset, nbytes, sequential=sequential)

    def sync(self):
        self._check_dead("fsync")
        result = yield from self._file.sync()
        self._check_dead("fsync")
        return result

    # -- delegation --------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(object.__getattribute__(self, "_file"), name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in _VIEW_FIELDS:
            object.__setattr__(self, name, value)
        else:
            setattr(self._file, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NodeFileView dead={self.dead} of {self._file!r}>"


class NodeFsView:
    """A per-incarnation view over a node's filesystem."""

    def __init__(self, fs: Any) -> None:
        self._fs = fs
        self.dead = False
        self._views: Dict[int, NodeFileView] = {}

    def kill(self) -> None:
        """Invalidate this incarnation: all further I/O through it fails."""
        self.dead = True

    def _check_dead(self, op: str) -> None:
        if self.dead:
            raise IOFaultError(
                f"node incarnation dead: {op}", op=op, transient=False
            )

    def _wrap(self, real_file: Any) -> NodeFileView:
        view = self._views.get(real_file.file_id)
        if view is None or view._file is not real_file:
            view = NodeFileView(self, real_file)
            self._views[real_file.file_id] = view
        return view

    # -- namespace (dead-checked, wrapped) ---------------------------------

    def create(self, path: str, **kwargs: Any) -> NodeFileView:
        self._check_dead("create")
        return self._wrap(self._fs.create(path, **kwargs))

    def open(self, path: str) -> NodeFileView:
        self._check_dead("open")
        return self._wrap(self._fs.open(path))

    def delete(self, path: str) -> None:
        self._check_dead("unlink")
        self._fs.delete(path)

    def rename(self, old: str, new: str) -> None:
        self._check_dead("rename")
        self._fs.rename(old, new)

    def install_synced(self, path: str, nbytes: int) -> NodeFileView:
        self._check_dead("install")
        return self._wrap(self._fs.install_synced(path, nbytes))

    # -- read-only passthroughs --------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self._fs, name)
