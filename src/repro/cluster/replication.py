"""Leader/follower WAL replication with quorum acknowledgements.

Data plane
    The leader's ``WalManager.on_group`` hook appends every WAL group to an
    in-memory replicated log; one shipper process per follower sends
    ``append`` messages (with a prev-group tag for chain checking) and
    retries on timeout with exponential backoff, entirely in virtual time.
    Followers apply groups in log order via ``DB.apply_replicated`` — the
    apply generator returns only after the follower's own WAL fsync, so an
    ``ack`` is a durability promise.  A write commits (and the client is
    acked) once its sequence number is durable on a majority.

Control plane
    Election and rejoin arbitration are deterministic bookkeeping on the
    :class:`Cluster` object (an omniscient external coordination service).
    Elections happen only when at least a quorum of nodes is up and pick
    the node with the longest durable log (ties: lowest node id) — because
    any acked write is durable on a majority and any electing quorum
    intersects it, the winner always holds every acked write.

Log identity
    A group's ``tag`` is ``(last_seq, crc)`` where the crc is the same
    checksum the WAL record carries on disk.  Tags let rejoin compare a
    node's *durable* WAL records against the current leader's log and
    physically truncate a divergent unacked tail with the existing
    ``scan_log``/``truncate_log`` machinery.  For the no-resurrection
    invariant a tag alone is ambiguous: a client that retries an unacked
    DELETE after a failover legitimately produces byte-identical WAL
    bytes at the same sequence number as the truncated group (a PUT
    retry embeds its fresh write index, a DELETE has no payload), so the
    new leader's group collides with the truncated one on ``(seq, crc)``
    while being a different proposal.  The invariant therefore tracks
    the term-qualified ``identity`` — ``(term, last_seq, crc)`` — which
    a re-proposal under the new leader's (strictly newer) term never
    matches, while a genuinely resurrected group keeps its original term
    and still trips the check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.nodefs import NodeFsView
from repro.errors import DBError, IOFaultError, OutOfSpaceError, SimulationError
from repro.lsm.db import DB
from repro.lsm.wal import WalManager, truncate_log
from repro.net.network import Network
from repro.sim.engine import Engine, Event
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us

Tag = Tuple[int, int]  # (last_seq, crc) — the disk-matching key
Identity = Tuple[int, int, int]  # (term, last_seq, crc) — resurrection identity

#: Node lifecycle states.
CRASHED = "crashed"  # powered off
STAGED = "staged"  # restarted, WAL salvaged, waiting for a leader branch
ACTIVE = "active"  # DB open, replicating


def _null(_ev: Event) -> None:
    return None


class ClusterConfig:
    """Timeouts and sizes of the replication protocol (virtual time)."""

    __slots__ = (
        "ack_timeout_ns",
        "rto_ns",
        "rto_max_ns",
        "op_timeout_ns",
        "append_overhead_bytes",
        "ack_bytes",
    )

    def __init__(
        self,
        ack_timeout_ns: int = ms(8),
        rto_ns: int = us(300),
        rto_max_ns: int = ms(4),
        op_timeout_ns: Optional[int] = None,
        append_overhead_bytes: int = 64,
        ack_bytes: int = 48,
    ) -> None:
        self.ack_timeout_ns = ack_timeout_ns
        self.rto_ns = rto_ns
        self.rto_max_ns = rto_max_ns
        self.op_timeout_ns = (
            op_timeout_ns if op_timeout_ns is not None else ack_timeout_ns
        )
        self.append_overhead_bytes = append_overhead_bytes
        self.ack_bytes = ack_bytes


class Group:
    """One replicated WAL group: the unit of shipping and of log identity."""

    __slots__ = ("term", "start_seq", "last_seq", "records", "nbytes", "crc")

    def __init__(self, term: int, records, nbytes: int, crc: int) -> None:
        self.term = term
        self.start_seq = records[0][1][0]
        self.last_seq = records[-1][1][0]
        self.records = records
        self.nbytes = nbytes
        self.crc = crc

    @property
    def tag(self) -> Tag:
        return (self.last_seq, self.crc)

    @property
    def identity(self) -> Identity:
        return (self.term, self.last_seq, self.crc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Group t{self.term} [{self.start_seq}..{self.last_seq}]>"


class ClusterNode:
    """One replica: its private storage stack plus replication state."""

    def __init__(
        self,
        cluster: "Cluster",
        node_id: int,
        fs,
        options_factory,
        rng: RandomStream,
    ) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.fs = fs  # the real (possibly fault-injecting) filesystem
        self.options_factory = options_factory
        self.rng = rng
        self.state = CRASHED
        self.incarnation = 0
        self.view: Optional[NodeFsView] = None
        self.db: Optional[DB] = None
        #: The replicated log as known by the control plane.  For a leader
        #: this can run ahead of durability (groups are logged at WAL append
        #: time); ``durable_len`` tracks the prefix known fsynced.
        self.log: List[Group] = []
        self.durable_len = 0
        #: Event fired whenever the log grows (re-armed); parks idle shippers.
        self.log_grew = Event(cluster.engine)

    # -- properties ---------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state != CRASHED

    @property
    def active(self) -> bool:
        return self.state == ACTIVE

    @property
    def durable_seq(self) -> int:
        return self.log[self.durable_len - 1].last_seq if self.durable_len else 0

    def last_seq(self) -> int:
        return self.log[-1].last_seq if self.log else 0

    # -- lifecycle -----------------------------------------------------------

    def open_db(self) -> None:
        """Open (or re-open) the DB through a fresh incarnation view."""
        self.view = NodeFsView(self.fs)
        self.db = DB(
            self.cluster.engine,
            self.view,
            self.options_factory(),
            rng=self.rng.fork(f"db/{self.incarnation}"),
        )
        self.state = ACTIVE

    def advance_durable(self, seq: int) -> None:
        """Durability watermark: every group up to ``seq`` is fsynced."""
        log = self.log
        n = len(log)
        d = self.durable_len
        while d < n and log[d].last_seq <= seq:
            d += 1
        self.durable_len = d

    def fire_log_grew(self) -> None:
        ev, self.log_grew = self.log_grew, Event(self.cluster.engine)
        if not ev.triggered:
            ev.succeed()


class Cluster:
    """The replicated DB: N nodes, one network, one control plane."""

    def __init__(
        self,
        engine: Engine,
        network: Network,
        node_fss,
        options_factory,
        rng: RandomStream,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        if len(node_fss) != network.n_nodes:
            raise SimulationError(
                f"{len(node_fss)} filesystems for {network.n_nodes} network nodes"
            )
        if len(node_fss) < 2:
            raise SimulationError("a cluster needs >= 2 nodes")
        self.engine = engine
        self.network = network
        self.config = config or ClusterConfig()
        self.rng = rng
        self.nodes = [
            ClusterNode(self, i, fs, options_factory, rng.fork(f"node/{i}"))
            for i, fs in enumerate(node_fss)
        ]
        self.term = 0
        self.leader_id: Optional[int] = None
        self.commit_seq = 0
        self.running = True
        self.events: List[str] = []
        self.violations: List[str] = []
        #: Tags of physically truncated (divergent, unacked) groups: they
        #: must never reappear in any log (the no-resurrection invariant).
        self.truncated_identities: Set[Identity] = set()
        #: (term, leader_id) history — checked for one leader per term.
        self.term_history: List[Tuple[int, int]] = []
        self._match_len: Dict[int, int] = {}
        self._ack_wait: Dict[int, Tuple[int, Event]] = {}
        self._commit_waiters: List[Tuple[int, Event]] = []
        self._shipped_groups = 0
        self._failovers = 0

    # -- bookkeeping ---------------------------------------------------------

    @property
    def quorum(self) -> int:
        return len(self.nodes) // 2 + 1

    @property
    def leader_node(self) -> Optional[ClusterNode]:
        return self.nodes[self.leader_id] if self.leader_id is not None else None

    def _log(self, line: str) -> None:
        self.events.append(f"t={self.engine.now} {line}")

    def _violate(self, line: str) -> None:
        self.violations.append(f"t={self.engine.now} {line}")
        self._log(f"VIOLATION {line}")

    # -- boot ----------------------------------------------------------------

    def start(self) -> None:
        """Open every node's DB, elect node 0 as the first leader."""
        for node in self.nodes:
            node.open_db()
            self._spawn_pump(node)
        self._become_leader(self.nodes[0])

    # -- leader election -------------------------------------------------------

    def elect(self) -> bool:
        """Deterministic failover; True when a leader was installed.

        Requires a quorum of up (staged or active) nodes — an electing
        quorum always intersects the ack quorum of every committed write,
        and the most-caught-up rule then guarantees the winner holds all of
        them.  Staged nodes reconcile their durable logs against the
        winner's branch before activating.
        """
        if self.leader_id is not None:
            return True
        up = [n for n in self.nodes if n.alive]
        if len(up) < self.quorum:
            self._log(f"election blocked: {len(up)}/{len(self.nodes)} up")
            return False
        # Raft's election restriction: compare (term of last log entry, log
        # length).  Log length alone is unsafe — a crashed ex-leader's
        # divergent unacked tail can be longer than a follower's log that
        # holds a newer term's committed groups.
        winner = sorted(
            up,
            key=lambda n: (
                -(n.log[-1].term if n.log else 0),
                -len(n.log),
                n.node_id,
            ),
        )[0]
        if winner.state == STAGED:
            winner.open_db()
            self._spawn_pump(winner)
        self._become_leader(winner)
        for node in up:
            if node.state == STAGED:
                self._finalize_rejoin(node)
        return True

    def _become_leader(self, node: ClusterNode) -> None:
        self.term += 1
        self.leader_id = node.node_id
        self.term_history.append((self.term, node.node_id))
        node.durable_len = len(node.log)
        self._failovers += 1
        self._match_len = {}
        self._install_leader_hook(node)
        self._log(f"leader node {node.node_id} term {self.term}")
        self.engine.tracer.failover(self.term, node.node_id)
        for other in self.nodes:
            if other.node_id != node.node_id:
                self.engine.process(
                    self._shipper(node, other.node_id, self.term),
                    name=f"ship-{node.node_id}->{other.node_id}",
                )

    def _install_leader_hook(self, node: ClusterNode) -> None:
        term = self.term

        def on_group(records, nbytes, node=node, term=term):
            crc = node.db.wal.current.records[-1][1].crc
            group = Group(term, records, nbytes, crc)
            if group.identity in self.truncated_identities:
                self._violate(f"truncated group {group!r} resurrected on leader")
            node.log.append(group)
            node.fire_log_grew()

        node.db.wal.on_group = on_group

    # -- node crash / restart --------------------------------------------------

    def crash_node(self, node_id: int) -> None:
        """Power-fail one node while the rest of the cluster keeps running."""
        node = self.nodes[node_id]
        if not node.alive:
            return
        was_leader = self.leader_id == node_id
        node.state = CRASHED
        node.incarnation += 1
        if node.db is not None:
            # Stale incarnation: background workers that die on dead-view
            # I/O after this point are expected, not a simulation bug.
            for proc in node.db._workers:
                if not proc.triggered:
                    proc.callbacks.append(_null)
            node.db._closed = True
            node.db.wal.on_group = None
        if node.view is not None:
            node.view.kill()
        node.fs.power_fail()
        self.network.set_down(node_id)
        inbox = self.network.inboxes[node_id]
        inbox._items.clear()
        inbox._getters.clear()
        node.fire_log_grew()  # unpark this node's shippers so they exit
        self._log(f"node {node_id} crashed{' (leader)' if was_leader else ''}")
        if was_leader:
            self.leader_id = None
            self.elect()

    def restart_node(self, node_id: int) -> None:
        """Power a crashed node back up and rejoin it to the cluster."""
        node = self.nodes[node_id]
        if node.alive:
            return
        node.incarnation += 1
        self.network.set_up(node_id)
        self._salvage(node)
        node.state = STAGED
        self._log(f"node {node_id} restarted (durable log {len(node.log)})")
        if self.leader_id is not None:
            self._finalize_rejoin(node)
        else:
            self.elect()

    def _salvage(self, node: ClusterNode) -> None:
        """Reduce a restarted node's control log to its durable reality.

        ``recover_logs`` checksum-verifies every WAL file and physically
        truncates torn/corrupt tails (the existing machinery).  The
        surviving records are then tag-matched against the control-plane
        log.  Two kinds of disk-ahead-of-control residue are possible and
        both are unacked (the ack is sent only after the control-log
        append, which is atomic with the end of the apply):

        * an *orphan* tail record from an apply interrupted mid-fsync by
          the crash — physically truncated here so DB recovery cannot
          replay it;
        * a *duplicate* record from a re-shipped group whose first apply
          failed after the WAL append (transient fsync error) — kept, it
          is byte-identical to its predecessor and replays idempotently.
        """
        files = self._recover_files(node)
        flat = [rec for _f, frs in files for _nb, rec in frs]
        if not flat:
            # No WAL survives: only flushed data remains.  We cannot see
            # flush boundaries here, so keep the durable prefix.
            node.log = node.log[: node.durable_len]
            node.durable_len = len(node.log)
            return
        keep, log_end, _base = self._match_walk(node, flat, len(node.log))
        self._truncate_disk(files, keep)
        node.log = node.log[:log_end]
        node.durable_len = len(node.log)

    def _match_walk(self, node: ClusterNode, flat, limit: int):
        """Match disk records against ``node.log[:limit]`` by tag.

        Returns ``(flat_keep, log_end, base)``: the number of leading disk
        records consistent with the control log (duplicate re-appends of
        the previous group count as consistent), the control-log index just
        past the last matched group, and the index the first disk record
        mapped to.  The walk stops at the first record that neither extends
        the log prefix nor duplicates its predecessor.
        """
        tags = {g.tag: i for i, g in enumerate(node.log)}
        base = tags.get(self._rec_tag(flat[0]), 0)
        j = base
        keep = 0
        for rec in flat:
            t = self._rec_tag(rec)
            if j < limit and j < len(node.log) and node.log[j].tag == t:
                j += 1
                keep += 1
            elif j > base and node.log[j - 1].tag == t:
                keep += 1  # duplicate re-append of the previous group
            else:
                break
        return keep, j, base

    def _finalize_rejoin(self, node: ClusterNode) -> None:
        """Reconcile a staged node with the leader's branch and activate it.

        The longest prefix of the node's durable log that matches the
        leader's log survives; a divergent unacked tail is physically
        truncated out of the WAL files (``truncate_log``) so recovery
        cannot replay it.  If divergence reaches below the surviving WAL
        window — i.e. into data already flushed to SSTs — the node is
        wiped and resynced from the leader's retained log instead.
        """
        leader = self.leader_node
        if leader is None or node.state != STAGED:
            return
        llog = leader.log
        d = 0
        while d < len(node.log) and d < len(llog) and node.log[d].tag == llog[d].tag:
            d += 1
        divergent = node.log[d:]
        if not divergent:
            node.open_db()
            self._spawn_pump(node)
            self._log(f"node {node.node_id} rejoined clean (log {len(node.log)})")
            return
        leader_tags = {x.tag for x in llog}
        for g in divergent:
            if g.tag not in leader_tags:
                self.truncated_identities.add(g.identity)
        files = self._wal_files(node)  # already recovered by _salvage
        flat = [rec for _f, frs in files for _nb, rec in frs]
        base = None
        if flat:
            tags = {g.tag: i for i, g in enumerate(node.log)}
            base = tags.get(self._rec_tag(flat[0]))
        if base is None or d < base:
            # Divergence sits in flushed data: no WAL truncation can remove
            # it.  Re-image the node and resync from the leader's log.
            for path in node.fs.list():
                node.fs.delete(path)
            node.log = []
            node.durable_len = 0
            self._log(f"node {node.node_id} wiped (flushed divergence at {d})")
        else:
            keep, _log_end, _base = self._match_walk(node, flat, d)
            self._truncate_disk(files, keep)
            node.log = node.log[:d]
            node.durable_len = len(node.log)
            self._log(
                f"node {node.node_id} truncated {len(divergent)} divergent "
                f"group(s) at log index {d}"
            )
        node.open_db()
        self._spawn_pump(node)

    def _wal_files(self, node: ClusterNode):
        """(file, [(nbytes, WalRecord)]) per WAL file, in log order."""
        out = []
        for path in node.fs.list(prefix="wal/"):
            f = node.fs.open(path)
            out.append((f, list(f.records)))
        return out

    def _recover_files(self, node: ClusterNode):
        """Checksum-salvage every WAL file, then list the survivors."""
        WalManager.recover_logs(node.fs, "wal")
        return self._wal_files(node)

    @staticmethod
    def _truncate_disk(files, keep: int) -> None:
        """Physically truncate WAL files past the first ``keep`` records."""
        done = 0
        for f, file_recs in files:
            take = max(0, min(len(file_recs), keep - done))
            if take < len(file_recs):
                good = [rec for _nb, rec in file_recs[:take]]
                good_bytes = sum(nb for nb, _rec in file_recs[:take])
                truncate_log(f, good, good_bytes)
            done += len(file_recs)

    @staticmethod
    def _rec_tag(rec) -> Tag:
        return (rec.entries[-1][1][0], rec.crc)

    # -- data plane: shipping ---------------------------------------------------

    def _shipper(self, leader: ClusterNode, follower_id: int, term: int):
        """Generator: ship the leader's log to one follower, in order."""
        cfg = self.config
        inc = leader.incarnation
        next_idx = 0
        mid = 0
        rto = cfg.rto_ns
        ack_ev: Optional[Event] = None
        while (
            self.running
            and leader.active
            and leader.incarnation == inc
            and self.term == term
        ):
            if next_idx >= len(leader.log):
                yield leader.log_grew
                continue
            group = leader.log[next_idx]
            prev_tag = leader.log[next_idx - 1].tag if next_idx else None
            mid += 1
            ack_ev = Event(self.engine)
            self._ack_wait[follower_id] = (mid, ack_ev)
            self.network.send(
                leader.node_id,
                follower_id,
                ("append", term, leader.node_id, mid, next_idx, prev_tag, group),
                nbytes=group.nbytes + cfg.append_overhead_bytes,
            )
            self._shipped_groups += 1
            fired, value = yield self.engine.any_of(
                [ack_ev, self.engine.timeout(rto)]
            )
            if fired is not ack_ev:
                rto = min(rto * 2, cfg.rto_max_ns)  # timeout: back off, reship
                continue
            ok, match_len = value
            rto = cfg.rto_ns
            match_len = min(match_len, len(leader.log))
            if ok:
                prev = self._match_len.get(follower_id, 0)
                if match_len > prev:
                    self._match_len[follower_id] = match_len
                    self._advance_commit()
                next_idx = max(next_idx + 1, match_len)
            else:
                next_idx = match_len
        # Remove only our own wait entry: a successor term's shipper may
        # already have registered a fresh one under the same follower id.
        waiting = self._ack_wait.get(follower_id)
        if waiting is not None and waiting[1] is ack_ev:
            del self._ack_wait[follower_id]

    # -- data plane: the per-node message pump ----------------------------------

    def _spawn_pump(self, node: ClusterNode) -> None:
        proc = self.engine.process(
            self._pump(node, node.incarnation), name=f"pump-{node.node_id}"
        )
        proc.callbacks.append(_null)

    def _pump(self, node: ClusterNode, inc: int):
        """Generator: consume this node's inbox and run the protocol."""
        while self.running and node.active and node.incarnation == inc:
            msg = yield self.network.inboxes[node.node_id].get()
            if not (self.running and node.active and node.incarnation == inc):
                break
            kind = msg[0]
            if kind == "append":
                yield from self._on_append(node, msg)
            elif kind == "ack":
                self._on_ack(node, msg)

    def _on_append(self, node: ClusterNode, msg):
        _kind, term, leader_id, mid, index, prev_tag, group = msg
        if term < self.term:
            return  # stale leader's message
        log = node.log
        if index < len(log):
            if log[index].tag != group.tag:
                self._violate(
                    f"node {node.node_id} log[{index}] {log[index]!r} "
                    f"conflicts with shipped {group!r} (active divergence)"
                )
            ok, match = True, len(log)  # duplicate: already have it
        elif index > len(log):
            ok, match = False, len(log)  # gap: leader must rewind
        elif index and (not log or log[-1].tag != prev_tag):
            ok, match = False, max(0, len(log) - 1)  # chain break
        else:
            if group.identity in self.truncated_identities:
                self._violate(
                    f"truncated group {group!r} resurrected on node {node.node_id}"
                )
            try:
                yield from node.db.apply_replicated(group.records)
            except (IOFaultError, OutOfSpaceError, DBError) as exc:
                self._log(f"node {node.node_id} apply failed: {exc}")
                return  # no ack; leader retries
            if not (node.active and node.db is not None):
                return  # crashed during apply
            log.append(group)
            node.durable_len = len(log)
            ok, match = True, len(log)
            if self.engine._trace:
                self.engine.tracer.replication_apply(node.node_id, group.last_seq)
        self.network.send(
            node.node_id,
            leader_id,
            ("ack", term, node.node_id, mid, ok, match),
            nbytes=self.config.ack_bytes,
        )

    def _on_ack(self, node: ClusterNode, msg):
        _kind, term, follower_id, mid, ok, match_len = msg
        if term != self.term or self.leader_id != node.node_id:
            return
        waiting = self._ack_wait.get(follower_id)
        if waiting is None or waiting[0] != mid:
            return  # stale or duplicate ack
        ev = waiting[1]
        if not ev.triggered:
            ev.succeed((ok, match_len))

    # -- commit rule -------------------------------------------------------------

    def _advance_commit(self) -> None:
        leader = self.leader_node
        if leader is None:
            return
        seqs = [leader.durable_seq]
        for match_len in self._match_len.values():
            seqs.append(leader.log[match_len - 1].last_seq if match_len else 0)
        seqs.sort(reverse=True)
        candidate = seqs[self.quorum - 1] if len(seqs) >= self.quorum else 0
        if candidate > self.commit_seq:
            self.commit_seq = candidate
            if self.engine._trace:
                self.engine.tracer.counter("cluster", "commit_seq", candidate)
            still = []
            for seq, ev in self._commit_waiters:
                if seq <= candidate:
                    if not ev.triggered:
                        ev.succeed()
                else:
                    still.append((seq, ev))
            self._commit_waiters = still

    # -- client API --------------------------------------------------------------

    def put(self, key: bytes, value) -> Tuple[bool, int]:
        """Generator: replicated write; returns (acked, seq)."""
        result = yield from self._client_write("put", key, value)
        return result

    def delete(self, key: bytes) -> Tuple[bool, int]:
        """Generator: replicated tombstone; returns (acked, seq)."""
        result = yield from self._client_write("delete", key, None)
        return result

    def get(self, key: bytes):
        """Generator: read from the leader (None when no leader)."""
        node = self.leader_node
        if node is None or not node.active:
            return None
        value = yield from node.db.get(key)
        return value

    def applied_seq(self, node_id: int) -> int:
        """The sequence through which ``node_id`` has durably applied.

        For the leader this is its durability watermark (every acked
        write is at or below it); for a follower it is the last shipped
        group it fsynced.  Hedged readers compare this against a
        session's last acked write to keep follower reads
        read-your-writes safe.
        """
        return self.nodes[node_id].durable_seq

    def get_from(self, node_id: int, key: bytes):
        """Generator: read one replica; ``(value, applied_seq)`` or None.

        None means the replica is not serving (crashed or staged).  The
        returned ``applied_seq`` is sampled *before* the read starts, so
        it is a conservative lower bound on the state the value reflects.
        """
        node = self.nodes[node_id]
        if not node.active or node.db is None:
            return None
        seq = node.durable_seq
        value = yield from node.db.get(key)
        if not node.active:
            return None  # crashed mid-read: the view is dead
        return (value, seq)

    def scan(self, start: bytes, end: bytes, limit: Optional[int] = None):
        """Generator: leader-only range scan (None when no leader)."""
        node = self.leader_node
        if node is None or not node.active or node.db is None:
            return None
        result = yield from node.db.scan(start, end, limit=limit)
        return result

    def write_quorum_reachable(self) -> bool:
        """True when the leader can currently assemble an ack quorum.

        The admission-controller brownout probe: counts the leader plus
        every active follower the network would presently deliver to
        (not down, not across an open partition).  Deterministic and
        side-effect free — it reads clock-driven window state only.
        """
        leader = self.leader_node
        if leader is None or not leader.active:
            return False
        reachable = 1
        for node in self.nodes:
            if node.node_id == leader.node_id or not node.active:
                continue
            if self.network.down[node.node_id]:
                continue
            if self.network.partitioned(leader.node_id, node.node_id):
                continue
            reachable += 1
        return reachable >= self.quorum

    def _client_write(self, kind: str, key: bytes, value):
        node = self.leader_node
        if node is None or not node.active or node.db is None:
            return (False, 0)
        term = self.term
        deadline = self.engine.now + self.config.op_timeout_ns
        gen = node.db.put(key, value) if kind == "put" else node.db.delete(key)
        proc = self.engine.process(gen, name=f"cluster-{kind}")
        proc.callbacks.append(_null)
        try:
            yield self.engine.any_of(
                [proc, self.engine.timeout(self.config.op_timeout_ns)]
            )
        except Exception:
            return (False, 0)  # leader died / went read-only under us
        if not proc.done or proc.exception is not None:
            return (False, 0)
        if self.term != term or self.leader_id != node.node_id:
            return (False, 0)  # branch changed while writing: indeterminate
        seq = node.db.versions.last_sequence
        node.advance_durable(seq)
        self._advance_commit()
        acked = yield from self._wait_commit(seq, term, deadline)
        return (acked, seq)

    def _wait_commit(self, seq: int, term: int, deadline: int):
        """Generator: True once ``seq`` commits in ``term`` (else timeout)."""
        while self.commit_seq < seq:
            now = self.engine.now
            if self.term != term or now >= deadline:
                return False
            ev = Event(self.engine)
            self._commit_waiters.append((seq, ev))
            yield self.engine.any_of([ev, self.engine.timeout(deadline - now)])
            if not ev.triggered:
                self._commit_waiters = [
                    (s, e) for s, e in self._commit_waiters if e is not ev
                ]
        return self.term == term

    # -- shutdown ----------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop shippers and pumps (end of run; state is left for inspection)."""
        self.running = False
        for node in self.nodes:
            node.fire_log_grew()
