"""Replicated cluster: WAL shipping with quorum acks over repro.net.

One leader DB takes client writes; its WAL groups are captured at append
time (``WalManager.on_group``) and shipped in log order to N-1 followers,
which apply them through :meth:`~repro.lsm.db.DB.apply_replicated` with the
leader's sequence numbers.  A client write is acknowledged only once its
sequence is durable on a majority (leader fsync + follower acks).  On
leader crash a deterministic failover elects the most-caught-up node among
an alive quorum — the two majorities intersect, so every acked write is on
the new leader — and restarted nodes truncate divergent unacked tails via
the existing WAL checksum/truncate machinery before rejoining.

The control plane (election, membership, rejoin arbitration) is modeled as
an omniscient external service: deterministic bookkeeping on the
:class:`Cluster` object, not messages on the simulated network.  The data
plane (WAL shipping, acks, retries) runs entirely over
:class:`repro.net.Network` and is subject to its partitions, delays, drops
and duplications.
"""

from repro.cluster.nodefs import NodeFileView, NodeFsView
from repro.cluster.replication import Cluster, ClusterConfig, ClusterNode, Group

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterNode",
    "Group",
    "NodeFileView",
    "NodeFsView",
]
