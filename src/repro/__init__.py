"""repro — reproduction of "From Flash to 3D XPoint: Performance Bottlenecks
and Potentials in RocksDB with Storage Evolution" (Jia & Chen, ISPASS 2020).

The package rebuilds, from scratch and in simulation, everything the paper
measures:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel;
* :mod:`repro.storage` — SATA flash / PCIe flash / 3D XPoint / NVM device
  models plus the raw-I/O microbenchmark of Figure 1;
* :mod:`repro.fs` — Ext4-like filesystem with an OS page cache;
* :mod:`repro.lsm` — a RocksDB-5.17-style LSM key-value store (memtables,
  WAL, SSTs, leveled compaction, write throttling = Algorithm 1, pipelined
  writes = Algorithm 2);
* :mod:`repro.core` — the paper's analyses and the three case studies;
* :mod:`repro.workloads` — db_bench-equivalent workload generation;
* :mod:`repro.harness` — one experiment per paper figure.

Quickstart::

    from repro import Machine, Options, xpoint_ssd
    from repro.sim import mb

    machine = Machine.create(xpoint_ssd(), page_cache_bytes=mb(64))
    db = machine.open_db(Options(write_buffer_size=mb(4)))
    db.run_sync(db.put(b"key", b"value"))
    assert db.run_sync(db.get(b"key")) == b"value"
"""

from repro.errors import (
    CorruptionError,
    DBClosedError,
    DBError,
    FaultConfigError,
    FileSystemError,
    IOFaultError,
    OptionsError,
    ReproError,
    SimulationError,
    StaleFileError,
    StorageError,
    WorkloadError,
)
from repro.harness.machine import Machine
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.value import ValueRef
from repro.lsm.write_batch import WriteBatch
from repro.obs import Tracer, set_active_tracer
from repro.sim.engine import Engine
from repro.storage.profiles import (
    nvm_dimm,
    pcie_flash_ssd,
    sata_flash_ssd,
    xpoint_ssd,
)

__version__ = "1.0.0"

__all__ = [
    "CorruptionError",
    "DB",
    "DBClosedError",
    "DBError",
    "Engine",
    "FaultConfigError",
    "FileSystemError",
    "IOFaultError",
    "Machine",
    "Options",
    "OptionsError",
    "ReproError",
    "SimulationError",
    "StaleFileError",
    "StorageError",
    "Tracer",
    "ValueRef",
    "WorkloadError",
    "WriteBatch",
    "__version__",
    "nvm_dimm",
    "pcie_flash_ssd",
    "sata_flash_ssd",
    "set_active_tracer",
    "xpoint_ssd",
]
