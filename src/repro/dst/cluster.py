"""Cluster DST: seeded workload + net faults + node crashes -> invariants.

The single-node harness explores crash-consistency of one storage stack;
this one explores the *replication* contract of :mod:`repro.cluster` under
partitions, delay/drop storms, and node crash/restart:

I1  Acked durability: every quorum-acked write survives the schedule.
    After the run settles, the final leader's state must equal the replay
    of a prefix of the issued writes that covers every acked write.
I2  Prefix convergence: once the network heals and every node is back up,
    every node's replicated log is a prefix of (and catches up to) the
    leader's log, and every node's KV state equals the leader's.
I3  At most one leader per term (checked over the whole run).
I4  No resurrection: a physically truncated divergent group never
    reappears in any log (tracked by tag inside the cluster layer).

The client retries an unacked write as a *new* write index on the same
key (values are self-describing, so the expected-state replay stays
prefix-shaped even when an indeterminate attempt did land), and stops
issuing entirely once a write exhausts its retries — a half-written tail
on one key is prefix-consistent, a gap in the middle would not be.

Determinism: everything derives from the seed — workload, schedule,
restart delays, link jitter — via named RNG substreams, so a run replays
bit-identically, serial or under ``--jobs N``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster import Cluster, ClusterConfig
from repro.dst.harness import DELETE, GET, PUT, _dst_options, _Op
from repro.errors import DBError
from repro.faults import CRASH, NET_KINDS, FaultSchedule
from repro.fs.filesystem import SimFileSystem
from repro.fs.page_cache import PageCache
from repro.net import NetConfig, Network
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import mb, ms, us
from repro.storage.device import StorageDevice
from repro.storage.profiles import xpoint_ssd


@dataclass
class ClusterDstConfig:
    """Knobs of one cluster DST run (the seed does the exploring)."""

    num_ops: int = 160
    num_keys: int = 24
    n_nodes: int = 3
    faults: bool = True
    max_faults: int = 4
    #: Per-op horizon: a replicated synced write costs a leader fsync, a
    #: network round trip (~2x 50us) and a follower fsync, plus retries.
    horizon_per_op_ns: int = us(300)
    #: Max wall (virtual) time granted for end-of-run convergence.
    settle_ns: int = ms(200)
    max_retries: int = 6
    retry_backoff_ns: int = ms(1)
    schedule: Optional[FaultSchedule] = None  # overrides random generation

    @property
    def horizon_ns(self) -> int:
        return self.num_ops * self.horizon_per_op_ns


@dataclass
class ClusterDstResult:
    """Outcome of one run: verdict + the byte-comparable event log."""

    seed: int
    ok: bool
    reason: str  # "" when ok
    cut: int  # matched prefix cut (write index), -1 if none
    writes_issued: int
    writes_acked: int
    n_nodes: int
    failovers: int
    crashes: int
    gave_up: bool
    converged: bool
    log_digest: str  # md5 over the final leader log's tags
    schedule_json: str
    events: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        return "PASS" if self.ok else f"FAIL({self.reason})"


class ClusterDstRun:
    """One seeded workload/fault/failover/converge/verify cycle."""

    def __init__(self, seed: int, config: Optional[ClusterDstConfig] = None) -> None:
        self.seed = seed
        self.config = config or ClusterDstConfig()
        self.rng = RandomStream(seed, "cluster-dst")
        self.events: List[str] = []
        self.issued: List[_Op] = []
        self.acked: List[_Op] = []
        self.gave_up = False
        self.engine = Engine()

        schedule = self.config.schedule
        if schedule is None:
            schedule = FaultSchedule()
            if self.config.faults:
                schedule = FaultSchedule.random_cluster(
                    self.rng.fork("faults"),
                    self.config.horizon_ns,
                    self.config.n_nodes,
                    max_faults=self.config.max_faults,
                )
        self.schedule = schedule

        n = self.config.n_nodes
        fss = []
        for i in range(n):
            device = StorageDevice(
                self.engine, xpoint_ssd(), rng=self.rng.fork(f"device/{i}")
            )
            fss.append(SimFileSystem(self.engine, device, PageCache(mb(4))))
        self.network = Network(self.engine, n, self.rng.fork("net"), NetConfig())
        self.network.install_schedule(
            [s for s in schedule.specs if s.kind in NET_KINDS]
        )
        self.cluster = Cluster(
            self.engine,
            self.network,
            fss,
            _dst_options,
            self.rng.fork("cluster"),
            ClusterConfig(),
        )
        # Node crashes become control events; each gets a seed-derived
        # restart so the node rejoins (and divergence-truncation runs)
        # within the horizon.
        restart_rng = self.rng.fork("restarts")
        self.controls: List[Tuple[int, str, int]] = []
        for spec in schedule.specs:
            if spec.kind != CRASH:
                continue
            node = spec.node if spec.node is not None else 0
            self.controls.append((spec.at_time, "crash", node))
            delay = restart_rng.randint(ms(2), max(ms(4), self.config.horizon_ns // 4))
            self.controls.append((spec.at_time + delay, "restart", node))
        self.controls.sort()

    # -- workload ----------------------------------------------------------

    def _key(self, key_id: int) -> bytes:
        return b"k%04d" % key_id

    def _gen_ops(self) -> List[_Op]:
        """Logical ops; write indexes are assigned at *attempt* time."""
        rng = self.rng.fork("workload")
        ops: List[_Op] = []
        for _ in range(self.config.num_ops):
            key = self._key(rng.randint(0, self.config.num_keys - 1))
            roll = rng.uniform(0.0, 1.0)
            if roll < 0.70:
                pad = rng.randint(0, 64)
                ops.append(_Op(PUT, key, b"x" * pad))  # value finalized per attempt
            elif roll < 0.85:
                ops.append(_Op(DELETE, key))
            else:
                ops.append(_Op(GET, key))
        return ops

    def _log(self, line: str) -> None:
        self.events.append(f"t={self.engine.now} {line}")

    def _client(self, ops: List[_Op]):
        """Generator: sequential client with retry-as-new-write semantics."""
        cluster = self.cluster
        write_index = 0
        for op in ops:
            if op.kind == GET:
                try:
                    value = yield from cluster.get(op.key)
                except DBError:
                    value = None
                self._log(
                    f"get {op.key.decode()} -> "
                    + ("miss" if value is None else f"{len(value)}B")
                )
                continue
            for attempt in range(self.config.max_retries):
                write_index += 1
                if op.kind == PUT:
                    value = b"op%06d:%s:" % (write_index, op.key) + op.value
                    issued = _Op(PUT, op.key, value, write_index)
                else:
                    issued = _Op(DELETE, op.key, None, write_index)
                self.issued.append(issued)
                self._log(
                    f"issue #{issued.index} {issued.kind} {op.key.decode()}"
                    + (f" (retry {attempt})" if attempt else "")
                )
                if issued.kind == PUT:
                    acked, _seq = yield from cluster.put(issued.key, issued.value)
                else:
                    acked, _seq = yield from cluster.delete(issued.key)
                if acked:
                    self.acked.append(issued)
                    self._log(f"ack #{issued.index}")
                    break
                self._log(f"unacked #{issued.index}")
                yield self.config.retry_backoff_ns
            else:
                # Retries exhausted: stop issuing entirely.  A trailing run
                # of same-key attempts is prefix-consistent; writes *after*
                # a lost one would not be.
                self.gave_up = True
                self._log(f"client gave up after #{write_index}")
                return

    # -- scheduler loop ----------------------------------------------------

    def _step(self, proc) -> None:
        """Drive the engine, firing control events at exact virtual times."""
        engine = self.engine
        cluster = self.cluster
        i = 0
        while True:
            if proc.done and proc.exception is not None:
                raise proc.exception
            due = self.controls[i][0] if i < len(self.controls) else None
            if proc.done and due is None:
                return
            nxt = engine.peek()
            if due is not None and (nxt is None or due <= nxt):
                if engine.now < due:
                    engine.run(until=due)
                _t, action, node = self.controls[i]
                i += 1
                if action == "crash":
                    cluster.crash_node(node)
                else:
                    cluster.restart_node(node)
                continue
            if nxt is None:
                raise DBError("cluster dst deadlocked")
            engine.run(until=nxt)

    def _run_gen(self, gen, name: str):
        proc = self.engine.process(gen, name=name)
        proc.callbacks.append(lambda _ev: None)
        while not proc.done:
            nxt = self.engine.peek()
            if nxt is None:
                raise DBError(f"cluster dst: {name} deadlocked")
            self.engine.run(until=nxt)
        if proc.exception is not None:
            raise proc.exception
        return proc.value

    # -- settle + verification --------------------------------------------

    def _settle(self) -> bool:
        """Heal, restart everyone, wait for log convergence (True if it came)."""
        cluster = self.cluster
        self.network.heal()
        self._windows_off()
        for node in cluster.nodes:
            if not node.alive:
                cluster.restart_node(node.node_id)
        cluster.elect()

        def waiter():
            deadline = self.engine.now + self.config.settle_ns
            while self.engine.now < deadline:
                if self._converged():
                    return True
                yield ms(1)
            return self._converged()

        return self._run_gen(waiter(), "settle")

    def _windows_off(self) -> None:
        """End every net window still open (delay/drop storms included)."""
        now = self.engine.now
        for w in self.network._windows:
            if w.end > now:
                w.end = now

    def _converged(self) -> bool:
        cluster = self.cluster
        leader = cluster.leader_node
        if leader is None:
            return False
        llen = len(leader.log)
        for node in cluster.nodes:
            if not node.active or len(node.log) != llen:
                return False
        return True

    def _collect(self, node) -> Dict[bytes, bytes]:
        observed: Dict[bytes, bytes] = {}

        def reader():
            for key_id in range(self.config.num_keys):
                key = self._key(key_id)
                value = yield from node.db.get(key)
                if value is not None:
                    observed[key] = value

        self._run_gen(reader(), f"verify-{node.node_id}")
        return observed

    def _find_cut(self, observed: Dict[bytes, bytes], min_cut: int) -> int:
        """Smallest prefix cut >= ``min_cut`` whose replay matches."""
        state: Dict[bytes, bytes] = {}
        writes = self.issued
        for cut in range(len(writes) + 1):
            if cut > 0:
                op = writes[cut - 1]
                if op.kind == PUT:
                    state[op.key] = op.value
                else:
                    state.pop(op.key, None)
            if cut >= min_cut and state == observed:
                return cut
        return -1

    def _prefix_violation(self) -> Optional[str]:
        leader = self.cluster.leader_node
        ltags = [g.tag for g in leader.log]
        for node in self.cluster.nodes:
            tags = [g.tag for g in node.log]
            if tags != ltags[: len(tags)]:
                return f"node {node.node_id} log is not a leader-log prefix"
        return None

    # -- the run -----------------------------------------------------------

    def run(self) -> ClusterDstResult:
        cfg = self.config
        ops = self._gen_ops()
        self._log(
            f"cluster dst seed={self.seed} nodes={cfg.n_nodes} "
            f"ops={cfg.num_ops} keys={cfg.num_keys} "
            f"specs={len(self.schedule)} controls={len(self.controls)}"
        )
        self.cluster.start()
        proc = self.engine.process(self._client(ops), name="cluster-client")
        proc.callbacks.append(lambda _ev: None)
        self._step(proc)
        self._log(
            f"workload done issued={len(self.issued)} acked={len(self.acked)}"
            + (" gave_up" if self.gave_up else "")
        )

        converged = self._settle()
        cluster = self.cluster
        self.events.append("-- cluster --")
        self.events.extend(cluster.events)
        self.events.append("-- net --")
        self.events.extend(self.network.log)

        leader = cluster.leader_node
        last_acked = max((op.index for op in self.acked), default=0)
        cut = -1
        reason = ""
        if cluster.violations:
            reason = f"invariant: {cluster.violations[0]}"
        elif leader is None:
            reason = "no leader after settle"
        elif not converged:
            reason = "nodes did not converge after heal+restart"
        else:
            structural = self._prefix_violation()
            if structural is not None:
                reason = structural
            else:
                terms = [t for t, _n in cluster.term_history]
                if len(terms) != len(set(terms)):
                    reason = f"multiple leaders in one term: {cluster.term_history}"
        if not reason:
            observed = self._collect(leader)
            cut = self._find_cut(observed, last_acked)
            if cut < 0:
                reason = (
                    f"no consistent prefix cut >= {last_acked} "
                    f"(acked write lost or unissued write surfaced)"
                )
            else:
                for node in cluster.nodes:
                    if node is leader:
                        continue
                    if self._collect(node) != observed:
                        reason = f"node {node.node_id} state differs from leader"
                        break
        ok = reason == ""

        digest = hashlib.md5()
        if leader is not None:
            for g in leader.log:
                digest.update(b"%d:%d;" % g.tag)
        self._log(
            f"verdict={'PASS' if ok else 'FAIL'} cut={cut}/{len(self.issued)} "
            f"acked={len(self.acked)} failovers={cluster._failovers - 1}"
        )
        return ClusterDstResult(
            seed=self.seed,
            ok=ok,
            reason=reason,
            cut=cut,
            writes_issued=len(self.issued),
            writes_acked=len(self.acked),
            n_nodes=cfg.n_nodes,
            failovers=cluster._failovers - 1,
            crashes=sum(1 for _t, a, _n in self.controls if a == "crash"),
            gave_up=self.gave_up,
            converged=converged,
            log_digest=digest.hexdigest(),
            schedule_json=self.schedule.to_json(),
            events=self.events,
        )
