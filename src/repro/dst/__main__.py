"""CLI: ``python -m repro.dst --seed N`` (and seed sweeps for CI).

Each seed is one independent simulated universe: workload, fault
schedule and crash point all derive from it.  A failing seed prints a
minimal repro command; ``--save`` dumps the fault schedule as JSON and
``--replay`` re-runs a saved schedule under any seed's workload.
``--selfcheck`` runs every seed twice in-process and demands
byte-identical event logs — the determinism contract CI leans on.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.dst.cluster import ClusterDstConfig, ClusterDstRun
from repro.dst.harness import DstConfig, DstResult, DstRun
from repro.dst.serving import ServingDstConfig, ServingDstRun
from repro.dst.storm import STORM_AUTO, STORM_KINDS, StormConfig, StormRun
from repro.faults import FaultSchedule
from repro.perf.parallel import default_jobs, imap_points


def _parse_seeds(args: argparse.Namespace) -> List[int]:
    if args.seeds:
        lo, _, hi = args.seeds.partition(":")
        try:
            lo_i, hi_i = int(lo), int(hi)
        except ValueError:
            raise SystemExit(f"bad --seeds range {args.seeds!r} (want A:B)")
        if hi_i <= lo_i:
            raise SystemExit(f"empty --seeds range {args.seeds!r}")
        return list(range(lo_i, hi_i))
    return [args.seed]


def _repro_line(args: argparse.Namespace, seed: int) -> str:
    parts = [f"python -m repro.dst --seed {seed}"]
    if args.storm:
        parts.append("--storm")
        if args.storm_kind != STORM_AUTO:
            parts.append(f"--storm-kind {args.storm_kind}")
    if args.cluster:
        parts.append("--cluster")
        if args.nodes != 3:
            parts.append(f"--nodes {args.nodes}")
    if args.serving:
        parts.append("--serving")
        if args.shards != 2:
            parts.append(f"--shards {args.shards}")
        if args.replicas != 3:
            parts.append(f"--replicas {args.replicas}")
    if args.ops != 300:
        parts.append(f"--ops {args.ops}")
    if args.keys != 40:
        parts.append(f"--keys {args.keys}")
    if args.no_faults:
        parts.append("--no-faults")
    if args.replay:
        parts.append(f"--replay {args.replay}")
    return " ".join(parts)


# -- seed workers (run inside worker processes under --jobs) -----------------
#
# Each worker runs one seed's full universe (plus the --selfcheck rerun) and
# ships back only picklable results.  Configs are constructed *inside* the
# worker, one fresh instance per run, exactly as the serial loop does, so
# the event logs are byte-identical for every jobs value.


def _dst_seed_worker(item):
    seed, cfg_kwargs, selfcheck = item
    result = DstRun(seed, DstConfig(**cfg_kwargs)).run()
    again = DstRun(seed, DstConfig(**cfg_kwargs)).run() if selfcheck else None
    return result, again


def _cluster_seed_worker(item):
    seed, cfg_kwargs, selfcheck = item
    result = ClusterDstRun(seed, ClusterDstConfig(**cfg_kwargs)).run()
    again = ClusterDstRun(seed, ClusterDstConfig(**cfg_kwargs)).run() if selfcheck else None
    return result, again


def _serving_seed_worker(item):
    seed, cfg_kwargs, selfcheck = item
    result = ServingDstRun(seed, ServingDstConfig(**cfg_kwargs)).run()
    again = (
        ServingDstRun(seed, ServingDstConfig(**cfg_kwargs)).run()
        if selfcheck
        else None
    )
    return result, again


def _storm_seed_worker(item):
    seed, cfg_kwargs, selfcheck = item

    def make() -> StormConfig:
        cfg = StormConfig(kind=cfg_kwargs["kind"])
        if cfg_kwargs["ops"] is not None:
            cfg.num_ops = cfg_kwargs["ops"]
        if cfg_kwargs["keys"] is not None:
            cfg.num_keys = cfg_kwargs["keys"]
        return cfg

    result = StormRun(seed, make()).run()
    again = StormRun(seed, make()).run() if selfcheck else None
    return result, again


def _run_storm(args: argparse.Namespace, seeds: List[int]) -> int:
    """The --storm main loop: degraded-mode/auto-resume sweeps."""
    failures = 0
    degraded_seeds = 0
    cfg_kwargs = {
        "kind": args.storm_kind,
        "ops": args.ops if args.ops != 300 else None,
        "keys": args.keys if args.keys != 40 else None,
    }
    items = [(seed, cfg_kwargs, args.selfcheck) for seed in seeds]
    runs = imap_points(_storm_seed_worker, items, jobs=args.jobs)
    for seed, (result, again) in zip(seeds, runs):
        if args.selfcheck:
            if again.events != result.events or again.verdict != result.verdict:
                print(f"seed={seed} NONDETERMINISTIC: reruns diverge")
                for a, b in zip(result.events, again.events):
                    if a != b:
                        print(f"  first : {a}\n  second: {b}")
                        break
                failures += 1
                continue
        if result.degraded_entries:
            degraded_seeds += 1
        quiesce = "never" if result.quiesce_ns < 0 else f"{result.quiesce_ns}ns"
        print(
            f"seed={seed} {result.verdict} kind={result.kind} "
            f"acked={result.writes_acked}/{result.writes_issued} "
            f"rejected={result.writes_rejected} "
            f"degraded={result.degraded_entries} "
            f"resumes={result.resume_successes} "
            f"read_only={'y' if result.went_read_only else 'n'} "
            f"quiesce={quiesce}"
            + (" deterministic" if args.selfcheck else "")
        )
        if args.log:
            for line in result.events:
                print(f"  {line}")
        if args.save:
            with open(args.save, "w", encoding="utf-8") as fh:
                fh.write(result.schedule_json + "\n")
            print(f"  schedule saved to {args.save}")
        if not result.ok:
            failures += 1
            print(f"  reason: {result.reason}")
            print(f"  repro: {_repro_line(args, seed)}")
    if len(seeds) > 1:
        print(f"storm sweep: {degraded_seeds}/{len(seeds)} seeds entered degraded mode")
        if degraded_seeds == 0:
            print("  FAIL: no seed ever degraded — the storm is not storming")
            failures += 1
    return 1 if failures else 0


def _run_cluster(args: argparse.Namespace, seeds: List[int]) -> int:
    """The --cluster main loop: replication/failover invariant sweeps."""
    schedule = FaultSchedule.from_file(args.replay) if args.replay else None
    failures = 0
    failovers = 0
    cfg_kwargs = {
        "num_ops": args.ops if args.ops != 300 else 160,
        "num_keys": args.keys if args.keys != 40 else 24,
        "n_nodes": args.nodes,
        "faults": not args.no_faults,
        "max_faults": args.max_faults,
        "schedule": schedule,
    }
    items = [(seed, cfg_kwargs, args.selfcheck) for seed in seeds]
    runs = imap_points(_cluster_seed_worker, items, jobs=args.jobs)
    for seed, (result, again) in zip(seeds, runs):
        if args.selfcheck:
            if (
                again.events != result.events
                or again.verdict != result.verdict
                or again.log_digest != result.log_digest
            ):
                print(f"seed={seed} NONDETERMINISTIC: reruns diverge")
                for a, b in zip(result.events, again.events):
                    if a != b:
                        print(f"  first : {a}\n  second: {b}")
                        break
                failures += 1
                continue
        failovers += result.failovers
        print(
            f"seed={seed} {result.verdict} cut={result.cut}/{result.writes_issued} "
            f"acked={result.writes_acked} failovers={result.failovers} "
            f"crashes={result.crashes} "
            f"converged={'y' if result.converged else 'n'} "
            f"log={result.log_digest[:8]}"
            + (" gave_up" if result.gave_up else "")
            + (" deterministic" if args.selfcheck else "")
        )
        if args.log:
            for line in result.events:
                print(f"  {line}")
        if args.save:
            with open(args.save, "w", encoding="utf-8") as fh:
                fh.write(result.schedule_json + "\n")
            print(f"  schedule saved to {args.save}")
        if not result.ok:
            failures += 1
            print(f"  reason: {result.reason}")
            print(f"  repro: {_repro_line(args, seed)}")
    if len(seeds) > 1:
        print(f"cluster sweep: {failovers} failover(s) across {len(seeds)} seeds")
    return 1 if failures else 0


def _run_serving(args: argparse.Namespace, seeds: List[int]) -> int:
    """The --serving main loop: fleet-under-chaos resilience sweeps.

    Beyond per-seed verdicts, the sweep itself fails unless *every* seed
    injected at least one leader-affecting fault (crash or partition)
    while tenant traffic was live — fair-weather sweeps prove nothing.
    """
    schedule = FaultSchedule.from_file(args.replay) if args.replay else None
    failures = 0
    failovers = 0
    cfg_kwargs = {
        "shards": args.shards,
        "replicas": args.replicas,
        "faults": not args.no_faults,
        "schedule": schedule,
    }
    if args.keys != 40:
        cfg_kwargs["key_count"] = args.keys
    items = [(seed, cfg_kwargs, args.selfcheck) for seed in seeds]
    runs = imap_points(_serving_seed_worker, items, jobs=args.jobs)
    for seed, (result, again) in zip(seeds, runs):
        if args.selfcheck:
            if (
                again.events != result.events
                or again.verdict != result.verdict
                or again.log_digest != result.log_digest
            ):
                print(f"seed={seed} NONDETERMINISTIC: reruns diverge")
                for a, b in zip(result.events, again.events):
                    if a != b:
                        print(f"  first : {a}\n  second: {b}")
                        break
                failures += 1
                continue
        failovers += result.failovers
        print(
            f"seed={seed} {result.verdict} ops={result.ops} "
            f"shed={result.shed} errors={result.errors} "
            f"acked={result.writes_acked} failovers={result.failovers} "
            f"leader_faults={result.leader_faults} "
            f"ryw={result.ryw_violations} unresolved={result.unresolved} "
            f"max_op={result.max_elapsed_us}us "
            f"converged={'y' if result.converged else 'n'} "
            f"log={result.log_digest[:8]}"
            + (" deterministic" if args.selfcheck else "")
        )
        if args.log:
            for line in result.events:
                print(f"  {line}")
        if args.save:
            with open(args.save, "w", encoding="utf-8") as fh:
                fh.write(result.schedule_json + "\n")
            print(f"  schedule saved to {args.save}")
        if not result.ok:
            failures += 1
            print(f"  reason: {result.reason}")
            print(f"  repro: {_repro_line(args, seed)}")
    if len(seeds) > 1:
        print(
            f"serving sweep: {failovers} failover(s) across {len(seeds)} seeds"
        )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dst",
        description="Deterministic crash-consistency testing of the simulated LSM stack.",
    )
    parser.add_argument("--seed", type=int, default=0, help="single seed to run")
    parser.add_argument(
        "--seeds", metavar="A:B", help="run seeds A..B-1 (overrides --seed)"
    )
    parser.add_argument("--ops", type=int, default=300, help="workload operations")
    parser.add_argument("--keys", type=int, default=40, help="key-space size")
    parser.add_argument(
        "--no-faults", action="store_true", help="clean run: no faults, power cut at end"
    )
    parser.add_argument(
        "--max-faults", type=int, default=5, help="max random fault specs per run"
    )
    parser.add_argument(
        "--replay", metavar="FILE", help="run a saved fault schedule (JSON) instead of a random one"
    )
    parser.add_argument(
        "--save", metavar="FILE", help="write the run's fault schedule as JSON"
    )
    parser.add_argument(
        "--log", action="store_true", help="print the virtual-time event log"
    )
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help="run each seed twice; fail unless event logs are byte-identical",
    )
    parser.add_argument(
        "--storm",
        action="store_true",
        help="storm-then-clear mode: degraded-mode entry, auto-resume, liveness",
    )
    parser.add_argument(
        "--storm-kind",
        choices=(STORM_AUTO,) + STORM_KINDS,
        default=STORM_AUTO,
        help="storm flavour: io faults, disk-full squeeze, both, or per-seed auto",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="replicated-cluster mode: WAL shipping, quorum acks, partition/failover",
    )
    parser.add_argument(
        "--nodes", type=int, default=3, help="cluster size for --cluster (default 3)"
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help="serving-chaos mode: replicated shards + tenant fleet + "
        "failover/partition/storms injected mid-traffic",
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="shard groups for --serving (default 2)"
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=3,
        help="replicas per shard group for --serving (default 3)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=default_jobs(),
        metavar="N",
        help="worker processes for seed sweeps (default: $REPRO_JOBS or 1); "
        "output is byte-identical for any value",
    )
    args = parser.parse_args(argv)

    if sum((args.storm, args.cluster, args.serving)) > 1:
        raise SystemExit("--storm, --cluster and --serving are mutually exclusive")
    if args.storm:
        if args.replay:
            raise SystemExit("--storm generates its own schedule; --replay invalid")
        return _run_storm(args, _parse_seeds(args))
    if args.cluster:
        return _run_cluster(args, _parse_seeds(args))
    if args.serving:
        return _run_serving(args, _parse_seeds(args))

    schedule = FaultSchedule.from_file(args.replay) if args.replay else None
    failures = 0
    seeds = _parse_seeds(args)
    cfg_kwargs = {
        "num_ops": args.ops,
        "num_keys": args.keys,
        "faults": not args.no_faults,
        "max_faults": args.max_faults,
        "schedule": schedule,
    }
    items = [(seed, cfg_kwargs, args.selfcheck) for seed in seeds]
    runs = imap_points(_dst_seed_worker, items, jobs=args.jobs)
    for seed, (result, again) in zip(seeds, runs):
        if args.selfcheck:
            if again.events != result.events or again.verdict != result.verdict:
                print(f"seed={seed} NONDETERMINISTIC: reruns diverge")
                for a, b in zip(result.events, again.events):
                    if a != b:
                        print(f"  first : {a}\n  second: {b}")
                        break
                failures += 1
                continue
        status = result.verdict
        crash = "clean" if result.crash_ns < 0 else f"t={result.crash_ns}"
        print(
            f"seed={seed} {status} cut={result.cut}/{result.writes_issued} "
            f"acked={result.writes_acked} crash={crash} "
            f"faults={result.faults_fired}"
            + (" deterministic" if args.selfcheck else "")
        )
        if args.log:
            for line in result.events:
                print(f"  {line}")
        if args.save:
            with open(args.save, "w", encoding="utf-8") as fh:
                fh.write(result.schedule_json + "\n")
            print(f"  schedule saved to {args.save}")
        if not result.ok:
            failures += 1
            print(f"  reason: {result.reason}")
            print(f"  repro: {_repro_line(args, seed)}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
