"""Deterministic simulation testing (DST) for the simulated LSM stack.

One :class:`DstRun` stands up a full machine — engine, fault-injected
device and filesystem, DB — drives a seeded random workload interleaved
with a seeded fault schedule, crashes the machine, recovers, and checks
crash-consistency invariants:

* **acked durability** — every acknowledged (group-committed, fsynced)
  write is readable after recovery;
* **prefix consistency** — the surviving state corresponds to some prefix
  cut of the issued write sequence at or after the last acked write (no
  un-acked write resurrects while an older acked one is lost, no stale
  value reappears);
* **structural integrity** — the recovered version references only live,
  fully durable SST files and satisfies the level invariants.

Reads that hit injected media corruption must fail with a typed
:class:`~repro.errors.CorruptionError` — detection counts as correct
behaviour; silent wrong data does not.

Everything — workload, fault schedule, device timing — derives from one
seed through named :class:`~repro.sim.rng.RandomStream` forks, so a run
is reproducible down to its virtual-time event log.  ``python -m
repro.dst --seed N`` replays a seed; a failing seed prints a minimal
repro command line.
"""

from repro.dst.cluster import ClusterDstConfig, ClusterDstResult, ClusterDstRun
from repro.dst.harness import DstConfig, DstResult, DstRun
from repro.dst.serving import ServingDstConfig, ServingDstResult, ServingDstRun

__all__ = [
    "ClusterDstConfig",
    "ClusterDstResult",
    "ClusterDstRun",
    "DstConfig",
    "DstResult",
    "DstRun",
    "ServingDstConfig",
    "ServingDstResult",
    "ServingDstRun",
]
