"""The DST harness: seeded workload + seeded faults -> crash -> verify.

The harness owns the scheduler loop: it steps the engine one occurrence
batch at a time (``engine.run(until=engine.peek())``) and checks the fault
injector's crash flag between steps, so a crash point lands at an exact,
reproducible virtual time — including times where the machine is idle
(``run(until=...)`` advances the clock through dead air).

Verification is a single *prefix-cut* search.  Writes are numbered at
generation time and their values are self-describing (the value bytes
encode the write index), so the durable state after recovery either
equals the replay of some prefix ``ops[1..c]`` with ``c >= last acked
write`` — in which case the run is consistent — or no such cut exists and
the harness reports which invariant broke.  A read that raises
:class:`CorruptionError` is treated as *detected* loss (matches any
expected value): the contract under injected media damage is detection,
never silent wrong data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CorruptionError, DBError, IOFaultError
from repro.faults import (
    CRASH,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultyDevice,
    FaultyFileSystem,
)
from repro.fs.page_cache import PageCache
from repro.lsm.db import DB
from repro.lsm.options import HASH_REP, WAL_SYNC, Options
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import kb, mb, us
from repro.storage.profiles import xpoint_ssd

_CORRUPT = object()  # observed-value sentinel: read failed with CorruptionError

PUT = "put"
DELETE = "delete"
GET = "get"


@dataclass(frozen=True)
class _Op:
    """One generated workload operation (index counts writes only)."""

    kind: str
    key: bytes
    value: Optional[bytes] = None
    index: int = 0  # 1-based write index; 0 for reads


@dataclass
class DstConfig:
    """Knobs of one DST run (all defaulted; the seed does the exploring)."""

    num_ops: int = 300
    num_keys: int = 40
    faults: bool = True
    max_faults: int = 5
    # Virtual-time horizon the schedule (and the crash point) is drawn in.
    # ~30 us per synced write on the XPoint profile puts the crash inside
    # or shortly after the workload for the default op count.
    horizon_per_op_ns: int = us(30)
    schedule: Optional[FaultSchedule] = None  # overrides random generation

    @property
    def horizon_ns(self) -> int:
        return self.num_ops * self.horizon_per_op_ns


@dataclass
class DstResult:
    """Outcome of one run: verdict + the byte-comparable event log."""

    seed: int
    ok: bool
    reason: str  # "" when ok
    cut: int  # matched prefix cut (write index), -1 if none
    writes_issued: int
    writes_acked: int
    crash_ns: int  # virtual crash time (-1: clean end-of-run power cut)
    faults_fired: int
    schedule_json: str
    events: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        return "PASS" if self.ok else f"FAIL({self.reason})"


def _dst_options() -> Options:
    """A small, crash-honest configuration.

    WAL_SYNC makes every ack a durability promise (the property under
    test); the hash memtable rep keeps in-process reruns bit-identical
    (the skiplist rep forks its RNG off a process-global counter);
    paranoid checks verify SST block checksums on every read so injected
    corruption is detected, not returned.
    """
    return Options(
        write_buffer_size=kb(16),
        max_bytes_for_level_base=kb(64),
        target_file_size_base=kb(32),
        block_cache_bytes=kb(32),
        memtable_rep=HASH_REP,
        wal_mode=WAL_SYNC,
        paranoid_checks=True,
        name="dst",
    )


class DstRun:
    """One seeded workload/fault/crash/recover/verify cycle."""

    def __init__(self, seed: int, config: Optional[DstConfig] = None) -> None:
        self.seed = seed
        self.config = config or DstConfig()
        self.rng = RandomStream(seed, "dst")
        self.events: List[str] = []
        self.issued: List[_Op] = []
        self.acked: List[_Op] = []
        self.engine = Engine()

        schedule = self.config.schedule
        if schedule is None:
            schedule = FaultSchedule()
            if self.config.faults:
                horizon = self.config.horizon_ns
                schedule = FaultSchedule.random(
                    self.rng.fork("faults"),
                    horizon,
                    max_faults=self.config.max_faults,
                )
                crash_at = self.rng.fork("crash").randint(horizon // 8, horizon)
                schedule.add(FaultSpec(CRASH, at_time=crash_at))
        self.schedule = schedule

        self.injector = FaultInjector(self.engine, schedule)
        self.device = FaultyDevice(
            self.engine, xpoint_ssd(), self.injector, self.rng.fork("device")
        )
        self.fs = FaultyFileSystem(
            self.engine, self.device, PageCache(mb(16)), self.injector
        )
        self.options = _dst_options()

    # -- workload ----------------------------------------------------------

    def _key(self, key_id: int) -> bytes:
        return b"k%04d" % key_id

    def _gen_ops(self) -> List[_Op]:
        """The full op sequence, fixed up front (writes numbered from 1)."""
        rng = self.rng.fork("workload")
        ops: List[_Op] = []
        write_index = 0
        for _ in range(self.config.num_ops):
            key = self._key(rng.randint(0, self.config.num_keys - 1))
            roll = rng.uniform(0.0, 1.0)
            if roll < 0.70:
                write_index += 1
                pad = rng.randint(0, 96)
                value = b"op%06d:%s:" % (write_index, key) + b"x" * pad
                ops.append(_Op(PUT, key, value, write_index))
            elif roll < 0.85:
                write_index += 1
                ops.append(_Op(DELETE, key, None, write_index))
            else:
                ops.append(_Op(GET, key))
        return ops

    def _log(self, line: str) -> None:
        self.events.append(f"t={self.engine.now} {line}")

    def _client(self, db: DB, ops: List[_Op]):
        """Generator: issue ops sequentially, recording issue/ack points."""
        for op in ops:
            try:
                if op.kind == PUT:
                    self.issued.append(op)
                    self._log(f"issue #{op.index} put {op.key.decode()}")
                    yield from db.put(op.key, op.value)
                    self.acked.append(op)
                    self._log(f"ack #{op.index}")
                elif op.kind == DELETE:
                    self.issued.append(op)
                    self._log(f"issue #{op.index} del {op.key.decode()}")
                    yield from db.delete(op.key)
                    self.acked.append(op)
                    self._log(f"ack #{op.index}")
                else:
                    value = yield from db.get(op.key)
                    self._log(
                        f"get {op.key.decode()} -> "
                        + ("miss" if value is None else f"{len(value)}B")
                    )
            except CorruptionError as exc:
                self._log(f"op detected corruption: {exc}")
            except IOFaultError as exc:
                self._log(f"op failed: {exc.op} io fault (transient={exc.transient})")

    # -- scheduler loop ----------------------------------------------------

    def _step_until_crash(self, proc) -> bool:
        """Drive the engine; True if a crash point fired.

        Steps one occurrence batch at a time, clamped to the next time-only
        crash point so the crash lands at its exact virtual time even while
        the machine is idle.
        """
        engine = self.engine
        injector = self.injector
        while True:
            if injector.poll():
                return True
            if proc is not None and proc.done:
                if proc.exception is not None:
                    raise proc.exception
                proc = None
            due = injector.due_crash_time()
            nxt = engine.peek()
            if nxt is None:
                if proc is not None:
                    raise DBError("dst: workload deadlocked")
                if due is None:
                    return False  # idle, nothing pending: clean end
                engine.run(until=due)
                continue
            engine.run(until=nxt if due is None else min(nxt, due))

    def _run_op(self, gen, name: str):
        """Drive one generator to completion (no crash checks)."""
        proc = self.engine.process(gen, name=name)
        proc.callbacks.append(lambda _ev: None)
        while not proc.done:
            nxt = self.engine.peek()
            if nxt is None:
                raise DBError(f"dst: {name} deadlocked")
            self.engine.run(until=nxt)
        if proc.exception is not None:
            raise proc.exception
        return proc.value

    # -- verification ------------------------------------------------------

    def _collect(self, db: DB) -> Dict[bytes, object]:
        """Observed durable state: key -> value bytes (or _CORRUPT)."""
        observed: Dict[bytes, object] = {}

        def reader():
            for key_id in range(self.config.num_keys):
                key = self._key(key_id)
                try:
                    value = yield from db.get(key)
                except CorruptionError as exc:
                    self._log(f"verify read {key.decode()}: corruption detected")
                    observed[key] = _CORRUPT
                    continue
                if value is not None:
                    observed[key] = value

        self._run_op(reader(), "dst-verify")
        return observed

    @staticmethod
    def _matches(state: Dict[bytes, bytes], observed: Dict[bytes, object]) -> bool:
        for key, value in observed.items():
            if value is _CORRUPT:
                continue  # detected loss: consistent with any expectation
            if state.get(key) != value:
                return False
        for key in state:
            if key not in observed:
                return False
        return True

    def _find_cut(self, observed: Dict[bytes, object], min_cut: int) -> int:
        """Smallest prefix cut >= ``min_cut`` matching ``observed``."""
        writes = [op for op in self.issued if op.kind != GET]
        state: Dict[bytes, bytes] = {}
        for cut in range(len(writes) + 1):
            if cut > 0:
                op = writes[cut - 1]
                if op.kind == PUT:
                    state[op.key] = op.value
                else:
                    state.pop(op.key, None)
            if cut >= min_cut and self._matches(state, observed):
                return cut
        return -1

    def _check_structure(self, db: DB) -> Optional[str]:
        """Structural invariant I3; returns a failure reason or None."""
        try:
            db.versions.current.check_invariants()
        except DBError as exc:
            return f"level invariants: {exc}"
        for meta in db.versions.current.all_files():
            if not self.fs.exists(meta.file.path):
                return f"version references deleted file {meta.file.path}"
            if meta.file.size < meta.sst.file_bytes:
                return (
                    f"version references partial file {meta.file.path} "
                    f"({meta.file.size} < {meta.sst.file_bytes} bytes)"
                )
        return None

    # -- the run -----------------------------------------------------------

    def run(self) -> DstResult:
        ops = self._gen_ops()
        self._log(
            f"dst seed={self.seed} ops={self.config.num_ops} "
            f"keys={self.config.num_keys} specs={len(self.schedule)}"
        )
        db = DB(self.engine, self.fs, self.options, rng=self.rng.fork("db"))
        proc = self.engine.process(self._client(db, ops), name="dst-client")
        proc.callbacks.append(lambda _ev: None)

        crashed = self._step_until_crash(proc)
        crash_ns = self.engine.now if crashed else -1
        self._log("crash point" if crashed else "workload drained; power cut")
        self.events.append("-- faults --")
        self.events.extend(self.injector.log)

        # Power loss + recovery.  Faults stop at the crash: the check phase
        # measures what the crash left behind, not fresh damage.
        self.fs.crash()
        self.injector.disarm()
        db2 = DB(self.engine, self.fs, self.options, rng=self.rng.fork("db2"))
        self._log(
            "recovered"
            f" wal_records={db2.stats.get('recovery.wal_records')}"
            f" wal_bad={db2.stats.get('recovery.wal_bad_records')}"
            f" wal_truncated={db2.stats.get('recovery.wal_truncated_logs')}"
            f" wal_dropped={db2.stats.get('recovery.wal_dropped_logs')}"
            f" files={db2.stats.get('recovery.files')}"
        )

        observed = self._collect(db2)
        structure = self._check_structure(db2)
        writes = [op for op in self.issued if op.kind != GET]
        acked = [op for op in self.acked if op.kind != GET]
        last_acked = max((op.index for op in acked), default=0)
        # Acked durability holds up to *detected* loss: when recovery itself
        # reported truncating bad WAL/manifest records (injected media
        # corruption destroyed synced data — unrecoverable without
        # replication, as in RocksDB's point-in-time recovery), the state
        # may legitimately roll back past acks.  It must still be a
        # consistent prefix; and undetected loss remains a failure.
        detected_loss = (
            db2.stats.get("recovery.wal_bad_records")
            or db2.stats.get("recovery.wal_dropped_logs")
            or db2.versions.stats.get("manifest_truncated_records")
        )
        min_cut = 0 if detected_loss else last_acked
        cut = self._find_cut(observed, min_cut)

        if structure is not None:
            ok, reason = False, structure
        elif cut < 0:
            ok, reason = False, (
                f"no consistent prefix cut >= {min_cut} "
                f"(last acked write #{last_acked}, "
                f"detected_loss={bool(detected_loss)})"
            )
        else:
            ok, reason = True, ""
        self._log(
            f"verdict={'PASS' if ok else 'FAIL'} cut={cut}/{len(writes)} "
            f"acked={len(acked)}"
        )

        return DstResult(
            seed=self.seed,
            ok=ok,
            reason=reason,
            cut=cut,
            writes_issued=len(writes),
            writes_acked=len(acked),
            crash_ns=crash_ns,
            faults_fired=len(self.injector.log),
            schedule_json=self.schedule.to_json(),
            events=self.events,
        )
