"""Storm-then-clear DST: degraded-mode entry, auto-resume, and liveness.

Where the crash harness (:mod:`repro.dst.harness`) asks "did the crash
lose acked data?", this one asks the graceful-degradation questions: when
a *transient* fault storm or a *temporary* disk-full squeeze hits the
background machinery, does the DB (a) enter degraded mode instead of
dying, (b) keep detecting and rejecting what it must (typed errors to the
client, never silent loss), (c) auto-resume once the storm clears, and
(d) quiesce within a bounded amount of virtual time?

Three storm kinds, chosen per seed under ``auto``:

- ``io``    — a window of injected transient write (and sometimes read)
  faults.  The WAL runs buffered so the faults surface at background
  fsyncs (flush / compaction / manifest), exercising the error handler
  rather than the client's own retry path.
- ``space`` — a timed quota squeeze: at the window start the filesystem
  quota drops to just above current usage, so flushes, compactions and
  synced WAL writes start seeing ENOSPC; at the window end it lifts.
- ``mixed`` — both at once.

Because there is no crash, the durability contract is *exact*: every
acked write is visible, every unacked write is not (single client, so a
failed group can't be half-applied).  The final probe write must succeed
— a DB that stays read-only after the storm cleared fails ``liveness``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    CorruptionError,
    DBError,
    DBReadOnlyError,
    IOFaultError,
    OutOfSpaceError,
)
from repro.faults import (
    READ_ERROR,
    WRITE_ERROR,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultyDevice,
    FaultyFileSystem,
)
from repro.fs.page_cache import PageCache
from repro.lsm.db import DB
from repro.lsm.options import HASH_REP, WAL_BUFFERED, WAL_SYNC, Options
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import kb, mb, ms, us
from repro.storage.profiles import xpoint_ssd

STORM_IO = "io"
STORM_SPACE = "space"
STORM_MIXED = "mixed"
STORM_AUTO = "auto"
STORM_KINDS = (STORM_IO, STORM_SPACE, STORM_MIXED)

PUT = "put"
DELETE = "delete"
GET = "get"


def _sleep(ns: int):
    """Generator: advance virtual time by ``ns``."""
    yield ns


@dataclass(frozen=True)
class _Op:
    kind: str
    key: bytes
    value: Optional[bytes] = None
    index: int = 0  # 1-based write index; 0 for reads


@dataclass
class StormConfig:
    """Knobs of one storm run (all defaulted; the seed does the exploring)."""

    kind: str = STORM_AUTO
    num_ops: int = 400
    num_keys: int = 48
    pace_ns: int = us(30)  # mean think time between client ops
    # Storm window as fractions of the workload horizon: opens early
    # enough that background work is flowing, closes with time to spare.
    window_open_frac: float = 0.25
    window_close_frac: float = 0.55
    # Quota headroom left at the squeeze.  Extents are 1 MB, so zero slack
    # means the very next file creation (flush output, WAL roll) hits
    # ENOSPC — the squeeze bites immediately instead of depending on how
    # many extents the window's workload happens to allocate.
    squeeze_slack_bytes: int = 0
    drain_ns: int = ms(120)  # quiesce budget after the window closes
    # Explicit fault schedule (e.g. a fuzzer genome or a replayed corpus
    # entry).  None keeps the seed-derived storm schedule.
    schedule: Optional[FaultSchedule] = None

    @property
    def horizon_ns(self) -> int:
        return self.num_ops * self.pace_ns

    @property
    def window_ns(self) -> "tuple[int, int]":
        h = self.horizon_ns
        return int(h * self.window_open_frac), int(h * self.window_close_frac)


@dataclass
class StormResult:
    """Outcome of one run: verdict plus the degraded-mode trajectory."""

    seed: int
    kind: str  # resolved kind (never "auto")
    ok: bool
    reason: str  # "" when ok
    writes_issued: int
    writes_acked: int
    writes_rejected: int  # typed failures surfaced to the client
    degraded_entries: int  # times the DB entered degraded mode
    resume_successes: int
    went_read_only: bool  # reached hard/fatal at least once
    quiesce_ns: int  # virtual ns from window close to idle (-1: never)
    faults_fired: int
    schedule_json: str
    events: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        return "PASS" if self.ok else f"FAIL({self.reason})"


def _storm_options() -> Options:
    """Small and fast-resuming; WAL mode is set per kind by the run."""
    return Options(
        write_buffer_size=kb(8),
        max_bytes_for_level_base=kb(64),
        target_file_size_base=kb(32),
        block_cache_bytes=kb(32),
        memtable_rep=HASH_REP,
        paranoid_checks=True,
        bg_error_resume_interval_ns=us(200),
        bg_error_resume_backoff=2.0,
        bg_error_resume_max_interval_ns=ms(5),
        max_bg_error_resume_count=3,
        name="storm",
    )


class StormRun:
    """One seeded storm/clear/resume/verify cycle (no crash)."""

    def __init__(self, seed: int, config: Optional[StormConfig] = None) -> None:
        self.seed = seed
        self.config = config or StormConfig()
        self.rng = RandomStream(seed, "storm")
        self.events: List[str] = []
        self.issued: List[_Op] = []
        self.acked: List[_Op] = []
        self.rejected = 0
        self.engine = Engine()

        kind = self.config.kind
        if kind == STORM_AUTO:
            kind = STORM_KINDS[self.rng.fork("kind").randint(0, len(STORM_KINDS) - 1)]
        if kind not in STORM_KINDS:
            raise DBError(f"unknown storm kind {kind!r}")
        self.kind = kind

        w0, w1 = self.config.window_ns
        self.window = (w0, w1)
        if self.config.schedule is not None:
            self.schedule = self.config.schedule
        else:
            self.schedule = self._build_schedule(w0, w1)
        self.injector = FaultInjector(self.engine, self.schedule)
        self.device = FaultyDevice(
            self.engine, xpoint_ssd(), self.injector, self.rng.fork("device")
        )
        self.fs = FaultyFileSystem(
            self.engine, self.device, PageCache(mb(16)), self.injector
        )
        self.options = _storm_options()
        # io storms usually keep the WAL buffered so injected write faults
        # surface at background fsyncs (the error handler's job, soft
        # path); some seeds sync instead, so a WAL-sync fault classifies
        # hard and the read-only + typed-rejection path gets exercised
        # too.  Space storms always sync: every ack is a durability
        # promise made against a disk that is about to fill up.
        if kind == STORM_SPACE or self.rng.fork("walmode").chance(0.4):
            self.options.wal_mode = WAL_SYNC
        else:
            self.options.wal_mode = WAL_BUFFERED

    def _build_schedule(self, w0: int, w1: int) -> FaultSchedule:
        schedule = FaultSchedule()
        if self.kind in (STORM_IO, STORM_MIXED):
            rng = self.rng.fork("faults")
            schedule.add(
                FaultSpec(
                    WRITE_ERROR,
                    at_time=w0,
                    until_time=w1,
                    count=1_000_000,
                    transient=True,
                )
            )
            if rng.chance(0.5):
                schedule.add(
                    FaultSpec(
                        READ_ERROR,
                        at_time=w0,
                        until_time=w1,
                        count=1_000_000,
                        transient=True,
                    )
                )
        return schedule

    # -- workload ----------------------------------------------------------

    def _key(self, key_id: int) -> bytes:
        return b"k%04d" % key_id

    def _gen_ops(self) -> List[_Op]:
        rng = self.rng.fork("workload")
        ops: List[_Op] = []
        write_index = 0
        for _ in range(self.config.num_ops):
            key = self._key(rng.randint(0, self.config.num_keys - 1))
            roll = rng.uniform(0.0, 1.0)
            if roll < 0.70:
                write_index += 1
                pad = rng.randint(64, 512)  # fat values: flushes land in-window
                value = b"op%06d:%s:" % (write_index, key) + b"x" * pad
                ops.append(_Op(PUT, key, value, write_index))
            elif roll < 0.85:
                write_index += 1
                ops.append(_Op(DELETE, key, None, write_index))
            else:
                ops.append(_Op(GET, key))
        return ops

    def _log(self, line: str) -> None:
        self.events.append(f"t={self.engine.now} {line}")

    def _client(self, db: DB, ops: List[_Op]):
        """Generator: paced ops; typed failures are counted, never fatal."""
        rng = self.rng.fork("pace")
        for op in ops:
            think = rng.randint(self.config.pace_ns // 4, self.config.pace_ns)
            if think:
                yield think
            try:
                if op.kind == PUT:
                    self.issued.append(op)
                    yield from db.put(op.key, op.value)
                    self.acked.append(op)
                elif op.kind == DELETE:
                    self.issued.append(op)
                    yield from db.delete(op.key)
                    self.acked.append(op)
                else:
                    try:
                        yield from db.get(op.key)
                    except (CorruptionError, IOFaultError):
                        pass  # reads may fail during the storm; that's fine
            except DBReadOnlyError as exc:
                self.rejected += 1
                self._log(f"reject #{op.index} read-only ({exc.severity})")
            except OutOfSpaceError:
                self.rejected += 1
                self._log(f"reject #{op.index} enospc")
            except IOFaultError as exc:
                self.rejected += 1
                self._log(f"reject #{op.index} io fault (transient={exc.transient})")

    def _quota_squeeze(self, w0: int, w1: int):
        """Generator: squeeze the quota over [w0, w1), then lift it."""
        if w0 > self.engine.now:
            yield w0 - self.engine.now
        quota = self.fs.used_bytes() + self.config.squeeze_slack_bytes
        self.fs.set_quota(quota)
        self._log(f"quota squeezed to {quota} bytes ({self.fs.free_bytes()} free)")
        yield w1 - self.engine.now
        self.fs.set_quota(None)
        self._log("quota lifted")

    # -- scheduler loop ----------------------------------------------------

    def _run_proc(self, gen, name: str):
        """Drive one generator to completion; raise what it raised."""
        proc = self.engine.process(gen, name=name)
        proc.callbacks.append(lambda _ev: None)
        while not proc.done:
            nxt = self.engine.peek()
            if nxt is None:
                raise DBError(f"storm: {name} deadlocked")
            self.engine.run(until=nxt)
        if proc.exception is not None:
            raise proc.exception
        return proc.value

    def _drain(self, db: DB):
        """Generator: True once healthy *and* idle, False past the budget."""
        deadline = self.engine.now + self.config.drain_ns
        while True:
            busy = (
                db.error_handler.severity
                or db.memtables.immutables
                or db._active_flushes
                or db._active_compactions
                or db.versions.manifest_dirty
            )
            if not busy:
                return True
            if self.engine.now >= deadline:
                return False
            yield us(20)

    # -- verification ------------------------------------------------------

    def _expected_state(self) -> Dict[bytes, bytes]:
        """Exact replay of the acked writes (no crash: no prefix cut)."""
        state: Dict[bytes, bytes] = {}
        for op in self.acked:
            if op.kind == PUT:
                state[op.key] = op.value
            elif op.kind == DELETE:
                state.pop(op.key, None)
        return state

    def _collect(self, db: DB) -> Dict[bytes, object]:
        observed: Dict[bytes, object] = {}

        def reader():
            keys = [self._key(k) for k in range(self.config.num_keys)]
            for key in keys + [b"probe"]:
                value = yield from db.get(key)
                if value is not None:
                    observed[key] = value

        self._run_proc(reader(), "storm-verify")
        return observed

    # -- the run -----------------------------------------------------------

    def run(self) -> StormResult:
        cfg = self.config
        w0, w1 = self.window
        ops = self._gen_ops()
        self._log(
            f"storm seed={self.seed} kind={self.kind} ops={cfg.num_ops} "
            f"keys={cfg.num_keys} window=[{w0},{w1})"
        )
        db = DB(self.engine, self.fs, self.options, rng=self.rng.fork("db"))
        if self.kind in (STORM_SPACE, STORM_MIXED):
            squeeze = self.engine.process(self._quota_squeeze(w0, w1), name="squeeze")
            squeeze.callbacks.append(lambda _ev: None)

        failure: Optional[str] = None
        try:
            self._run_proc(self._client(db, ops), name="storm-client")
        except DBError as exc:
            failure = f"client died: {exc}"
        self._log(
            f"workload done: acked={len(self.acked)} rejected={self.rejected}"
        )

        # Make sure the window has actually closed (a short workload can
        # finish inside it), then demand bounded quiesce + auto-resume.
        quiesce_ns = -1
        if failure is None:
            if self.engine.now < w1:
                self._run_proc(_sleep(w1 - self.engine.now), name="storm-wait")
            drain_from = self.engine.now
            drained = self._run_proc(self._drain(db), name="storm-drain")
            if drained:
                quiesce_ns = self.engine.now - drain_from
                self._log(f"quiesced in {quiesce_ns}ns after window close")
            else:
                failure = (
                    f"liveness: not idle {cfg.drain_ns}ns after the storm "
                    f"cleared (severity={db.error_handler.severity or 'none'}, "
                    f"immutables={len(db.memtables.immutables)})"
                )
                self._log(failure)

        # The storm is over: the DB must accept writes again.
        probe_key, probe_value = b"probe", b"post-storm"
        if failure is None:
            try:
                self._run_proc(db.put(probe_key, probe_value), name="storm-probe")
            except (DBReadOnlyError, OutOfSpaceError, IOFaultError) as exc:
                failure = f"probe write rejected after storm: {exc!r}"
                self._log(failure)

        if failure is None:
            expected = self._expected_state()
            observed = self._collect(db)
            probe = observed.pop(probe_key, None)
            if probe != probe_value:
                failure = "probe write not readable after ack"
            else:
                for key, value in expected.items():
                    if observed.get(key) != value:
                        failure = (
                            f"acked write lost: {key.decode()} "
                            f"expected {len(value)}B, "
                            f"got {'miss' if key not in observed else 'other'}"
                        )
                        break
                else:
                    for key in observed:
                        if key not in expected:
                            failure = f"phantom key {key.decode()} (never acked)"
                            break

        stats = db.stats
        degraded_entries = int(stats.get("bg_error.degraded_entries"))
        resume_successes = int(stats.get("bg_error.resume_successes"))
        went_read_only = bool(
            stats.get("bg_error.to_hard") or stats.get("bg_error.to_fatal")
        )
        ok = failure is None
        self._log(
            f"verdict={'PASS' if ok else 'FAIL'} degraded={degraded_entries} "
            f"resumes={resume_successes} read_only={went_read_only}"
        )
        self.events.append("-- faults --")
        self.events.extend(self.injector.log)

        return StormResult(
            seed=self.seed,
            kind=self.kind,
            ok=ok,
            reason=failure or "",
            writes_issued=len([op for op in self.issued if op.kind != GET]),
            writes_acked=len(self.acked),
            writes_rejected=self.rejected,
            degraded_entries=degraded_entries,
            resume_successes=resume_successes,
            went_read_only=went_read_only,
            quiesce_ns=quiesce_ns,
            faults_fired=len(self.injector.log),
            schedule_json=self.schedule.to_json(),
            events=self.events,
        )
