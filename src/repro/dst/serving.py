"""Serving DST: chaos injected *while* the tenant fleet is running.

The cluster DST (:mod:`repro.dst.cluster`) proves the replication layer's
contract for one sequential client; this harness proves the *serving*
contract of :mod:`repro.serving.resilient` for a whole tenant fleet under
live chaos — leader crashes, partitions, io storms and quota squeezes
landing mid-traffic, not between runs:

S1  No acked tenant write is lost: after settle, every audited key's
    replicated value is its highest-acked write or a later indeterminate
    attempt (:meth:`ResilientServingStack.verify_writes`).
S2  Read-your-writes per tenant session: no read ever observes a replica
    sequence below the session's acked-write floor.
S3  No hangs: every started op resolves (success, shed, or typed error),
    and no op's latency exceeds the client deadline.
S4  Replication invariants per shard group: no cluster-layer violations,
    prefix convergence after heal+restart, one leader per term.
S5  Honest tails: the SLO digest splits fault-window tails from
    steady-state tails (fault windows derived from the schedule).

Every seed draws at least one *leader-affecting* fault — a leader crash
or a partition isolating a leader — during live traffic; a schedule
without one fails the run (guards the harness against drifting into
fair-weather coverage).

Determinism: workload, chaos, restart delays and link jitter all derive
from the seed via named RNG substreams, so a run replays bit-identically,
serial or under ``--jobs N``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import DBError
from repro.faults import CRASH, PARTITION, FaultSchedule, FaultSpec
from repro.serving.fleet import default_tenants
from repro.serving.resilient import (
    ResilientServingConfig,
    ResilientServingStack,
)
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us

#: Window charged to a point fault (crash, unwindowed spec) for tail splits.
_POINT_FAULT_WINDOW_NS = ms(10)


def draw_serving_chaos(
    rng: RandomStream,
    horizon_ns: int,
    shards: int,
    replicas: int,
    max_extra: int = 3,
) -> FaultSchedule:
    """Draw a serving chaos schedule in global node space.

    Always includes one leader-affecting fault (the initial leader of a
    random group either crashes or is partitioned away) inside the middle
    of the traffic window, then layers on extra cluster-style net chaos
    and the odd device-level error storm.
    """
    total = shards * replicas
    specs: List[FaultSpec] = []
    # The guaranteed leader fault: group g's initial leader is local node
    # 0, i.e. global node g * replicas.
    g = rng.randint(0, shards - 1)
    leader = g * replicas
    at = rng.randint(horizon_ns // 4, (horizon_ns * 3) // 5)
    if rng.chance(0.6):
        specs.append(FaultSpec(CRASH, at_time=at, node=leader))
    else:
        until = at + rng.randint(horizon_ns // 10, horizon_ns // 4)
        specs.append(
            FaultSpec(PARTITION, at_time=at, until_time=until, nodes=(leader,))
        )
    extra = FaultSchedule.random_cluster(
        rng.fork("extra"),
        horizon_ns,
        total,
        max_faults=max_extra,
        crash_p=0.3,
    )
    specs.extend(extra.specs)
    storm_rng = rng.fork("storm")
    if storm_rng.chance(0.4):
        w0 = storm_rng.randint(horizon_ns // 5, horizon_ns // 2)
        w1 = w0 + storm_rng.randint(horizon_ns // 10, horizon_ns // 4)
        kind_roll = storm_rng.uniform(0.0, 1.0)
        node = storm_rng.randint(0, total - 1)
        if kind_roll < 0.5:
            specs.append(
                FaultSpec(
                    "write_error",
                    at_time=w0,
                    until_time=w1,
                    count=1_000_000,
                    transient=True,
                    node=node,
                )
            )
        else:
            specs.append(
                FaultSpec(
                    "latency_spike",
                    at_time=w0,
                    until_time=w1,
                    count=1_000_000,
                    extra_ns=storm_rng.randint(us(200), ms(2)),
                    node=node,
                )
            )
    return FaultSchedule(specs)


def leader_fault_count(schedule: FaultSchedule, replicas: int) -> int:
    """Leader-affecting specs: node crashes + partitions naming a node.

    Every crash can force a failover (any node may be leader by then);
    every partition can strand a leader on the minority side.  The
    guaranteed draw targets an initial leader explicitly, so this count
    is >= 1 for any schedule :func:`draw_serving_chaos` produces.
    """
    count = 0
    for spec in schedule.specs:
        if spec.kind == CRASH:
            count += 1
        elif spec.kind == PARTITION and spec.nodes:
            count += 1
    return count


@dataclass
class ServingDstConfig:
    """Knobs of one serving DST run (the seed does the exploring)."""

    shards: int = 2
    replicas: int = 3
    device: str = "xpoint"
    tenants: int = 3
    users_per_tenant: int = 40_000
    key_count: int = 16
    clients: int = 2
    duration_ns: int = ms(100)
    settle_ns: int = ms(200)
    faults: bool = True
    schedule: Optional[FaultSchedule] = None  # overrides random generation

    @property
    def horizon_ns(self) -> int:
        return self.duration_ns


@dataclass
class ServingDstResult:
    """Outcome of one run: verdict + the byte-comparable event log."""

    seed: int
    ok: bool
    reason: str  # "" when ok
    shards: int
    replicas: int
    tenants: int
    ops: int  # completed (successful) tenant ops
    shed: int
    errors: int
    writes_acked: int
    failovers: int
    leader_faults: int
    ryw_violations: int
    unresolved: int
    max_elapsed_us: float
    converged: bool
    log_digest: str  # md5 over every group leader log's tags
    schedule_json: str
    tenant_rows: List[dict] = field(default_factory=list)
    events: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        return "PASS" if self.ok else f"FAIL({self.reason})"


class ServingDstRun:
    """One seeded fleet/chaos/settle/verify cycle."""

    def __init__(self, seed: int, config: Optional[ServingDstConfig] = None) -> None:
        self.seed = seed
        self.config = config or ServingDstConfig()
        self.rng = RandomStream(seed, "serving-dst")
        self.events: List[str] = []
        cfg = self.config

        # The ≥1-leader-fault floor only binds self-drawn schedules: a
        # replayed/fuzzed schedule is allowed to explore fault-free or
        # follower-only chaos without that counting as a failure.
        self._own_schedule = cfg.schedule is None and cfg.faults
        schedule = cfg.schedule
        if schedule is None:
            schedule = FaultSchedule()
            if cfg.faults:
                schedule = draw_serving_chaos(
                    self.rng.fork("chaos"),
                    cfg.horizon_ns,
                    cfg.shards,
                    cfg.replicas,
                )
        self.schedule = schedule

        self.stack = ResilientServingStack(
            ResilientServingConfig(
                shards=cfg.shards,
                replicas=cfg.replicas,
                device=cfg.device,
                seed=seed,
            ),
            chaos=schedule,
        )
        self.engine = self.stack.engine

        # Crash specs become control events with seed-derived restarts, so
        # every crashed node rejoins (and divergence truncation runs)
        # within the settle budget.
        restart_rng = self.rng.fork("restarts")
        self.controls: List[Tuple[int, str, int]] = []
        for spec in self.stack.crash_specs:
            node = (spec.node or 0) % self.stack.config.total_nodes
            self.controls.append((spec.at_time, "crash", node))
            delay = restart_rng.randint(ms(2), max(ms(4), cfg.horizon_ns // 4))
            self.controls.append((spec.at_time + delay, "restart", node))
        # Sometimes squeeze one node's quota over a mid-run window (the
        # space-storm dimension: ENOSPC behind the replication layer).
        space_rng = self.rng.fork("space")
        if cfg.faults and cfg.schedule is None and space_rng.chance(0.3):
            node = space_rng.randint(0, self.stack.config.total_nodes - 1)
            w0 = space_rng.randint(cfg.horizon_ns // 5, cfg.horizon_ns // 2)
            w1 = w0 + space_rng.randint(cfg.horizon_ns // 10, cfg.horizon_ns // 4)
            self.controls.append((w0, "squeeze", node))
            self.controls.append((w1, "unsqueeze", node))
        self.controls.sort()

        self.stack.fault_windows = self._fault_windows()

    # -- fault windows -------------------------------------------------------

    def _fault_windows(self) -> List[Tuple[int, int]]:
        windows: List[Tuple[int, int]] = []
        for spec in self.schedule.specs:
            if spec.at_time is None:
                continue
            end = (
                spec.until_time
                if spec.until_time is not None
                else spec.at_time + _POINT_FAULT_WINDOW_NS
            )
            windows.append((spec.at_time, end))
        for at, action, _node in self.controls:
            if action == "crash":
                windows.append((at, at + _POINT_FAULT_WINDOW_NS))
            elif action == "squeeze":
                windows.append((at, at + _POINT_FAULT_WINDOW_NS))
        return sorted(windows)

    # -- plumbing ------------------------------------------------------------

    def _log(self, line: str) -> None:
        self.events.append(f"t={self.engine.now} {line}")

    def _node_fs(self, node: int):
        cfg = self.stack.config
        return self.stack.groups[node // cfg.replicas].cluster.nodes[
            node % cfg.replicas
        ].fs

    def _fire(self, action: str, node: int) -> None:
        if action == "crash":
            self.stack.crash_global(node)
            self._log(f"control crash node {node}")
        elif action == "restart":
            self.stack.restart_global(node)
            self._log(f"control restart node {node}")
        elif action == "squeeze":
            fs = self._node_fs(node)
            quota = fs.used_bytes()
            fs.set_quota(quota)
            self._log(f"control squeeze node {node} to {quota} bytes")
        else:  # unsqueeze
            self._node_fs(node).set_quota(None)
            self._log(f"control unsqueeze node {node}")

    def _step(self, procs) -> None:
        """Drive the engine, firing control events at exact virtual times."""
        engine = self.engine
        i = 0
        while True:
            done = all(p.done for p in procs)
            for p in procs:
                if p.done and p.exception is not None:
                    raise p.exception
            due = self.controls[i][0] if i < len(self.controls) else None
            if done and due is None:
                return
            nxt = engine.peek()
            if due is not None and (nxt is None or due <= nxt):
                if engine.now < due:
                    engine.run(until=due)
                _t, action, node = self.controls[i]
                i += 1
                self._fire(action, node)
                continue
            if nxt is None:
                raise DBError("serving dst deadlocked (hung op?)")
            engine.run(until=nxt)

    def _run_gen(self, gen, name: str):
        proc = self.engine.process(gen, name=name)
        proc.callbacks.append(lambda _ev: None)
        while not proc.done:
            nxt = self.engine.peek()
            if nxt is None:
                raise DBError(f"serving dst: {name} deadlocked")
            self.engine.run(until=nxt)
        if proc.exception is not None:
            raise proc.exception
        return proc.value

    # -- settle --------------------------------------------------------------

    def _settle(self) -> bool:
        """Heal, lift quotas, restart everyone, wait for group convergence."""
        stack = self.stack
        for group in stack.groups:
            group.network.heal()
            now = self.engine.now
            for w in group.network._windows:
                if w.end > now:
                    w.end = now
        for node in range(stack.config.total_nodes):
            self._node_fs(node).set_quota(None)
        for g, group in enumerate(stack.groups):
            for node in group.cluster.nodes:
                if not node.alive:
                    group.cluster.restart_node(node.node_id)
            group.cluster.elect()

        def waiter():
            deadline = self.engine.now + self.config.settle_ns
            while self.engine.now < deadline:
                if self._converged():
                    return True
                yield ms(1)
            return self._converged()

        return self._run_gen(waiter(), "settle")

    def _converged(self) -> bool:
        for group in self.stack.groups:
            cluster = group.cluster
            leader = cluster.leader_node
            if leader is None:
                return False
            llen = len(leader.log)
            for node in cluster.nodes:
                if not node.active or len(node.log) != llen:
                    return False
        return True

    def _prefix_violation(self) -> Optional[str]:
        for g, group in enumerate(self.stack.groups):
            leader = group.cluster.leader_node
            ltags = [x.tag for x in leader.log]
            for node in group.cluster.nodes:
                tags = [x.tag for x in node.log]
                if tags != ltags[: len(tags)]:
                    return (
                        f"group {g} node {node.node_id} log is not a "
                        f"leader-log prefix"
                    )
        return None

    # -- the run -------------------------------------------------------------

    def _tenant_rows(self, workloads) -> List[dict]:
        for wl in workloads:
            wl.stats.duration_ns = self.config.duration_ns
        return [wl.stats.row() for wl in workloads]

    def run(self) -> ServingDstResult:
        cfg = self.config
        stack = self.stack
        leader_faults = leader_fault_count(self.schedule, cfg.replicas)
        self._log(
            f"serving dst seed={self.seed} shards={cfg.shards} "
            f"replicas={cfg.replicas} tenants={cfg.tenants} "
            f"duration={cfg.duration_ns} specs={len(self.schedule)} "
            f"controls={len(self.controls)} leader_faults={leader_faults}"
        )
        stack.start()
        tenants = default_tenants(
            cfg.tenants,
            users_per_tenant=cfg.users_per_tenant,
            key_count=cfg.key_count,
            clients=cfg.clients,
        )
        workloads = stack.build_fleet(tenants)
        end = self.engine.now + cfg.duration_ns
        procs = stack.spawn_fleet(workloads, end)
        self._step(procs)
        total_ops = sum(wl.stats.ops for wl in workloads)
        total_shed = sum(wl.stats.shed_ops for wl in workloads)
        total_errors = sum(wl.stats.error_ops for wl in workloads)
        self._log(
            f"fleet done ops={total_ops} shed={total_shed} "
            f"errors={total_errors} started={stack.ops_started} "
            f"resolved={stack.ops_resolved}"
        )

        converged = self._settle()
        for g, group in enumerate(stack.groups):
            self.events.append(f"-- group {g} cluster --")
            self.events.extend(group.cluster.events)
            self.events.append(f"-- group {g} net --")
            self.events.extend(group.network.log)
            for r, injector in enumerate(group.injectors):
                if injector.log:
                    self.events.append(f"-- group {g} node {r} faults --")
                    self.events.extend(injector.log)

        reason = ""
        if self._own_schedule and leader_faults < 1:
            reason = "schedule drew no leader-affecting fault"
        if not reason:
            for g, group in enumerate(stack.groups):
                if group.cluster.violations:
                    reason = f"group {g} invariant: {group.cluster.violations[0]}"
                    break
                terms = [t for t, _n in group.cluster.term_history]
                if len(terms) != len(set(terms)):
                    reason = f"group {g} multiple leaders in one term"
                    break
        if not reason and not converged:
            reason = "groups did not converge after heal+restart"
        if not reason:
            structural = self._prefix_violation()
            if structural is not None:
                reason = structural
        if not reason and stack.ops_started != stack.ops_resolved:
            reason = (
                f"unresolved ops: {stack.ops_started - stack.ops_resolved} "
                f"of {stack.ops_started} never resolved"
            )
        policy = stack.config.policy
        if not reason and stack.max_elapsed_ns > policy.op_deadline_ns:
            reason = (
                f"deadline breached: an op took {stack.max_elapsed_ns}ns "
                f"(deadline {policy.op_deadline_ns}ns)"
            )
        ryw = stack.ryw_violations()
        if not reason and ryw:
            reason = f"read-your-writes violated: {ryw[0]}"
        if not reason:
            losses = self._run_gen(stack.verify_writes(), "verify-writes")
            if losses:
                reason = f"acked write lost: {losses[0]}"
        ok = reason == ""

        digest = hashlib.md5()
        for group in stack.groups:
            leader = group.cluster.leader_node
            if leader is not None:
                for x in leader.log:
                    digest.update(b"%d:%d;" % x.tag)
            digest.update(b"|")
        failovers = sum(
            group.cluster._failovers - 1 for group in stack.groups
        )
        writes_acked = sum(len(v) for v in stack._acked.values())
        self._log(
            f"verdict={'PASS' if ok else 'FAIL'} ops={total_ops} "
            f"acked_keys={len(stack._acked)} failovers={failovers} "
            f"ryw={len(ryw)} max_elapsed={stack.max_elapsed_ns}"
        )
        stack.shutdown()
        return ServingDstResult(
            seed=self.seed,
            ok=ok,
            reason=reason,
            shards=cfg.shards,
            replicas=cfg.replicas,
            tenants=cfg.tenants,
            ops=total_ops,
            shed=total_shed,
            errors=total_errors,
            writes_acked=writes_acked,
            failovers=failovers,
            leader_faults=leader_faults,
            ryw_violations=len(ryw),
            unresolved=stack.ops_started - stack.ops_resolved,
            max_elapsed_us=round(stack.max_elapsed_ns / 1e3, 1),
            converged=converged,
            log_digest=digest.hexdigest(),
            schedule_json=self.schedule.to_json(),
            tenant_rows=self._tenant_rows(workloads),
            events=self.events,
        )


__all__ = [
    "ServingDstConfig",
    "ServingDstResult",
    "ServingDstRun",
    "draw_serving_chaos",
    "leader_fault_count",
]
