"""Cell execution for the experiment matrix.

Each cell builds a complete universe from scratch — engine, device (a
:class:`~repro.faults.device.FaultyDevice` even when the schedule is
empty, so clean and degraded cells run the *same* code path), page
cache, filesystem, prefilled DB — then drives the cell's YCSB mix for
the matrix preset's duration and reports throughput and latency
percentiles.  ``run_cells`` fans cells out over
:func:`~repro.perf.parallel.map_points`; because nothing is shared
between cells, results are bit-identical for any jobs value.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.faults.device import FaultyDevice
from repro.faults.injector import FaultInjector
from repro.fs.filesystem import SimFileSystem
from repro.fs.page_cache import PageCache
from repro.lsm.db import DB
from repro.matrix.registry import (
    MATRIX_PRESET,
    MATRIX_SEED,
    CellSpec,
    SCENARIOS,
)
from repro.perf.parallel import map_points
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.storage.profiles import profile_by_name
from repro.workloads.prefill import prefill
from repro.workloads.ycsb import MATRIX_WORKLOADS, YcsbRunner

#: The metric keys every cell reports, in render order.
CELL_METRICS = ("kops", "p50_us", "p99_us", "faults")


def run_cell(cell: CellSpec) -> Dict[str, float]:
    """Execute one grid cell in a fresh universe; the worker function."""
    preset = MATRIX_PRESET
    scenario = SCENARIOS[cell.scenario]
    schedule = scenario.schedule(preset.duration_ns)

    engine = Engine()
    rng = RandomStream(
        MATRIX_SEED, f"matrix/{cell.device}/{cell.workload}/{cell.scenario}"
    )
    injector = FaultInjector(engine, schedule)
    device = FaultyDevice(
        engine, profile_by_name(cell.device), injector, rng.fork("device")
    )
    fs = SimFileSystem(engine, device, PageCache(preset.page_cache_bytes))
    db = DB(engine, fs, preset.options(), rng=rng.fork("db"))
    prefill(db, preset.prefill_spec())

    runner = YcsbRunner(
        MATRIX_WORKLOADS[cell.workload],
        key_count=preset.key_count,
        value_size=preset.value_size,
        clients=preset.processes,
        duration_ns=preset.duration_ns,
        seed=MATRIX_SEED,
    )
    result = runner.run(db)
    return {
        "kops": round(result.kops, 1),
        "p50_us": round(result.latency.percentile(50) / 1e3, 1),
        "p99_us": round(result.latency.percentile(99) / 1e3, 1),
        "faults": float(len(injector.log)),
    }


def run_cells(cells: Sequence[CellSpec], jobs: int = 1) -> List[Dict[str, float]]:
    """Run cells (optionally in worker processes), results in cell order."""
    return map_points(run_cell, list(cells), jobs)
