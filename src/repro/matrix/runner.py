"""Cell execution for the experiment matrix.

Each cell builds a complete universe from scratch — engine, device (a
:class:`~repro.faults.device.FaultyDevice` even when the schedule is
empty, so clean and degraded cells run the *same* code path), page
cache, filesystem, prefilled DB — then drives the cell's YCSB mix for
the matrix preset's duration and reports throughput and latency
percentiles.  ``run_cells`` fans cells out over
:func:`~repro.perf.parallel.map_points`; because nothing is shared
between cells, results are bit-identical for any jobs value.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.dst.serving import ServingDstConfig, ServingDstRun
from repro.errors import WorkloadError
from repro.faults.device import FaultyDevice
from repro.faults.injector import FaultInjector
from repro.fs.filesystem import SimFileSystem
from repro.fs.page_cache import PageCache
from repro.lsm.db import DB
from repro.matrix.registry import (
    MATRIX_PRESET,
    MATRIX_SEED,
    CellSpec,
    SCENARIOS,
    SERVING_SCENARIOS,
    ServingCellSpec,
)
from repro.perf.parallel import map_points
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.storage.profiles import profile_by_name
from repro.workloads.prefill import prefill
from repro.workloads.ycsb import MATRIX_WORKLOADS, YcsbRunner

#: The metric keys every cell reports, in render order.
CELL_METRICS = ("kops", "p50_us", "p99_us", "faults")

#: The metric keys every serving-tier cell reports.
SERVING_CELL_METRICS = (
    "kops",
    "p99_us",
    "slo_met",
    "tenants",
    "shed",
    "failovers",
)


def run_serving_cell(cell: ServingCellSpec) -> Dict[str, float]:
    """Execute one serving-tier cell through the chaos DST harness.

    The harness's verdict is part of the contract: a cell whose run
    loses an acked write, violates read-your-writes or leaves an op
    hanging fails the whole table regeneration rather than rendering
    a bad number.
    """
    scenario = SERVING_SCENARIOS[cell.scenario]
    duration_ns = ServingDstConfig().duration_ns
    schedule = scenario.schedule(duration_ns)
    result = ServingDstRun(
        MATRIX_SEED,
        ServingDstConfig(
            device=cell.device,
            schedule=schedule,
            faults=schedule is not None,
        ),
    ).run()
    if not result.ok:
        raise WorkloadError(
            f"serving cell {cell.device}/{cell.scenario} failed the DST "
            f"contract: {result.reason}"
        )
    rows = result.tenant_rows
    active = [r for r in rows if int(r["ops"]) > 0]
    met = sum(1 for r in active if r["p99_us"] <= r["slo_p99_us"])
    worst = max((float(r["p99_us"]) for r in active), default=0.0)
    return {
        "kops": round(sum(float(r["kops"]) for r in rows), 2),
        "p99_us": round(worst, 1),
        "slo_met": float(met),
        "tenants": float(len(active)),
        "shed": float(result.shed),
        "failovers": float(result.failovers),
    }


def run_cell(cell) -> Dict[str, float]:
    """Execute one grid cell in a fresh universe; the worker function."""
    if isinstance(cell, ServingCellSpec):
        return run_serving_cell(cell)
    preset = MATRIX_PRESET
    scenario = SCENARIOS[cell.scenario]
    schedule = scenario.schedule(preset.duration_ns)

    engine = Engine()
    rng = RandomStream(
        MATRIX_SEED, f"matrix/{cell.device}/{cell.workload}/{cell.scenario}"
    )
    injector = FaultInjector(engine, schedule)
    device = FaultyDevice(
        engine, profile_by_name(cell.device), injector, rng.fork("device")
    )
    fs = SimFileSystem(engine, device, PageCache(preset.page_cache_bytes))
    db = DB(engine, fs, preset.options(), rng=rng.fork("db"))
    prefill(db, preset.prefill_spec())

    runner = YcsbRunner(
        MATRIX_WORKLOADS[cell.workload],
        key_count=preset.key_count,
        value_size=preset.value_size,
        clients=preset.processes,
        duration_ns=preset.duration_ns,
        seed=MATRIX_SEED,
    )
    result = runner.run(db)
    return {
        "kops": round(result.kops, 1),
        "p50_us": round(result.latency.percentile(50) / 1e3, 1),
        "p99_us": round(result.latency.percentile(99) / 1e3, 1),
        "faults": float(len(injector.log)),
    }


def run_cells(cells: Sequence[CellSpec], jobs: int = 1) -> List[Dict[str, float]]:
    """Run cells (optionally in worker processes), results in cell order."""
    return map_points(run_cell, list(cells), jobs)
