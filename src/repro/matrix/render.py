"""Markdown rendering and ``EXPERIMENTS.md`` block injection.

Each registered table renders to a deterministic markdown block wrapped
in ``<!-- matrix:begin ID -->`` / ``<!-- matrix:end ID -->`` markers.
``inject_block`` splices a rendered block into a document, replacing
whatever sits between its markers; ``extract_block`` reads the current
contents back out, which is how check mode compares the committed table
against a fresh run byte-for-byte.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import WorkloadError
from repro.matrix.registry import (
    SCENARIOS,
    SERVING_SCENARIOS,
    CellSpec,
    ServingCellSpec,
    ServingTableSpec,
    TableSpec,
)


def begin_marker(table_id: str) -> str:
    return f"<!-- matrix:begin {table_id} -->"


def end_marker(table_id: str) -> str:
    return f"<!-- matrix:end {table_id} -->"


def _fmt(value: float) -> str:
    """Metric formatting: integral counts bare, everything else 1-dp."""
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _render_serving_table(
    table: ServingTableSpec,
    cells: Sequence[ServingCellSpec],
    results: Sequence[Dict[str, float]],
) -> str:
    by_cell = {c: r for c, r in zip(cells, results)}
    lines: List[str] = [begin_marker(table.table_id)]
    lines.append(f"**{table.title}** (`{table.table_id}`)")
    lines.append("")
    head = ["Scenario"]
    for device in table.devices:
        head += [
            f"{device} kops",
            f"{device} worst p99 µs",
            f"{device} SLO",
            f"{device} shed",
        ]
    lines.append("| " + " | ".join(head) + " |")
    lines.append("|" + "---|" * len(head))
    for scenario in table.scenarios:
        row = [SERVING_SCENARIOS[scenario].label]
        for device in table.devices:
            r = by_cell[ServingCellSpec(table.table_id, device, scenario)]
            row += [
                _fmt(r["kops"]),
                _fmt(r["p99_us"]),
                f"{int(r['slo_met'])}/{int(r['tenants'])}",
                _fmt(r["shed"]),
            ]
        lines.append("| " + " | ".join(row) + " |")
    lines.append(end_marker(table.table_id))
    return "\n".join(lines)


def render_table(
    table: TableSpec,
    cells: Sequence[CellSpec],
    results: Sequence[Dict[str, float]],
) -> str:
    """One table's markdown block, markers included (no trailing newline)."""
    if len(cells) != len(results):
        raise WorkloadError(
            f"{table.table_id}: {len(cells)} cells but {len(results)} results"
        )
    if isinstance(table, ServingTableSpec):
        return _render_serving_table(table, cells, results)
    by_cell = {c: r for c, r in zip(cells, results)}

    lines: List[str] = [begin_marker(table.table_id)]
    lines.append(f"**{table.title}** (`{table.table_id}`)")
    lines.append("")
    if table.rows == "workload":
        head = ["Workload"]
        for device in table.devices:
            head += [f"{device} kops", f"{device} p99 µs"]
        lines.append("| " + " | ".join(head) + " |")
        lines.append("|" + "---|" * len(head))
        scenario = table.scenarios[0]
        for workload in table.workloads:
            row = [workload]
            for device in table.devices:
                r = by_cell[CellSpec(table.table_id, device, workload, scenario)]
                row += [_fmt(r["kops"]), _fmt(r["p99_us"])]
            lines.append("| " + " | ".join(row) + " |")
    else:
        head = ["Scenario"]
        for device in table.devices:
            head += [f"{device} kops", f"{device} p99 µs", f"{device} faults"]
        lines.append("| " + " | ".join(head) + " |")
        lines.append("|" + "---|" * len(head))
        workload = table.workloads[0]
        for scenario in table.scenarios:
            row = [SCENARIOS[scenario].label]
            for device in table.devices:
                r = by_cell[CellSpec(table.table_id, device, workload, scenario)]
                row += [_fmt(r["kops"]), _fmt(r["p99_us"]), _fmt(r["faults"])]
            lines.append("| " + " | ".join(row) + " |")
    lines.append(end_marker(table.table_id))
    return "\n".join(lines)


def extract_block(text: str, table_id: str) -> str:
    """The current block for ``table_id`` in ``text`` (markers included)."""
    begin, end = begin_marker(table_id), end_marker(table_id)
    try:
        start = text.index(begin)
        stop = text.index(end, start) + len(end)
    except ValueError:
        raise WorkloadError(
            f"no matrix markers for {table_id!r} in the document"
        ) from None
    return text[start:stop]


def inject_block(text: str, table_id: str, block: str) -> str:
    """Replace the block between ``table_id``'s markers with ``block``."""
    begin, end = begin_marker(table_id), end_marker(table_id)
    try:
        start = text.index(begin)
        stop = text.index(end, start) + len(end)
    except ValueError:
        raise WorkloadError(
            f"no matrix markers for {table_id!r} in the document"
        ) from None
    return text[:start] + block + text[stop:]
