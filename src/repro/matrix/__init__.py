"""Declarative experiment matrix over devices, workloads and faults.

The registry (:mod:`repro.matrix.registry`) declares device × workload
× fault-scenario grids as data; the runner executes each cell in its
own simulated universe (bit-identical for any ``--jobs``); the renderer
regenerates the markdown tables embedded in ``EXPERIMENTS.md`` between
``<!-- matrix:begin ID -->`` markers.  ``python -m repro.matrix``
checks the committed tables against a fresh run (CI), ``--write``
refreshes them.
"""

from repro.matrix.registry import (
    DEVICES,
    MATRIX_PRESET,
    MATRIX_SEED,
    SCENARIOS,
    SERVING_SCENARIOS,
    TABLES,
    CellSpec,
    FaultScenario,
    ServingCellSpec,
    ServingScenario,
    ServingTableSpec,
    TableSpec,
    table_by_id,
)
from repro.matrix.render import (
    begin_marker,
    end_marker,
    extract_block,
    inject_block,
    render_table,
)
from repro.matrix.runner import (
    CELL_METRICS,
    SERVING_CELL_METRICS,
    run_cell,
    run_cells,
    run_serving_cell,
)

__all__ = [
    "CELL_METRICS",
    "CellSpec",
    "DEVICES",
    "FaultScenario",
    "MATRIX_PRESET",
    "MATRIX_SEED",
    "SCENARIOS",
    "SERVING_CELL_METRICS",
    "SERVING_SCENARIOS",
    "ServingCellSpec",
    "ServingScenario",
    "ServingTableSpec",
    "TABLES",
    "TableSpec",
    "begin_marker",
    "end_marker",
    "extract_block",
    "inject_block",
    "render_table",
    "run_cell",
    "run_cells",
    "run_serving_cell",
    "table_by_id",
]
