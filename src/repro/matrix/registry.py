"""The declarative experiment matrix: what to run, in tables.

A :class:`TableSpec` declares one device × workload × fault grid as
data; :mod:`repro.matrix.runner` turns each cell into a simulated run
and :mod:`repro.matrix.render` turns the results into the markdown
tables embedded in ``EXPERIMENTS.md`` between ``<!-- matrix:begin ID
-->`` / ``<!-- matrix:end ID -->`` markers.  Because every cell builds
its own engine/RNG universe from one fixed seed, regenerating a table
is byte-identical for any ``--jobs`` value — which is what lets CI
*check* the committed tables instead of trusting them.

Tables registered here:

* ``ycsb-devices`` — the paper's three device classes × the six YCSB
  core workloads plus the repo's two extended mixes (``scan-heavy``,
  ``rmw``), fault-free.
* ``fault-grid`` — the same devices under workload A while the device
  path degrades: clean, a latency-spike storm, and a stall window.
* ``serving-failover`` — the replicated serving tier's tenant SLOs on
  each device while a shard group's leader crashes or is partitioned
  away mid-traffic (cells run through the
  :class:`~repro.dst.ServingDstRun` harness, so every cell also enforces
  the no-loss / read-your-writes / no-hang invariants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import WorkloadError
from repro.faults import (
    CRASH,
    LATENCY_SPIKE,
    PARTITION,
    STALL,
    FaultSchedule,
    FaultSpec,
)
from repro.harness.presets import TINY, ScalePreset
from repro.sim.units import ms, seconds, us
from repro.workloads.ycsb import MATRIX_WORKLOADS

#: One fixed seed for every cell: the matrix is a regression surface,
#: not a sweep, so one deterministic universe per cell is the point.
MATRIX_SEED = 1

#: The paper's three device classes, in the paper's slow-to-fast order.
DEVICES: Tuple[str, ...] = ("sata-flash", "pcie-flash", "xpoint")

#: The matrix runs at a reduced copy of the ``tiny`` preset: same data
#: shape and cache ratios, shorter horizon (cells are grid points, not
#: timelines — a few flush/compaction cycles suffice).
MATRIX_PRESET: ScalePreset = ScalePreset(
    name="matrix",
    key_count=TINY.key_count,
    value_size=TINY.value_size,
    duration_ns=seconds(0.4),
    processes=TINY.processes,
    write_buffer_size=TINY.write_buffer_size,
    max_bytes_for_level_base=TINY.max_bytes_for_level_base,
    target_file_size_base=TINY.target_file_size_base,
    page_cache_bytes=TINY.page_cache_bytes,
    block_cache_bytes=TINY.block_cache_bytes,
)


@dataclass(frozen=True)
class FaultScenario:
    """One named degradation of the device path, sized by run fractions.

    ``window`` is a fraction pair of the cell's duration; ``kind`` is a
    non-error device fault (``latency_spike``/``stall``) or ``""`` for
    the clean baseline.  Only non-error kinds are allowed: the YCSB
    clients model the paper's measurement path, which never sees I/O
    *errors* — error storms belong to the DST/fuzz harnesses.
    """

    name: str
    label: str
    kind: str = ""
    window: Tuple[float, float] = (0.0, 0.0)
    extra_ns: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("", LATENCY_SPIKE, STALL):
            raise WorkloadError(
                f"scenario {self.name!r}: kind must be clean/latency_spike/stall, "
                f"got {self.kind!r}"
            )
        lo, hi = self.window
        if self.kind and not 0.0 <= lo < hi <= 1.0:
            raise WorkloadError(
                f"scenario {self.name!r}: window {self.window} is not a "
                "fraction interval"
            )
        if self.kind and self.extra_ns <= 0:
            raise WorkloadError(f"scenario {self.name!r} needs extra_ns > 0")

    def schedule(self, duration_ns: int) -> FaultSchedule:
        """The concrete schedule for one cell of ``duration_ns``."""
        schedule = FaultSchedule()
        if self.kind:
            lo, hi = self.window
            schedule.add(
                FaultSpec(
                    self.kind,
                    at_time=int(duration_ns * lo),
                    until_time=int(duration_ns * hi),
                    count=10**9,  # every matching op inside the window
                    extra_ns=self.extra_ns,
                )
            )
        return schedule


CLEAN = FaultScenario("clean", "clean")
IO_SPIKES = FaultScenario(
    "io-spikes",
    "latency spikes (+400 µs, 30–70 %)",
    kind=LATENCY_SPIKE,
    window=(0.30, 0.70),
    extra_ns=us(400),
)
STALLS = FaultScenario(
    "stalls",
    "I/O stalls (+4 ms, 30–70 %)",
    kind=STALL,
    window=(0.30, 0.70),
    extra_ns=ms(4),
)

SCENARIOS: Dict[str, FaultScenario] = {
    s.name: s for s in (CLEAN, IO_SPIKES, STALLS)
}


@dataclass(frozen=True)
class ServingScenario:
    """One failover scenario for the resilient serving tier.

    ``kind`` names what happens to shard group 0's initial leader
    (global node 0): nothing (``steady``), a crash (``leader-crash``) or
    a partition isolating it (``leader-partition``).  ``window`` is a
    fraction pair of the cell's duration — a crash fires at the window
    start (the harness draws the deterministic restart), a partition
    spans the window.
    """

    name: str
    label: str
    kind: str = "steady"
    window: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.kind not in ("steady", "leader-crash", "leader-partition"):
            raise WorkloadError(
                f"serving scenario {self.name!r}: kind must be "
                f"steady/leader-crash/leader-partition, got {self.kind!r}"
            )
        lo, hi = self.window
        if self.kind != "steady" and not 0.0 <= lo < hi <= 1.0:
            raise WorkloadError(
                f"serving scenario {self.name!r}: window {self.window} is "
                "not a fraction interval"
            )

    def schedule(self, duration_ns: int) -> Optional[FaultSchedule]:
        """The explicit chaos schedule for one cell, ``None`` for steady."""
        if self.kind == "steady":
            return None
        lo, hi = self.window
        if self.kind == "leader-crash":
            return FaultSchedule(
                [FaultSpec(CRASH, at_time=int(duration_ns * lo), node=0)]
            )
        return FaultSchedule(
            [
                FaultSpec(
                    PARTITION,
                    at_time=int(duration_ns * lo),
                    until_time=int(duration_ns * hi),
                    nodes=(0,),
                )
            ]
        )


SERVING_STEADY = ServingScenario("steady", "steady state")
SERVING_LEADER_CRASH = ServingScenario(
    "leader-crash",
    "leader crash (at 40 %)",
    kind="leader-crash",
    window=(0.40, 1.0),
)
SERVING_LEADER_PARTITION = ServingScenario(
    "leader-partition",
    "leader partitioned (30–60 %)",
    kind="leader-partition",
    window=(0.30, 0.60),
)

SERVING_SCENARIOS: Dict[str, ServingScenario] = {
    s.name: s
    for s in (SERVING_STEADY, SERVING_LEADER_CRASH, SERVING_LEADER_PARTITION)
}


@dataclass(frozen=True)
class CellSpec:
    """One grid point, resolvable by workers from the registry alone."""

    table_id: str
    device: str
    workload: str
    scenario: str

    def __post_init__(self) -> None:
        if self.workload not in MATRIX_WORKLOADS:
            raise WorkloadError(
                f"unknown matrix workload {self.workload!r} "
                f"(choose from {sorted(MATRIX_WORKLOADS)})"
            )
        if self.scenario not in SCENARIOS:
            raise WorkloadError(
                f"unknown fault scenario {self.scenario!r} "
                f"(choose from {sorted(SCENARIOS)})"
            )


@dataclass(frozen=True)
class TableSpec:
    """One registered table: a grid plus how to pivot it into markdown."""

    table_id: str
    title: str
    devices: Tuple[str, ...]
    workloads: Tuple[str, ...]
    scenarios: Tuple[str, ...] = ("clean",)
    #: ``workload`` rows × device columns, or ``scenario`` rows.
    rows: str = "workload"

    def __post_init__(self) -> None:
        if self.rows not in ("workload", "scenario"):
            raise WorkloadError(f"rows must be workload|scenario, not {self.rows!r}")

    def cells(self) -> Tuple[CellSpec, ...]:
        """Row-major cell order — also the execution and merge order."""
        out = []
        if self.rows == "workload":
            for workload in self.workloads:
                for device in self.devices:
                    for scenario in self.scenarios:
                        out.append(
                            CellSpec(self.table_id, device, workload, scenario)
                        )
        else:
            for scenario in self.scenarios:
                for device in self.devices:
                    for workload in self.workloads:
                        out.append(
                            CellSpec(self.table_id, device, workload, scenario)
                        )
        return tuple(out)


@dataclass(frozen=True)
class ServingCellSpec:
    """One serving-tier grid point: a device under one failover scenario."""

    table_id: str
    device: str
    scenario: str

    def __post_init__(self) -> None:
        if self.scenario not in SERVING_SCENARIOS:
            raise WorkloadError(
                f"unknown serving scenario {self.scenario!r} "
                f"(choose from {sorted(SERVING_SCENARIOS)})"
            )


@dataclass(frozen=True)
class ServingTableSpec:
    """A serving-tier table: failover-scenario rows × device columns."""

    table_id: str
    title: str
    devices: Tuple[str, ...]
    scenarios: Tuple[str, ...]

    def cells(self) -> Tuple[ServingCellSpec, ...]:
        """Row-major cell order — also the execution and merge order."""
        return tuple(
            ServingCellSpec(self.table_id, device, scenario)
            for scenario in self.scenarios
            for device in self.devices
        )


YCSB_DEVICES = TableSpec(
    table_id="ycsb-devices",
    title="YCSB core + extended mixes across the paper's device classes",
    devices=DEVICES,
    workloads=tuple(MATRIX_WORKLOADS),
    scenarios=("clean",),
    rows="workload",
)

FAULT_GRID = TableSpec(
    table_id="fault-grid",
    title="Workload A under device-path degradation",
    devices=DEVICES,
    workloads=("A",),
    scenarios=("clean", "io-spikes", "stalls"),
    rows="scenario",
)

SERVING_FAILOVER = ServingTableSpec(
    table_id="serving-failover",
    title="Resilient serving tier: tenant SLOs across failover scenarios",
    devices=DEVICES,
    scenarios=("steady", "leader-crash", "leader-partition"),
)

TABLES: Dict[str, TableSpec] = {
    t.table_id: t for t in (YCSB_DEVICES, FAULT_GRID, SERVING_FAILOVER)
}


def table_by_id(table_id: str) -> TableSpec:
    try:
        return TABLES[table_id]
    except KeyError:
        raise WorkloadError(
            f"unknown matrix table {table_id!r} (choose from {sorted(TABLES)})"
        ) from None
