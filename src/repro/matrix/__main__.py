"""CLI: ``python -m repro.matrix`` — regenerate/check the experiment matrix.

Default mode **checks**: every registered table is re-run and compared
byte-for-byte against the block committed in ``EXPERIMENTS.md`` — exit
1 on any drift, which is what the ``matrix-smoke`` CI job runs.
``--write`` splices the freshly rendered blocks into the file instead;
``--print`` just shows them.  Results are bit-identical for any
``--jobs`` value (each cell builds its own universe).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.matrix.registry import TABLES, table_by_id
from repro.matrix.render import extract_block, inject_block, render_table
from repro.matrix.runner import run_cells
from repro.perf.parallel import default_jobs

DEFAULT_DOC = "EXPERIMENTS.md"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.matrix",
        description="Declarative experiment matrix: regenerate or check the "
        "device x workload x fault tables embedded in EXPERIMENTS.md.",
    )
    parser.add_argument(
        "--file",
        default=DEFAULT_DOC,
        help=f"document holding the matrix blocks (default: {DEFAULT_DOC})",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="TABLE",
        help="restrict to one table id (repeatable; default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=default_jobs(),
        metavar="N",
        help="worker processes (default: $REPRO_JOBS or 1); results are "
        "identical for any value",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="splice the regenerated blocks into --file (default: check only)",
    )
    parser.add_argument(
        "--print",
        dest="print_only",
        action="store_true",
        help="print the rendered blocks; do not touch or compare --file",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered tables and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for table in TABLES.values():
            print(
                f"{table.table_id}: {table.title} "
                f"({len(table.cells())} cells)"
            )
        return 0

    table_ids = args.only or list(TABLES)
    tables = [table_by_id(t) for t in table_ids]

    blocks = {}
    for table in tables:
        cells = table.cells()
        began = time.time()
        results = run_cells(cells, jobs=args.jobs)
        blocks[table.table_id] = render_table(table, cells, results)
        print(
            f"matrix: {table.table_id}: {len(cells)} cells in "
            f"{time.time() - began:.1f}s (jobs={args.jobs})",
            file=sys.stderr,
        )

    if args.print_only:
        for block in blocks.values():
            print(block)
        return 0

    with open(args.file, "r", encoding="utf-8") as fh:
        text = fh.read()

    if args.write:
        for table_id, block in blocks.items():
            text = inject_block(text, table_id, block)
        with open(args.file, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"matrix: wrote {len(blocks)} block(s) to {args.file}")
        return 0

    drift = 0
    for table_id, block in blocks.items():
        committed = extract_block(text, table_id)
        if committed == block:
            print(f"matrix: {table_id}: OK (byte-identical)")
        else:
            drift += 1
            print(f"matrix: {table_id}: DRIFT — committed block differs")
            for got, want in zip(committed.splitlines(), block.splitlines()):
                if got != want:
                    print(f"  committed: {got}")
                    print(f"  fresh    : {want}")
                    break
    if drift:
        print(
            f"matrix: {drift} table(s) drifted; regenerate with "
            f"`python -m repro.matrix --write`"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
