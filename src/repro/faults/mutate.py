"""Seeded mutation operators over :class:`FaultSchedule`.

The fuzzer (:mod:`repro.fuzz`) treats a schedule as its genome: a small
ordered program of fault events.  This module is the genetics — a fixed
set of structure-preserving operators (drop / duplicate / reorder a spec,
shift a trigger, resize a storm window, scale a magnitude, retarget a
path or node, splice in a fresh spec) applied under a
:class:`MutationContext` that pins the run horizon and, optionally, a
trigger window and a node count.

Every operator goes through :func:`clamp_spec`, so a mutated schedule is
always schema-valid (``FaultSpec.__post_init__`` re-runs on every
rebuild) and never triggers past the horizon.  All randomness comes from
the caller's :class:`~repro.sim.rng.RandomStream`, so mutation chains are
replayable from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import FaultConfigError
from repro.faults.schedule import (
    CRASH,
    DEVICE_KINDS,
    FS_KINDS,
    HEAL,
    LATENCY_SPIKE,
    NET_DELAY,
    NET_DROP,
    NET_KINDS,
    PARTITION,
    READ_ERROR,
    STALL,
    WRITE_ERROR,
    FaultSchedule,
    FaultSpec,
)
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us

#: Kind pools for the three run modes the fuzzer drives.  Crash-DST runs
#: may mutate everything device- and fs-level (including the crash point);
#: storm runs stick to transient error/latency kinds inside the storm
#: window (exhausting the bounded auto-resume budget with out-of-window
#: errors is by-design read-only behaviour, not a finding); cluster runs
#: speak the net vocabulary plus node-targeted crashes.
DST_MUTATION_KINDS: Tuple[str, ...] = tuple(sorted(DEVICE_KINDS | FS_KINDS))
STORM_MUTATION_KINDS: Tuple[str, ...] = (
    LATENCY_SPIKE,
    READ_ERROR,
    STALL,
    WRITE_ERROR,
)
CLUSTER_MUTATION_KINDS: Tuple[str, ...] = tuple(sorted(NET_KINDS | {CRASH}))
#: Serving runs layer tenant traffic over replicated shard groups, so
#: their genome speaks both vocabularies: net chaos + node crashes (the
#: failover axis) and the transient device-level error/latency kinds
#: (io storms behind a replica).  Non-transient device errors are
#: excluded for the same reason as storm mode — a fatal background error
#: takes a replica read-only by design, which the serving harness's
#: settle step does not (and should not) repair.
SERVING_MUTATION_KINDS: Tuple[str, ...] = tuple(
    sorted(NET_KINDS | {CRASH, LATENCY_SPIKE, READ_ERROR, STALL, WRITE_ERROR})
)

_MAX_COUNT = 1_000_000


@dataclass(frozen=True)
class MutationContext:
    """Bounds a mutation run: horizon, kind pool, optional window/nodes."""

    horizon_ns: int
    kinds: Tuple[str, ...] = DST_MUTATION_KINDS
    #: 0 = single-node run (node-targeted fields are left alone);
    #: >= 2 = cluster run (node/nodes are folded into range(n_nodes)).
    n_nodes: int = 0
    #: When set, every trigger is clamped into [window[0], window[1]).
    window: Optional[Tuple[int, int]] = None
    #: Storm runs assert bounded auto-resume, which only holds for
    #: *transient* (retryable) errors — a non-transient background error
    #: classifies fatal and, by design, never resumes.  When set, error
    #: specs are folded to transient and the transient-flip operator is
    #: disabled.
    transient_only: bool = False
    max_specs: int = 12
    wal_prefix: str = "wal/"
    sst_prefix: str = "sst/"

    def __post_init__(self) -> None:
        if self.horizon_ns <= 0:
            raise FaultConfigError(f"horizon must be positive: {self.horizon_ns}")
        if self.window is not None:
            w0, w1 = self.window
            if not 0 <= w0 < w1 <= self.horizon_ns:
                raise FaultConfigError(f"bad mutation window {self.window}")

    @property
    def trigger_lo(self) -> int:
        return self.window[0] if self.window is not None else 0

    @property
    def trigger_hi(self) -> int:
        """Latest legal ``at_time`` (inclusive)."""
        if self.window is not None:
            return max(self.window[0], self.window[1] - 1)
        return self.horizon_ns

    @property
    def until_hi(self) -> int:
        """Latest legal ``until_time`` (inclusive)."""
        return self.window[1] if self.window is not None else self.horizon_ns


def clamp_spec(spec: FaultSpec, ctx: MutationContext) -> Optional[FaultSpec]:
    """Fold ``spec`` into the context's horizon/window/node bounds.

    Returns a valid spec (possibly the input unchanged), or None when the
    spec cannot be expressed inside the bounds at all.
    """
    changes: dict = {}
    at_time = spec.at_time
    if at_time is not None:
        clamped = min(max(at_time, ctx.trigger_lo), ctx.trigger_hi)
        if clamped != at_time:
            changes["at_time"] = clamped
        at_time = clamped
    elif ctx.window is not None:
        # Windowed contexts require an explicit in-window trigger.
        at_time = ctx.trigger_lo
        changes["at_time"] = at_time
    if spec.until_time is not None:
        until = min(spec.until_time, ctx.until_hi)
        if at_time is not None and until <= at_time:
            until = None
        if until != spec.until_time:
            changes["until_time"] = until
    if ctx.transient_only and not spec.transient:
        changes["transient"] = True
    if ctx.n_nodes >= 2:
        if spec.node is not None and spec.node >= ctx.n_nodes:
            changes["node"] = spec.node % ctx.n_nodes
        if spec.nodes is not None:
            nodes = tuple(sorted({n % ctx.n_nodes for n in spec.nodes}))
            if len(nodes) >= ctx.n_nodes:
                nodes = nodes[: ctx.n_nodes - 1]
            if nodes != spec.nodes:
                changes["nodes"] = nodes
    if not changes:
        return spec
    try:
        return replace(spec, **changes)
    except FaultConfigError:
        return None


def clamp_schedule(schedule: FaultSchedule, ctx: MutationContext) -> FaultSchedule:
    """Clamp every spec; unsalvageable specs are dropped."""
    specs = [clamp_spec(s, ctx) for s in schedule.specs]
    return FaultSchedule([s for s in specs if s is not None])


# -- fresh-spec generation --------------------------------------------------


def draw_spec(rng: RandomStream, ctx: MutationContext) -> Optional[FaultSpec]:
    """Draw one fresh spec of a context-legal kind inside the bounds."""
    kind = rng.choice(ctx.kinds)
    at_time = rng.randint(ctx.trigger_lo, ctx.trigger_hi)
    windowed = rng.chance(0.5)
    until = None
    if windowed and at_time < ctx.until_hi:
        until = rng.randint(at_time + 1, ctx.until_hi)
    if kind in (READ_ERROR, WRITE_ERROR):
        return FaultSpec(
            kind,
            at_time=at_time,
            until_time=until,
            count=rng.randint(1, 4) if until is None else _MAX_COUNT,
            transient=True,
        )
    if kind == LATENCY_SPIKE:
        return FaultSpec(
            kind,
            at_time=at_time,
            count=rng.randint(1, 8),
            extra_ns=rng.randint(us(200), ms(5)),
        )
    if kind == STALL:
        return FaultSpec(kind, at_time=at_time, extra_ns=rng.randint(ms(5), ms(100)))
    if kind == CRASH:
        node = rng.randint(0, ctx.n_nodes - 1) if ctx.n_nodes >= 2 else None
        return FaultSpec(kind, at_time=at_time, node=node)
    if kind in FS_KINDS:
        path = ctx.wal_prefix if rng.chance(0.5) else ctx.sst_prefix
        return FaultSpec(kind, at_time=at_time, path=path)
    if kind == PARTITION:
        if ctx.n_nodes < 2:
            return None
        size = rng.randint(1, max(1, ctx.n_nodes // 2))
        members = list(range(ctx.n_nodes))
        rng.shuffle(members)
        return FaultSpec(
            kind,
            at_time=at_time,
            until_time=until,
            nodes=tuple(sorted(members[:size])),
        )
    if kind == HEAL:
        return FaultSpec(kind, at_time=at_time)
    if kind == NET_DELAY:
        return FaultSpec(
            kind,
            at_time=at_time,
            until_time=until,
            extra_ns=rng.randint(us(200), ms(5)),
        )
    if kind == NET_DROP:
        return FaultSpec(
            kind,
            at_time=at_time,
            until_time=until,
            drop_p=round(rng.uniform(0.05, 0.5), 3),
        )
    return None


# -- operators --------------------------------------------------------------

_Specs = List[FaultSpec]
_Operator = Callable[[_Specs, RandomStream, MutationContext], Optional[_Specs]]


def _pick(rng: RandomStream, specs: _Specs) -> int:
    return rng.randint(0, len(specs) - 1)


def _op_drop(specs, rng, ctx):
    if not specs:
        return None
    out = list(specs)
    del out[_pick(rng, out)]
    return out


def _op_duplicate(specs, rng, ctx):
    if not specs or len(specs) >= ctx.max_specs:
        return None
    out = list(specs)
    i = _pick(rng, out)
    out.insert(i + 1, out[i])
    return out


def _op_reorder(specs, rng, ctx):
    if len(specs) < 2:
        return None
    out = list(specs)
    i = _pick(rng, out)
    j = _pick(rng, out)
    if i == j:
        j = (i + 1) % len(out)
    out[i], out[j] = out[j], out[i]
    return out


def _op_shift_time(specs, rng, ctx):
    idx = [i for i, s in enumerate(specs) if s.at_time is not None]
    if not idx:
        return None
    out = list(specs)
    i = idx[_pick(rng, idx)]
    spec = out[i]
    shifted = int(spec.at_time * rng.uniform(0.5, 1.5))
    width = (
        spec.until_time - spec.at_time if spec.until_time is not None else None
    )
    changes: dict = {"at_time": shifted}
    if width is not None:
        changes["until_time"] = shifted + width
    try:
        out[i] = replace(spec, **changes)
    except FaultConfigError:
        return None
    return out


def _op_resize_window(specs, rng, ctx):
    idx = [i for i, s in enumerate(specs) if s.at_time is not None]
    if not idx:
        return None
    out = list(specs)
    i = idx[_pick(rng, idx)]
    spec = out[i]
    if spec.until_time is None:
        if spec.at_time >= ctx.until_hi:
            return None
        until = rng.randint(spec.at_time + 1, ctx.until_hi)
    else:
        width = max(1, int((spec.until_time - spec.at_time) * rng.uniform(0.3, 2.0)))
        until = spec.at_time + width
    try:
        out[i] = replace(spec, until_time=until)
    except FaultConfigError:
        return None
    return out


def _op_scale_magnitude(specs, rng, ctx):
    idx = [
        i
        for i, s in enumerate(specs)
        if s.extra_ns > 0 or s.drop_p > 0.0 or s.count > 1
    ]
    if not idx:
        return None
    out = list(specs)
    i = idx[_pick(rng, idx)]
    spec = out[i]
    changes: dict = {}
    if spec.extra_ns > 0:
        changes["extra_ns"] = max(us(1), int(spec.extra_ns * rng.uniform(0.25, 4.0)))
    elif spec.drop_p > 0.0:
        changes["drop_p"] = round(min(0.95, max(0.01, spec.drop_p * rng.uniform(0.5, 2.0))), 3)
    else:
        changes["count"] = min(_MAX_COUNT, max(1, int(spec.count * rng.uniform(0.5, 3.0))))
    try:
        out[i] = replace(spec, **changes)
    except FaultConfigError:
        return None
    return out


def _op_flip_transient(specs, rng, ctx):
    if ctx.transient_only:
        return None
    idx = [i for i, s in enumerate(specs) if s.kind in (READ_ERROR, WRITE_ERROR)]
    if not idx:
        return None
    out = list(specs)
    i = idx[_pick(rng, idx)]
    out[i] = replace(out[i], transient=not out[i].transient)
    return out


def _op_retarget_path(specs, rng, ctx):
    idx = [i for i, s in enumerate(specs) if s.kind in FS_KINDS]
    if not idx:
        return None
    out = list(specs)
    i = idx[_pick(rng, idx)]
    spec = out[i]
    path = ctx.sst_prefix if spec.path == ctx.wal_prefix else ctx.wal_prefix
    out[i] = replace(spec, path=path)
    return out


def _op_retarget_node(specs, rng, ctx):
    if ctx.n_nodes < 2:
        return None
    idx = [i for i, s in enumerate(specs) if s.node is not None or s.nodes]
    if not idx:
        return None
    out = list(specs)
    i = idx[_pick(rng, idx)]
    spec = out[i]
    if spec.node is not None:
        out[i] = replace(spec, node=rng.randint(0, ctx.n_nodes - 1))
    else:
        size = rng.randint(1, max(1, ctx.n_nodes // 2))
        members = list(range(ctx.n_nodes))
        rng.shuffle(members)
        try:
            out[i] = replace(spec, nodes=tuple(sorted(members[:size])))
        except FaultConfigError:
            return None
    return out


def _op_add(specs, rng, ctx):
    if len(specs) >= ctx.max_specs:
        return None
    fresh = draw_spec(rng, ctx)
    if fresh is None:
        return None
    out = list(specs)
    out.insert(rng.randint(0, len(out)), fresh)
    return out


#: Fixed operator order: mutation chains replay bit-identically from a seed.
OPERATORS: Tuple[Tuple[str, _Operator], ...] = (
    ("drop", _op_drop),
    ("duplicate", _op_duplicate),
    ("reorder", _op_reorder),
    ("shift-time", _op_shift_time),
    ("resize-window", _op_resize_window),
    ("scale-magnitude", _op_scale_magnitude),
    ("flip-transient", _op_flip_transient),
    ("retarget-path", _op_retarget_path),
    ("retarget-node", _op_retarget_node),
    ("add", _op_add),
)


def mutate_schedule(
    schedule: FaultSchedule,
    rng: RandomStream,
    ctx: MutationContext,
    attempts: int = 12,
) -> FaultSchedule:
    """Apply one random applicable operator; result is clamped and valid.

    Operators that don't apply to this schedule (e.g. retarget-node on a
    single-node run) are redrawn up to ``attempts`` times; if nothing
    applies the schedule comes back as an (independent) copy.
    """
    for _ in range(attempts):
        _name, op = OPERATORS[rng.randint(0, len(OPERATORS) - 1)]
        out = op(list(schedule.specs), rng, ctx)
        if out is None:
            continue
        clamped = [clamp_spec(s, ctx) for s in out]
        return FaultSchedule([s for s in clamped if s is not None])
    return FaultSchedule(list(schedule.specs))


__all__ = [
    "CLUSTER_MUTATION_KINDS",
    "DST_MUTATION_KINDS",
    "MutationContext",
    "OPERATORS",
    "SERVING_MUTATION_KINDS",
    "STORM_MUTATION_KINDS",
    "clamp_schedule",
    "clamp_spec",
    "draw_spec",
    "mutate_schedule",
]
