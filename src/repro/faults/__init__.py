"""Fault injection: deterministic device/filesystem misbehaviour on demand.

The paper's findings hinge on how the write path behaves when the device
misbehaves under load, yet a simulator that only models the happy path can
never exercise those branches.  This package wraps the storage stack with a
schedule-driven injector, in the spirit of EagleTree's event-injection
design space exploration:

* :class:`FaultSpec` / :class:`FaultSchedule` — declarative fault events
  (I/O errors, latency spikes, stuck-I/O stalls, torn appends, media
  corruption, crash points), triggered at a virtual time or an operation
  count, JSON round-trippable for replay;
* :class:`FaultInjector` — interprets a schedule deterministically and
  keeps a virtual-time event log of everything it injected;
* :class:`FaultyDevice` — a :class:`~repro.storage.device.StorageDevice`
  that raises typed :class:`~repro.errors.IOFaultError` and stretches
  completion times per the schedule;
* :class:`FaultyFileSystem` / :class:`FaultyFile` — a
  :class:`~repro.fs.filesystem.SimFileSystem` whose appends can tear
  (durable watermark lands mid-record) or land on mangled media.

With no schedule installed the wrappers add a single predicate call per
operation and change no simulated timestamps: runs are bit-identical to the
unwrapped stack.
"""

from repro.faults.device import FaultyDevice
from repro.faults.filesystem import FaultyFile, FaultyFileSystem
from repro.faults.injector import FaultInjector
from repro.faults.mutate import (
    CLUSTER_MUTATION_KINDS,
    DST_MUTATION_KINDS,
    SERVING_MUTATION_KINDS,
    STORM_MUTATION_KINDS,
    MutationContext,
    clamp_schedule,
    clamp_spec,
    draw_spec,
    mutate_schedule,
)
from repro.faults.schedule import (
    CORRUPT_APPEND,
    CORRUPT_SST_BLOCK,
    CRASH,
    DEVICE_KINDS,
    FAULT_KINDS,
    FS_KINDS,
    HEAL,
    LATENCY_SPIKE,
    NET_DELAY,
    NET_DROP,
    NET_KINDS,
    PARTITION,
    READ_ERROR,
    SCHEMA_VERSION,
    STALL,
    TORN_APPEND,
    WRITE_ERROR,
    FaultSchedule,
    FaultSpec,
)

__all__ = [
    "CLUSTER_MUTATION_KINDS",
    "CORRUPT_APPEND",
    "CORRUPT_SST_BLOCK",
    "CRASH",
    "DEVICE_KINDS",
    "DST_MUTATION_KINDS",
    "SERVING_MUTATION_KINDS",
    "FAULT_KINDS",
    "FS_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FaultyDevice",
    "FaultyFile",
    "FaultyFileSystem",
    "HEAL",
    "LATENCY_SPIKE",
    "MutationContext",
    "NET_DELAY",
    "NET_DROP",
    "NET_KINDS",
    "PARTITION",
    "READ_ERROR",
    "SCHEMA_VERSION",
    "STALL",
    "STORM_MUTATION_KINDS",
    "TORN_APPEND",
    "WRITE_ERROR",
    "clamp_schedule",
    "clamp_spec",
    "draw_spec",
    "mutate_schedule",
]
