"""The fault injector: interprets a schedule against a running simulation.

The injector is consulted from exactly two hook points — device request
submission (:class:`~repro.faults.device.FaultyDevice`) and file append
(:class:`~repro.faults.filesystem.FaultyFile`) — and is therefore fully
deterministic: fault decisions depend only on the virtual clock, the
operation counters, and the schedule's spec order.  Every injected fault
is recorded in :attr:`log` as a virtual-time-stamped line, so two runs of
the same seed can be compared line-by-line.

Crash points are *requested*, not executed: a ``CRASH`` spec firing sets
:attr:`crash_pending` (and records the reason).  The driving harness
checks the flag between scheduler steps and performs the actual
``machine.crash()`` — the injector cannot safely tear the world down from
inside a device call.  Time-based crash points with no intervening I/O
are handled by the harness polling :meth:`due_crash_time`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import IOFaultError
from repro.faults.schedule import (
    CORRUPT_APPEND,
    CORRUPT_SST_BLOCK,
    CRASH,
    DEVICE_KINDS,
    FS_KINDS,
    LATENCY_SPIKE,
    NET_KINDS,
    READ_ERROR,
    STALL,
    TORN_APPEND,
    WRITE_ERROR,
    FaultSchedule,
    FaultSpec,
)
from repro.sim.engine import Engine
from repro.sim.stats import StatsSet


class _Armed:
    """Mutable per-spec trigger state."""

    __slots__ = ("spec", "remaining", "matched", "retired")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.remaining = spec.count
        self.matched = 0  # matching operations seen so far
        self.retired = False

    def due(self, now: int) -> bool:
        spec = self.spec
        if spec.at_time is not None and now < spec.at_time:
            return False
        if spec.at_op is not None and self.matched < spec.at_op:
            return False
        return True


class FaultInjector:
    """Deterministic schedule interpreter shared by device and filesystem."""

    def __init__(self, engine: Engine, schedule: Optional[FaultSchedule] = None) -> None:
        self.engine = engine
        self.stats = StatsSet()
        self.log: List[str] = []
        self.crash_pending = False
        self.crash_reason: Optional[str] = None
        self._device_states: List[_Armed] = []
        self._fs_states: List[_Armed] = []
        #: Net-level specs are carried inertly: the injector's device/fs
        #: hooks never fire them — they are interpreted by repro.net against
        #: a cluster topology (see Network.install_schedule).
        self.net_specs: List[FaultSpec] = []
        for spec in schedule or ():
            if spec.kind in NET_KINDS:
                self.net_specs.append(spec)
                continue
            state = _Armed(spec)
            if spec.kind in DEVICE_KINDS:
                self._device_states.append(state)
            else:
                self._fs_states.append(state)

    # -- bookkeeping -------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while any spec can still fire (cheap fast-path predicate)."""
        return any(not s.retired for s in self._device_states) or any(
            not s.retired for s in self._fs_states
        )

    def _record(self, line: str) -> None:
        self.log.append(f"t={self.engine.now} {line}")

    def _fire(self, state: _Armed) -> None:
        state.remaining -= 1
        if state.remaining <= 0:
            state.retired = True

    def disarm(self) -> None:
        """Retire every remaining spec (faults stop; e.g. post-crash checks)."""
        for state in self._device_states:
            state.retired = True
        for state in self._fs_states:
            state.retired = True

    def request_crash(self, reason: str) -> None:
        if not self.crash_pending:
            self.crash_pending = True
            self.crash_reason = reason
            self.stats.inc("faults.crash_requests")
            self._record(f"crash requested: {reason}")

    def due_crash_time(self) -> Optional[int]:
        """Earliest pending time-only crash point, for harness polling."""
        times = [
            s.spec.at_time
            for s in self._device_states
            if s.spec.kind == CRASH
            and not s.retired
            and s.spec.at_time is not None
            and s.spec.at_op is None
        ]
        return min(times) if times else None

    def poll(self) -> bool:
        """Fire any time-only crash spec that is now due; returns the flag."""
        now = self.engine.now
        for state in self._device_states:
            spec = state.spec
            if (
                spec.kind == CRASH
                and not state.retired
                and spec.at_op is None
                and spec.at_time is not None
                and now >= spec.at_time
            ):
                state.retired = True
                self.request_crash(f"crash at_time={spec.at_time}")
        return self.crash_pending

    # -- device hook -------------------------------------------------------

    def on_device_op(self, op: str) -> int:
        """Consult the schedule for one device submission.

        ``op`` is ``"read"`` or ``"write"``.  Returns extra completion
        latency in ns (0 normally); raises :class:`IOFaultError` when an
        error spec fires.  Spec order is the tie-break: the first due
        error spec raises, after latency contributions from earlier specs
        are discarded (the request never completes).
        """
        now = self.engine.now
        extra = 0
        for state in self._device_states:
            if state.retired:
                continue
            spec = state.spec
            if spec.until_time is not None and now > spec.until_time:
                state.retired = True  # storm window closed
                continue
            if spec.kind == READ_ERROR and op != "read":
                continue
            if spec.kind == WRITE_ERROR and op != "write":
                continue
            state.matched += 1
            if not state.due(now):
                continue
            if spec.kind == CRASH:
                state.retired = True
                self.request_crash(f"crash on device {op} #{state.matched}")
            elif spec.kind in (LATENCY_SPIKE, STALL):
                self._fire(state)
                extra += spec.extra_ns
                self.stats.inc(f"faults.{spec.kind}")
                self._record(f"{spec.kind} {op} +{spec.extra_ns}ns")
            else:
                self._fire(state)
                self.stats.inc(f"faults.{spec.kind}")
                self._record(
                    f"{spec.kind} {op} transient={spec.transient}"
                )
                raise IOFaultError(
                    f"injected {spec.kind} on device {op}",
                    op=op,
                    transient=spec.transient,
                )
        return extra

    # -- filesystem hook ---------------------------------------------------

    def on_append(self, file, offset: int, nbytes: int) -> None:
        """Consult the schedule for one file append (already applied).

        ``offset`` is where the appended record starts.  Torn appends
        advance the durable watermark into the middle of the record —
        exactly the state a power cut mid-writeback leaves behind;
        corruption faults mark the media range bad or flip an SST block
        checksum in the file's payload.
        """
        now = self.engine.now
        for state in self._fs_states:
            if state.retired:
                continue
            spec = state.spec
            if spec.until_time is not None and now > spec.until_time:
                state.retired = True  # storm window closed
                continue
            if spec.path is not None and not file.path.startswith(spec.path):
                continue
            state.matched += 1
            if not state.due(now):
                continue
            self._fire(state)
            self.stats.inc(f"faults.{spec.kind}")
            if spec.kind == TORN_APPEND:
                # Half the record becomes durable: recovery must detect the
                # tear (torn tail below the sync watermark) via checksums.
                torn = offset + max(1, nbytes // 2)
                if torn > file.synced_size:
                    file.synced_size = torn
                    file._flushed_size = max(file._flushed_size, torn)
                file.fs.stats.inc("injected_torn_appends")
                self._record(f"torn_append {file.path} @{offset}+{nbytes} torn_to={torn}")
            elif spec.kind == CORRUPT_APPEND:
                file.mark_corrupt(offset, nbytes)
                self._record(f"corrupt_append {file.path} @{offset}+{nbytes}")
            elif spec.kind == CORRUPT_SST_BLOCK:
                sst = getattr(file, "payload", None)
                if sst is not None and hasattr(sst, "corrupt_block_checksum"):
                    block = spec.block if spec.block is not None else 0
                    block %= max(1, sst.block_count)
                    sst.corrupt_block_checksum(block)
                    self._record(f"corrupt_sst_block {file.path} block={block}")
                else:
                    # No table payload attached (yet): fall back to media damage.
                    file.mark_corrupt(offset, nbytes)
                    self._record(f"corrupt_sst_block {file.path} fallback @{offset}")
