"""A storage device that misbehaves on schedule.

:class:`FaultyDevice` consults its :class:`~repro.faults.injector.FaultInjector`
on every submission.  An error spec raises :class:`~repro.errors.IOFaultError`
*before* the request is queued — the command fails at the interface, so the
device's channel clocks, counters and latency histograms never see it (the
retry, if any, is a fresh submission).  A latency spec lets the request run
normally and stretches its completion by chaining a timeout after the
underlying event, leaving the device's internal clocks untouched: the delay
models a hiccup on the host path, not extra channel occupancy.

With no active specs the overhead is one predicate call per submission and
no behaviour change.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.injector import FaultInjector
from repro.sim.engine import Engine, Event
from repro.sim.rng import RandomStream
from repro.storage.device import READ, WRITE, StorageDevice
from repro.storage.profiles import DeviceProfile


class FaultyDevice(StorageDevice):
    """A :class:`StorageDevice` wrapped with schedule-driven faults."""

    def __init__(
        self,
        engine: Engine,
        profile: DeviceProfile,
        injector: FaultInjector,
        rng: Optional[RandomStream] = None,
        track_queue_depth: bool = False,
    ) -> None:
        super().__init__(engine, profile, rng, track_queue_depth)
        self.injector = injector

    def read(self, offset: int, nbytes: int, sequential: bool = False) -> Event:
        extra = self.injector.on_device_op(READ)  # may raise IOFaultError
        ev = super().read(offset, nbytes, sequential)
        if extra:
            ev = self._stretch(ev, extra)
        return ev

    def write(self, offset: int, nbytes: int, sequential: bool = False) -> Event:
        extra = self.injector.on_device_op(WRITE)  # may raise IOFaultError
        ev = super().write(offset, nbytes, sequential)
        if extra:
            ev = self._stretch(ev, extra)
        return ev

    def _stretch(self, ev: Event, extra_ns: int) -> Event:
        """Chain ``extra_ns`` of delay after ``ev`` fires."""
        engine = self.engine
        out = engine.event()

        def _after(_ev: Event) -> None:
            timeout = engine.timeout(extra_ns)
            timeout.callbacks.append(lambda _t: out.succeed())

        ev.callbacks.append(_after)
        return out
