"""Declarative fault schedules.

A :class:`FaultSpec` describes one fault event: what goes wrong
(``kind``), when it triggers (``at_time`` in virtual ns and/or ``at_op``
as a 1-based count of matching operations), where (``path`` prefix for
filesystem faults), and how often once armed (``count``).  A
:class:`FaultSchedule` is an ordered list of specs; order is the
tie-break when several specs could fire on the same operation, so a
schedule is a complete, deterministic description of a faulty run.

Schedules serialise to JSON (:meth:`FaultSchedule.to_json` /
:meth:`from_json`) so a failing DST seed can be replayed byte-for-byte
from its saved schedule, and :meth:`FaultSchedule.random` draws a
schedule from a named :class:`~repro.sim.rng.RandomStream` for seeded
exploration.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence

from repro.errors import FaultConfigError
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us

# Device-level faults (trigger on device read/write submissions).
READ_ERROR = "read_error"  # read submission raises IOFaultError
WRITE_ERROR = "write_error"  # write submission raises IOFaultError (surfaces at fsync)
LATENCY_SPIKE = "latency_spike"  # completion delayed by extra_ns
STALL = "stall"  # same mechanics, stuck-I/O magnitude
CRASH = "crash"  # request a whole-machine crash point

# Filesystem-level faults (trigger on file appends).
TORN_APPEND = "torn_append"  # durable watermark lands mid-record
CORRUPT_APPEND = "corrupt_append"  # appended range lands on bad media
CORRUPT_SST_BLOCK = "corrupt_sst_block"  # flip a block checksum in the SST payload

DEVICE_KINDS = frozenset({READ_ERROR, WRITE_ERROR, LATENCY_SPIKE, STALL, CRASH})
FS_KINDS = frozenset({TORN_APPEND, CORRUPT_APPEND, CORRUPT_SST_BLOCK})
FAULT_KINDS = DEVICE_KINDS | FS_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Trigger semantics: the spec arms on the first matching operation at
    which ``at_time`` has passed (``engine.now >= at_time``) *and* the
    matching-operation counter has reached ``at_op``.  Omitting a field
    (None) waives that condition; a spec with neither is armed from the
    start.  Once armed it fires on ``count`` consecutive matching
    operations, then retires.  ``until_time`` bounds the spec to a
    window: once ``engine.now`` passes it the spec retires even with
    ``count`` remaining (a fault *storm* is a window plus a large
    count).  ``CRASH`` fires once, ignoring ``count``.
    """

    kind: str
    at_time: Optional[int] = None  # virtual ns
    at_op: Optional[int] = None  # 1-based matching-op count
    path: Optional[str] = None  # path prefix filter (fs kinds only)
    count: int = 1
    extra_ns: int = 0  # added latency (latency_spike / stall)
    transient: bool = True  # IOFaultError retryability (errors)
    block: Optional[int] = None  # block index (corrupt_sst_block)
    until_time: Optional[int] = None  # retire after this virtual ns (storm window)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultConfigError(f"unknown fault kind {self.kind!r}")
        if self.count < 1:
            raise FaultConfigError(f"count must be >= 1, got {self.count}")
        if self.at_op is not None and self.at_op < 1:
            raise FaultConfigError(f"at_op is 1-based, got {self.at_op}")
        if self.at_time is not None and self.at_time < 0:
            raise FaultConfigError(f"at_time must be >= 0, got {self.at_time}")
        if self.kind in (LATENCY_SPIKE, STALL) and self.extra_ns <= 0:
            raise FaultConfigError(f"{self.kind} needs extra_ns > 0")
        if self.until_time is not None:
            if self.until_time < 0:
                raise FaultConfigError(
                    f"until_time must be >= 0, got {self.until_time}"
                )
            if self.at_time is not None and self.until_time <= self.at_time:
                raise FaultConfigError(
                    f"until_time {self.until_time} must exceed at_time {self.at_time}"
                )
        if self.path is not None and self.kind in DEVICE_KINDS:
            raise FaultConfigError(f"{self.kind} is device-wide; path filter invalid")

    def to_dict(self) -> dict:
        """Dict form with defaulted fields elided (stable JSON)."""
        out = {"kind": self.kind}
        for key, value in asdict(self).items():
            if key == "kind":
                continue
            default = type(self).__dataclass_fields__[key].default
            if value != default:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        try:
            return cls(**data)
        except TypeError as exc:
            raise FaultConfigError(f"bad fault spec {data!r}: {exc}") from exc


@dataclass
class FaultSchedule:
    """An ordered list of :class:`FaultSpec`, JSON round-trippable."""

    specs: List[FaultSpec] = field(default_factory=list)

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def add(self, spec: FaultSpec) -> "FaultSchedule":
        self.specs.append(spec)
        return self

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps([s.to_dict() for s in self.specs], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultConfigError(f"unparseable schedule: {exc}") from exc
        if not isinstance(data, list):
            raise FaultConfigError("schedule JSON must be a list of specs")
        return cls([FaultSpec.from_dict(d) for d in data])

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def from_file(cls, path: str) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # -- seeded generation -------------------------------------------------

    @classmethod
    def random(
        cls,
        rng: RandomStream,
        horizon_ns: int,
        max_faults: int = 5,
        kinds: Optional[Sequence[str]] = None,
        wal_prefix: str = "wal/",
        sst_prefix: str = "sst/",
    ) -> "FaultSchedule":
        """Draw a schedule from ``rng`` with triggers inside ``horizon_ns``.

        Injected errors are always transient (retryable): non-transient
        errors surface to the client as typed exceptions, which is a
        different test shape than crash-consistency exploration.  Crash
        points are the caller's business (DST adds its own), so ``CRASH``
        is not drawn here.
        """
        if kinds is None:
            kinds = (
                READ_ERROR,
                WRITE_ERROR,
                LATENCY_SPIKE,
                STALL,
                TORN_APPEND,
                CORRUPT_APPEND,
            )
        specs: List[FaultSpec] = []
        for _ in range(rng.randint(1, max_faults)):
            kind = kinds[rng.randint(0, len(kinds) - 1)]
            at_time = rng.randint(horizon_ns // 20, horizon_ns)
            if kind in (READ_ERROR, WRITE_ERROR):
                specs.append(
                    FaultSpec(kind, at_time=at_time, count=rng.randint(1, 2))
                )
            elif kind == LATENCY_SPIKE:
                specs.append(
                    FaultSpec(
                        kind,
                        at_time=at_time,
                        count=rng.randint(1, 8),
                        extra_ns=rng.randint(us(200), ms(5)),
                    )
                )
            elif kind == STALL:
                specs.append(
                    FaultSpec(kind, at_time=at_time, extra_ns=rng.randint(ms(20), ms(200)))
                )
            elif kind == TORN_APPEND:
                specs.append(FaultSpec(kind, at_time=at_time, path=wal_prefix))
            else:  # CORRUPT_APPEND
                path = wal_prefix if rng.chance(0.5) else sst_prefix
                specs.append(FaultSpec(kind, at_time=at_time, path=path))
        return cls(specs)
