"""Declarative fault schedules.

A :class:`FaultSpec` describes one fault event: what goes wrong
(``kind``), when it triggers (``at_time`` in virtual ns and/or ``at_op``
as a 1-based count of matching operations), where (``path`` prefix for
filesystem faults), and how often once armed (``count``).  A
:class:`FaultSchedule` is an ordered list of specs; order is the
tie-break when several specs could fire on the same operation, so a
schedule is a complete, deterministic description of a faulty run.

Schedules serialise to JSON (:meth:`FaultSchedule.to_json` /
:meth:`from_json`) so a failing DST seed can be replayed byte-for-byte
from its saved schedule, and :meth:`FaultSchedule.random` draws a
schedule from a named :class:`~repro.sim.rng.RandomStream` for seeded
exploration.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import FaultConfigError
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us

# Device-level faults (trigger on device read/write submissions).
READ_ERROR = "read_error"  # read submission raises IOFaultError
WRITE_ERROR = "write_error"  # write submission raises IOFaultError (surfaces at fsync)
LATENCY_SPIKE = "latency_spike"  # completion delayed by extra_ns
STALL = "stall"  # same mechanics, stuck-I/O magnitude
CRASH = "crash"  # request a whole-machine crash point

# Filesystem-level faults (trigger on file appends).
TORN_APPEND = "torn_append"  # durable watermark lands mid-record
CORRUPT_APPEND = "corrupt_append"  # appended range lands on bad media
CORRUPT_SST_BLOCK = "corrupt_sst_block"  # flip a block checksum in the SST payload

# Network-level faults (interpreted by repro.net against a cluster topology).
PARTITION = "partition"  # isolate `nodes` from the rest for a window
HEAL = "heal"  # close every partition window open at `at_time`
NET_DELAY = "net_delay"  # add extra_ns to message latency for a window
NET_DROP = "net_drop"  # drop messages with probability drop_p for a window

DEVICE_KINDS = frozenset({READ_ERROR, WRITE_ERROR, LATENCY_SPIKE, STALL, CRASH})
FS_KINDS = frozenset({TORN_APPEND, CORRUPT_APPEND, CORRUPT_SST_BLOCK})
NET_KINDS = frozenset({PARTITION, HEAL, NET_DELAY, NET_DROP})
FAULT_KINDS = DEVICE_KINDS | FS_KINDS | NET_KINDS

#: Current schema version for serialized schedules.  Version 1 is the bare
#: JSON list emitted before net faults existed; version 2 wraps the list in
#: ``{"version": 2, "specs": [...]}`` and adds the net kinds plus the
#: ``node``/``nodes``/``drop_p`` fields.  :meth:`FaultSchedule.to_json` only
#: emits the v2 envelope when a spec actually needs it, so every schedule
#: expressible in v1 still serializes byte-identically to the v1 form.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Trigger semantics: the spec arms on the first matching operation at
    which ``at_time`` has passed (``engine.now >= at_time``) *and* the
    matching-operation counter has reached ``at_op``.  Omitting a field
    (None) waives that condition; a spec with neither is armed from the
    start.  Once armed it fires on ``count`` consecutive matching
    operations, then retires.  ``until_time`` bounds the spec to a
    window: once ``engine.now`` passes it the spec retires even with
    ``count`` remaining (a fault *storm* is a window plus a large
    count).  ``CRASH`` fires once, ignoring ``count``.
    """

    kind: str
    at_time: Optional[int] = None  # virtual ns
    at_op: Optional[int] = None  # 1-based matching-op count
    path: Optional[str] = None  # path prefix filter (fs kinds only)
    count: int = 1
    extra_ns: int = 0  # added latency (latency_spike / stall / net_delay)
    transient: bool = True  # IOFaultError retryability (errors)
    block: Optional[int] = None  # block index (corrupt_sst_block)
    until_time: Optional[int] = None  # retire after this virtual ns (storm window)
    node: Optional[int] = None  # target node id (cluster runs; v2 schema)
    nodes: Optional[Tuple[int, ...]] = None  # isolated group (partition; v2)
    drop_p: float = 0.0  # message drop probability (net_drop; v2)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultConfigError(f"unknown fault kind {self.kind!r}")
        if self.count < 1:
            raise FaultConfigError(f"count must be >= 1, got {self.count}")
        if self.at_op is not None and self.at_op < 1:
            raise FaultConfigError(f"at_op is 1-based, got {self.at_op}")
        if self.at_time is not None and self.at_time < 0:
            raise FaultConfigError(f"at_time must be >= 0, got {self.at_time}")
        if self.kind in (LATENCY_SPIKE, STALL) and self.extra_ns <= 0:
            raise FaultConfigError(f"{self.kind} needs extra_ns > 0")
        if self.until_time is not None:
            if self.until_time < 0:
                raise FaultConfigError(
                    f"until_time must be >= 0, got {self.until_time}"
                )
            if self.at_time is not None and self.until_time <= self.at_time:
                raise FaultConfigError(
                    f"until_time {self.until_time} must exceed at_time {self.at_time}"
                )
        if self.path is not None and self.kind in DEVICE_KINDS:
            raise FaultConfigError(f"{self.kind} is device-wide; path filter invalid")
        if self.nodes is not None and not isinstance(self.nodes, tuple):
            # JSON round-trips tuples as lists; normalize so spec equality
            # (and therefore schedule round-trip tests) compare stably.
            object.__setattr__(self, "nodes", tuple(self.nodes))
        if not 0.0 <= self.drop_p <= 1.0:
            raise FaultConfigError(f"drop_p must be in [0, 1], got {self.drop_p}")
        if self.kind in NET_KINDS:
            if self.at_time is None:
                raise FaultConfigError(f"{self.kind} needs at_time")
            if self.at_op is not None:
                raise FaultConfigError(f"{self.kind} is time-driven; at_op invalid")
            if self.path is not None:
                raise FaultConfigError(f"{self.kind} is link-level; path invalid")
            if self.kind == PARTITION and not self.nodes:
                raise FaultConfigError("partition needs a non-empty nodes group")
            if self.kind == NET_DELAY and self.extra_ns <= 0:
                raise FaultConfigError("net_delay needs extra_ns > 0")
            if self.kind == NET_DROP and self.drop_p <= 0.0:
                raise FaultConfigError("net_drop needs drop_p > 0")
        else:
            if self.nodes is not None:
                raise FaultConfigError(f"nodes group is partition-only, not {self.kind}")
            if self.drop_p != 0.0:
                raise FaultConfigError(f"drop_p is net_drop-only, not {self.kind}")
        if self.node is not None and self.node < 0:
            raise FaultConfigError(f"node must be >= 0, got {self.node}")

    @property
    def needs_v2(self) -> bool:
        """True when this spec cannot be expressed in the v1 schema."""
        return (
            self.kind in NET_KINDS
            or self.node is not None
            or self.nodes is not None
            or self.drop_p != 0.0
        )

    def to_dict(self) -> dict:
        """Dict form with defaulted fields elided (stable JSON)."""
        out = {"kind": self.kind}
        for key, value in asdict(self).items():
            if key == "kind":
                continue
            default = type(self).__dataclass_fields__[key].default
            if value != default:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        try:
            return cls(**data)
        except TypeError as exc:
            raise FaultConfigError(f"bad fault spec {data!r}: {exc}") from exc


@dataclass
class FaultSchedule:
    """An ordered list of :class:`FaultSpec`, JSON round-trippable."""

    specs: List[FaultSpec] = field(default_factory=list)

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def add(self, spec: FaultSpec) -> "FaultSchedule":
        self.specs.append(spec)
        return self

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> str:
        """Serialize; v1 bare list unless a spec needs the v2 envelope.

        Every schedule expressible before the net-fault extension keeps its
        exact v1 byte form, so saved schedules (and DST ``schedule_json``
        digests) replay unchanged.
        """
        specs = [s.to_dict() for s in self.specs]
        if any(s.needs_v2 for s in self.specs):
            return json.dumps({"version": SCHEMA_VERSION, "specs": specs}, indent=2)
        return json.dumps(specs, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultConfigError(f"unparseable schedule: {exc}") from exc
        if isinstance(data, dict):
            version = data.get("version")
            if not isinstance(version, int) or "specs" not in data:
                raise FaultConfigError(
                    "schedule JSON must be a list of specs (v1) or a "
                    "versioned object with 'version' and 'specs' (v2)"
                )
            if not 1 <= version <= SCHEMA_VERSION:
                raise FaultConfigError(
                    f"unsupported schedule schema version {version} "
                    f"(this build reads <= {SCHEMA_VERSION})"
                )
            data = data["specs"]
        if not isinstance(data, list):
            raise FaultConfigError("schedule JSON must be a list of specs")
        return cls([FaultSpec.from_dict(d) for d in data])

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def from_file(cls, path: str) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # -- seeded generation -------------------------------------------------

    @classmethod
    def random(
        cls,
        rng: RandomStream,
        horizon_ns: int,
        max_faults: int = 5,
        kinds: Optional[Sequence[str]] = None,
        wal_prefix: str = "wal/",
        sst_prefix: str = "sst/",
    ) -> "FaultSchedule":
        """Draw a schedule from ``rng`` with triggers inside ``horizon_ns``.

        Injected errors are always transient (retryable): non-transient
        errors surface to the client as typed exceptions, which is a
        different test shape than crash-consistency exploration.  Crash
        points are the caller's business (DST adds its own), so ``CRASH``
        is not drawn here.
        """
        if kinds is None:
            kinds = (
                READ_ERROR,
                WRITE_ERROR,
                LATENCY_SPIKE,
                STALL,
                TORN_APPEND,
                CORRUPT_APPEND,
            )
        specs: List[FaultSpec] = []
        for _ in range(rng.randint(1, max_faults)):
            kind = kinds[rng.randint(0, len(kinds) - 1)]
            at_time = rng.randint(horizon_ns // 20, horizon_ns)
            if kind in (READ_ERROR, WRITE_ERROR):
                specs.append(
                    FaultSpec(kind, at_time=at_time, count=rng.randint(1, 2))
                )
            elif kind == LATENCY_SPIKE:
                specs.append(
                    FaultSpec(
                        kind,
                        at_time=at_time,
                        count=rng.randint(1, 8),
                        extra_ns=rng.randint(us(200), ms(5)),
                    )
                )
            elif kind == STALL:
                specs.append(
                    FaultSpec(kind, at_time=at_time, extra_ns=rng.randint(ms(20), ms(200)))
                )
            elif kind == TORN_APPEND:
                specs.append(FaultSpec(kind, at_time=at_time, path=wal_prefix))
            else:  # CORRUPT_APPEND
                path = wal_prefix if rng.chance(0.5) else sst_prefix
                specs.append(FaultSpec(kind, at_time=at_time, path=path))
        return cls(specs)

    @classmethod
    def random_cluster(
        cls,
        rng: RandomStream,
        horizon_ns: int,
        n_nodes: int,
        max_faults: int = 4,
        crash_p: float = 0.6,
    ) -> "FaultSchedule":
        """Draw a cluster schedule: net windows plus at most one node crash.

        Partitions either carry their own ``until_time`` window or stay open
        until an explicit ``HEAL`` event, so both closing mechanisms get
        seed coverage.  At most one node crash is drawn (the DST invariants
        are stated against single-node crashes; quorum loss from multiple
        simultaneous crashes is a different test shape).
        """
        if n_nodes < 2:
            raise FaultConfigError(f"cluster schedules need >= 2 nodes, got {n_nodes}")
        specs: List[FaultSpec] = []
        net_kinds = (PARTITION, NET_DELAY, NET_DROP)
        for _ in range(rng.randint(1, max_faults)):
            kind = net_kinds[rng.randint(0, len(net_kinds) - 1)]
            at_time = rng.randint(horizon_ns // 20, (horizon_ns * 3) // 4)
            until = at_time + rng.randint(horizon_ns // 20, horizon_ns // 4)
            if kind == PARTITION:
                # Isolate a strict minority-or-half group from the rest.
                group_size = rng.randint(1, max(1, n_nodes // 2))
                members = list(range(n_nodes))
                rng.shuffle(members)
                group = tuple(sorted(members[:group_size]))
                if rng.chance(0.5):
                    specs.append(
                        FaultSpec(kind, at_time=at_time, until_time=until, nodes=group)
                    )
                else:
                    specs.append(FaultSpec(kind, at_time=at_time, nodes=group))
                    specs.append(FaultSpec(HEAL, at_time=until))
            elif kind == NET_DELAY:
                specs.append(
                    FaultSpec(
                        kind,
                        at_time=at_time,
                        until_time=until,
                        extra_ns=rng.randint(us(200), ms(5)),
                    )
                )
            else:  # NET_DROP
                specs.append(
                    FaultSpec(
                        kind,
                        at_time=at_time,
                        until_time=until,
                        drop_p=rng.uniform(0.05, 0.5),
                    )
                )
        if rng.chance(crash_p):
            specs.append(
                FaultSpec(
                    CRASH,
                    at_time=rng.randint(horizon_ns // 10, (horizon_ns * 3) // 4),
                    node=rng.randint(0, n_nodes - 1),
                )
            )
        return cls(specs)
