"""A filesystem whose appends can tear or land on bad media.

:class:`FaultyFile` hooks :meth:`~repro.fs.filesystem.SimFile.append`:
after the normal append is applied, the injector may tear the record
(advance the durable watermark mid-record — the state a power cut during
writeback leaves behind), mark the appended range as corrupted media, or
flip an SST block checksum in the file's payload.  Device-level faults
(errors, latency) come from pairing the filesystem with a
:class:`~repro.faults.device.FaultyDevice`; this layer only injects the
failure modes that need file-offset knowledge.

:class:`FaultyFileSystem` is a :class:`~repro.fs.filesystem.SimFileSystem`
with ``file_class`` pointed at :class:`FaultyFile` and the injector handle
threaded through, so every created file participates.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.faults.injector import FaultInjector
from repro.fs.filesystem import SimFile, SimFileSystem
from repro.sim.engine import Engine, Event
from repro.storage.device import StorageDevice


class FaultyFile(SimFile):
    """A :class:`SimFile` that reports appends to the fault injector."""

    def append(self, nbytes: int, record: Any = None) -> Optional[Event]:
        ev = super().append(nbytes, record)
        injector = self.fs.injector
        if injector is not None:
            injector.on_append(self, self.size - nbytes, nbytes)
        return ev


class FaultyFileSystem(SimFileSystem):
    """A :class:`SimFileSystem` wired to a :class:`FaultInjector`."""

    file_class = FaultyFile

    def __init__(
        self,
        engine: Engine,
        device: StorageDevice,
        page_cache,
        injector: Optional[FaultInjector] = None,
        writeback_bytes: int = 256 * 1024,
        dirty_limit_bytes: int = 1024 * 1024,
        quota_bytes=None,
    ) -> None:
        super().__init__(
            engine,
            device,
            page_cache,
            writeback_bytes=writeback_bytes,
            dirty_limit_bytes=dirty_limit_bytes,
            quota_bytes=quota_bytes,
        )
        self.injector = injector
