"""Admission control: per-tenant token buckets in front of the shards.

The paper's Section VI bottleneck story is about what happens *behind* the
write queue; a production serving tier additionally needs a front door that
(a) enforces each tenant's provisioned rate so one tenant's burst cannot
starve the rest, and (b) backs off globally when the storage engine itself
is throttling — otherwise admitted requests just pile up in the write queue
the paper showed to be the contention point.

Each tenant gets a :class:`TokenBucket` over virtual time (the same
virtual-refill-clock construction as
:class:`~repro.lsm.write_controller.WriteController.get_delay`, so
aggregate admitted rate equals the configured rate).  The bucket's
*effective* rate is scaled by the worst stall state across the shard
write controllers — the existing Algorithm-1 signals feed straight into
admission:

* every shard ``NORMAL`` → full provisioned rate;
* any shard ``DELAYED``  → rate scaled by that shard's current
  ``delayed_write_rate`` relative to its configured rate (as compaction
  falls further behind, admission tightens with it);
* any shard ``STOPPED``  → rate floored at :data:`STOP_FACTOR` of
  provisioned (a trickle, so clients keep probing and unblock promptly
  when the stall clears instead of thundering in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ShedError, WorkloadError
from repro.lsm.write_controller import DELAYED, STOPPED, WriteController
from repro.sim.stats import StatsSet
from repro.sim.units import SEC, ms

#: Fraction of the provisioned rate still admitted while a shard is STOPPED.
STOP_FACTOR = 0.05
#: Lower bound on the DELAYED scale so admission never rounds to zero.
MIN_PRESSURE = 0.01


class TokenBucket:
    """Deterministic ops/second token bucket over virtual time."""

    def __init__(self, rate_per_sec: float, burst: int = 1) -> None:
        if rate_per_sec <= 0:
            raise WorkloadError(f"bucket rate must be positive: {rate_per_sec}")
        if burst < 1:
            raise WorkloadError(f"burst must be >= 1: {burst}")
        self.rate_per_sec = rate_per_sec
        self.burst = burst
        # Timestamp up to which admitted tokens are already spoken for.
        # None = never reserved (a full bucket: the first ``burst`` ops
        # admit free whenever they arrive).
        self._next_free: Optional[int] = None

    def reserve(self, now: int, n: int = 1, scale: float = 1.0) -> int:
        """Reserve ``n`` tokens at ``now``; returns the delay in ns.

        ``scale`` < 1 tightens the effective rate for this reservation
        (stall pressure).  Idle time banks credit — capped at ``burst``
        tokens — so a quiet tenant can burst briefly before pacing to the
        provisioned rate.
        """
        rate = self.rate_per_sec * max(MIN_PRESSURE, scale)
        token_ns = SEC / rate
        # A full bucket's clock trails ``now`` by burst-1 token intervals:
        # exactly ``burst`` back-to-back ops then admit with zero delay.
        credit_cap = round((self.burst - 1) * token_ns)
        nf = self._next_free
        if nf is None or nf < now - credit_cap:
            nf = now - credit_cap
        delay = nf - now if nf > now else 0
        self._next_free = nf + round(n * token_ns)
        return delay


@dataclass
class TenantBudget:
    """Provisioned admission budget of one tenant."""

    ops_per_sec: float
    burst: int = 16


class AdmissionController:
    """The serving front door: per-tenant buckets + engine backpressure."""

    def __init__(
        self,
        controllers: List[WriteController],
        budgets: Optional[Dict[str, TenantBudget]] = None,
    ) -> None:
        self.controllers = list(controllers)
        self._buckets: Dict[str, TokenBucket] = {}
        if budgets:
            for tenant, budget in budgets.items():
                self.set_budget(tenant, budget)
        self.stats = StatsSet()

    def set_budget(self, tenant: str, budget: TenantBudget) -> None:
        self._buckets[tenant] = TokenBucket(budget.ops_per_sec, budget.burst)

    def pressure(self) -> float:
        """Rate scale from the worst shard write-controller state in [0,1]."""
        scale = 1.0
        for controller in self.controllers:
            if controller.state == STOPPED:
                scale = min(scale, STOP_FACTOR)
            elif controller.state == DELAYED:
                configured = float(controller.options.delayed_write_rate)
                scale = min(scale, controller.delayed_write_rate / configured)
        return scale

    def admit(self, tenant: str, now: int, n: int = 1) -> int:
        """Admission delay (ns) for ``n`` ops of ``tenant`` arriving at
        ``now``; 0 = admitted immediately.  Unbudgeted tenants pass free.
        """
        bucket = self._buckets.get(tenant)
        if bucket is None:
            return 0
        delay = bucket.reserve(now, n, scale=self.pressure())
        self.stats.inc(f"admitted.{tenant}", n)
        if delay > 0:
            self.stats.inc(f"throttled.{tenant}", n)
            self.stats.inc(f"throttle_ns.{tenant}", delay)
        return delay


@dataclass(frozen=True)
class ErrorBudgetSpec:
    """Per-tenant rolling error budget: at most ``max_errors`` typed
    serving errors inside any ``window_ns`` window before the tenant is
    backed off wholesale (every op shed until the window drains)."""

    window_ns: int = ms(50)
    max_errors: int = 24

    def __post_init__(self) -> None:
        if self.window_ns <= 0 or self.max_errors < 1:
            raise WorkloadError("error budget window/count must be positive")


class ErrorBudget:
    """Rolling window of one tenant's typed-error timestamps."""

    def __init__(self, spec: ErrorBudgetSpec) -> None:
        self.spec = spec
        self._errors: List[int] = []

    def record(self, now: int) -> None:
        self._errors.append(now)

    def exhausted(self, now: int) -> bool:
        cutoff = now - self.spec.window_ns
        self._errors = [t for t in self._errors if t > cutoff]
        return len(self._errors) >= self.spec.max_errors


class BrownoutAdmission(AdmissionController):
    """Admission with graceful degradation for the resilient stack.

    Beyond the base token buckets and engine backpressure, this front
    door sheds load *before* it reaches a struggling shard group:

    * **brownout (shed writes before reads)** — while a shard group
      cannot reach a write quorum (partitioned, mid-election, majority
      crashed), writes routed at it are shed with
      :class:`~repro.errors.ShedError` ``reason="brownout-write"``;
      reads still pass, because the client layer can hedge them to
      caught-up followers;
    * **per-tenant error budgets** — each typed serving error a tenant
      observes spends budget; a tenant over its rolling budget has
      *every* op shed (``reason="error-budget"``) until the window
      drains, converting a retry-amplified failure into calibrated
      back-off.

    Shard write controllers come from ``controller_source`` (a callable)
    rather than a frozen list, because which node's write controller
    matters changes on failover.
    """

    def __init__(
        self,
        controller_source: Callable[[], Sequence[WriteController]],
        groups: Sequence[object],
        budgets: Optional[Dict[str, TenantBudget]] = None,
        error_budget: Optional[ErrorBudgetSpec] = None,
    ) -> None:
        super().__init__([], budgets)
        self._controller_source = controller_source
        self.groups = list(groups)  # each exposes write_quorum_reachable()
        self.error_budget_spec = error_budget or ErrorBudgetSpec()
        self._error_budgets: Dict[str, ErrorBudget] = {}

    def pressure(self) -> float:
        self.controllers = list(self._controller_source())
        return super().pressure()

    def record_error(self, tenant: str, now: int) -> None:
        """Charge one typed serving error against ``tenant``'s budget."""
        budget = self._error_budgets.get(tenant)
        if budget is None:
            budget = self._error_budgets[tenant] = ErrorBudget(
                self.error_budget_spec
            )
        budget.record(now)
        self.stats.inc(f"errors.{tenant}")

    def check(self, tenant: str, shard: int, is_write: bool, now: int) -> None:
        """Shed gate, consulted before the bucket; raises ShedError."""
        budget = self._error_budgets.get(tenant)
        if budget is not None and budget.exhausted(now):
            self.stats.inc(f"shed_budget.{tenant}")
            raise ShedError(
                f"tenant {tenant} over its error budget",
                reason="error-budget",
                shard=shard,
            )
        if is_write and not self.groups[shard].write_quorum_reachable():
            self.stats.inc(f"shed_brownout.{tenant}")
            raise ShedError(
                f"shard {shard} has no write quorum; write shed",
                reason="brownout-write",
                shard=shard,
            )
