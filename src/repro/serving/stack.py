"""The multi-tenant serving stack: N shards, one device, shared budgets.

This is the ``ablation-wq`` result promoted to architecture (ROADMAP open
item #1): instead of one DB absorbing every tenant through one long write
queue, the serving tier splits the key space over N shard DBs by
consistent hashing.  Everything that *should* stay shared stays shared —

* one :class:`~repro.storage.device.StorageDevice` and one page cache
  (the paper's contention point: many LSMs, one device);
* one :class:`~repro.lsm.block_cache.BlockCache`, namespaced per shard;
* one :class:`~repro.lsm.write_buffer_manager.WriteBufferManager` byte
  budget across all shards' memtables;
* one filesystem space budget (shards live under ``shard-N/`` prefixes of
  a single :class:`~repro.fs.filesystem.SimFileSystem`);
* one admission front door scaling every tenant's token bucket by the
  worst shard's Algorithm-1 stall state.

Per-shard state is what sharding is meant to multiply: write queues,
memtables, WALs, background workers, write controllers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.harness.machine import Machine
from repro.lsm.block_cache import BlockCache
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.write_buffer_manager import WriteBufferManager
from repro.serving.admission import AdmissionController, TenantBudget
from repro.serving.fleet import TenantSpec, TenantWorkload
from repro.serving.router import HashRing
from repro.serving.shardfs import ShardFsView
from repro.sim.units import MB, SEC, mb, seconds
from repro.storage.profiles import profile_by_name
from repro.workloads.prefill import prefill_keys


@dataclass(frozen=True)
class ServingConfig:
    """Shape of one serving stack."""

    shards: int = 2
    device: str = "xpoint"
    seed: int = 1
    page_cache_bytes: int = mb(8)
    #: Shared block cache across all shards.
    block_cache_bytes: int = mb(1)
    #: Shared memtable byte budget across all shards.
    write_buffer_budget: int = 4 * MB
    #: Per-shard options template; write_buffer_size is derived from the
    #: budget when left at 0 (budget // shards, so the joint budget binds
    #: before any one shard's private cap does).
    shard_options: Optional[Options] = None
    #: Admission headroom over each tenant's nominal aggregate rate.
    admission_headroom: float = 1.5
    vnodes: int = 64

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise WorkloadError(f"need at least one shard: {self.shards}")
        if self.write_buffer_budget <= 0 or self.block_cache_bytes <= 0:
            raise WorkloadError("shared budgets must be positive")
        if self.admission_headroom <= 0:
            raise WorkloadError("admission headroom must be positive")


@dataclass
class ServingResult:
    """Everything one serving run reports."""

    config_desc: str
    shards: int
    device: str
    seed: int
    duration_ns: int
    total_users: int
    tenant_rows: List[Dict[str, object]] = field(default_factory=list)
    shard_rows: List[Dict[str, object]] = field(default_factory=list)
    cache_row: Dict[str, object] = field(default_factory=dict)
    wbm_row: Dict[str, object] = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return sum(int(r["ops"]) for r in self.tenant_rows)

    @property
    def kops(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.total_ops * SEC / self.duration_ns / 1e3

    def render(self) -> str:
        from repro.obs import tenant_slo_digest

        lines = [
            f"== serving {self.config_desc} ==",
            f"fleet: {self.total_users} simulated users, "
            f"{self.total_ops} ops in {self.duration_ns / 1e9:.2f}s "
            f"({self.kops:.2f} kops)",
        ]
        lines.append(tenant_slo_digest(self.tenant_rows))
        lines.append("per-shard:")
        for row in self.shard_rows:
            lines.append(
                "  shard {shard}: {puts} puts {gets} gets | L0 {l0} | "
                "stall delays {delays} stops {stops} | "
                "wbm switches {wbm_switches}".format(**row)
            )
        c = self.cache_row
        lines.append(
            f"shared block cache: {c['hit_rate']:.1%} hit rate "
            f"({c['hits']} hits / {c['misses']} misses), "
            f"{c['used_bytes']} / {c['capacity_bytes']} bytes, "
            f"{c['evictions']} evictions, {c['refresh_drops']} refresh drops"
        )
        w = self.wbm_row
        lines.append(
            f"write-buffer budget: {w['budget_bytes']} bytes shared, "
            f"peak {w['peak_bytes']} bytes, {w['flush_triggers']} early flushes"
        )
        return "\n".join(lines)


class ServingStack:
    """N shard DBs behind consistent-hash routing and admission control."""

    def __init__(self, config: ServingConfig) -> None:
        self.config = config
        profile = profile_by_name(config.device)
        self.machine = Machine.create(
            profile, config.page_cache_bytes, seed=config.seed
        )
        self.engine = self.machine.engine
        self.block_cache = BlockCache(config.block_cache_bytes)
        self.write_buffer_manager = WriteBufferManager(config.write_buffer_budget)
        self.ring = HashRing(config.shards, vnodes=config.vnodes)

        per_shard_wb = max(64 * 1024, config.write_buffer_budget // config.shards)
        self.dbs: List[DB] = []
        for shard in range(config.shards):
            if config.shard_options is not None:
                opts = config.shard_options.copy(name=f"shard-{shard}")
            else:
                opts = Options(
                    name=f"shard-{shard}", write_buffer_size=per_shard_wb
                )
            fs_view = ShardFsView(self.machine.fs, f"shard-{shard}")
            db = DB(
                self.engine,
                fs_view,
                opts,
                costs=self.machine.costs,
                rng=self.machine.rng.fork(f"shard/{shard}"),
                block_cache=self.block_cache,
                write_buffer_manager=self.write_buffer_manager,
                cache_namespace=shard,
            )
            self.dbs.append(db)
        self.admission = AdmissionController(
            [db.controller for db in self.dbs]
        )

    # -- routed operations ---------------------------------------------------

    def shard_for(self, key: bytes) -> int:
        return self.ring.shard_for(key)

    def get(self, key: bytes):
        """Generator: routed point lookup."""
        result = yield from self.dbs[self.ring.shard_for(key)].get(key)
        return result

    def put(self, key: bytes, value):
        """Generator: routed single-key write."""
        result = yield from self.dbs[self.ring.shard_for(key)].put(key, value)
        return result

    def scan(self, start: bytes, end: bytes, limit: Optional[int] = None):
        """Generator: scatter-gather range scan across every shard.

        Hash routing scatters contiguous key ranges over all shards, so a
        range scan must consult each of them and merge — the real cost of
        choosing hash (not range) sharding, charged faithfully.
        """
        merged: List[Tuple[bytes, object]] = []
        for db in self.dbs:
            part = yield from db.scan(start, end, limit=limit)
            merged.extend(part)
        merged.sort(key=lambda kv: kv[0])
        if limit is not None:
            merged = merged[:limit]
        return merged

    # -- fleet runs ----------------------------------------------------------

    def prefill_fleet(self, workloads: List[TenantWorkload]) -> None:
        """Install every tenant's initial keys into their owning shards."""
        items: List[Tuple[bytes, int]] = []
        for wl in workloads:
            size = wl.spec.value_size
            items.extend((key, size) for key in wl.all_keys())
        items.sort(key=lambda kv: kv[0])
        parts: List[List[Tuple[bytes, int]]] = [
            [] for _ in range(self.config.shards)
        ]
        for key, size in items:
            parts[self.ring.shard_for(key)].append((key, size))
        for db, part in zip(self.dbs, parts):
            if part:
                prefill_keys(
                    db,
                    [k for k, _ in part],
                    value_sizes=[s for _, s in part],
                )

    def run_fleet(
        self,
        tenants: List[TenantSpec],
        duration_ns: int = seconds(1.0),
        prefill: bool = True,
    ) -> ServingResult:
        """Drive the whole tenant fleet for ``duration_ns`` of virtual time."""
        if not tenants:
            raise WorkloadError("need at least one tenant")
        workloads = [
            TenantWorkload(i, spec, self.config.seed)
            for i, spec in enumerate(tenants)
        ]
        if prefill:
            self.prefill_fleet(workloads)
        for wl in workloads:
            peak = 1.0 + wl.spec.diurnal_amplitude
            self.admission.set_budget(
                wl.spec.name,
                TenantBudget(
                    ops_per_sec=wl.spec.aggregate_rate
                    * peak
                    * self.config.admission_headroom,
                    burst=max(4, wl.spec.clients * 4),
                ),
            )
        end = self.engine.now + duration_ns
        for wl in workloads:
            for cid in range(wl.spec.clients):
                self.engine.process(
                    wl.client(self.engine, self, cid, end),
                    name=f"fleet-{wl.spec.name}-{cid}",
                )
        self.engine.run(until=end)
        for wl in workloads:
            wl.stats.duration_ns = duration_ns
        return self._collect(workloads, duration_ns)

    def _collect(
        self, workloads: List[TenantWorkload], duration_ns: int
    ) -> ServingResult:
        result = ServingResult(
            config_desc=(
                f"{self.config.device} x {self.config.shards} shard(s), "
                f"seed {self.config.seed}"
            ),
            shards=self.config.shards,
            device=self.config.device,
            seed=self.config.seed,
            duration_ns=duration_ns,
            total_users=sum(wl.spec.users for wl in workloads),
            tenant_rows=[wl.stats.row() for wl in workloads],
        )
        for shard, db in enumerate(self.dbs):
            result.shard_rows.append(
                {
                    "shard": shard,
                    "puts": db.stats.get("puts"),
                    "gets": db.stats.get("gets"),
                    "l0": db.versions.current.num_files(0),
                    "delays": db.stats.get("stall.delays_hit"),
                    "stops": db.stats.get("stall.stops_hit"),
                    "wbm_switches": db.stats.get("memtable.wbm_switches"),
                }
            )
        cache = self.block_cache
        result.cache_row = {
            "hits": cache.stats.get("hits"),
            "misses": cache.stats.get("misses"),
            "hit_rate": cache.hit_rate(),
            "used_bytes": cache.used_bytes,
            "capacity_bytes": cache.capacity_bytes,
            "evictions": cache.stats.get("evictions"),
            "refresh_drops": cache.stats.get("refresh_drops"),
        }
        wbm = self.write_buffer_manager
        result.wbm_row = {
            "budget_bytes": wbm.buffer_size,
            "peak_bytes": wbm.peak_usage,
            "flush_triggers": wbm.stats.get("flush_triggers"),
        }
        return result
