"""Consistent-hash key routing across DB shards.

The serving layer spreads the key space over N shards with a classic
consistent-hash ring (virtual nodes, CRC32 positions).  Two properties
matter here:

* **determinism** — CRC32 is stable across processes and Python versions,
  so a sweep point routes identically under ``--jobs 1`` and ``--jobs N``
  and across hosts;
* **stability** — growing the ring from N to N+1 shards remaps roughly
  ``1/(N+1)`` of the keys, so a scale-out experiment measures data
  movement, not a full reshuffle (plain ``hash % N`` would remap ~all keys);
* **remove/re-add symmetry** — a shard's vnode positions derive only from
  its name (``shard-i#v``), never from membership or insertion order, so
  :meth:`remove_node` followed by :meth:`add_node` restores the exact
  key→shard mapping the ring had before the removal.  Failover handling
  leans on this: routing away from a down shard group and back is an
  involution, not a reshuffle.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError


def _hash(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


class HashRing:
    """Consistent-hash ring mapping keys to shard indices [0, shards)."""

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        if shards < 1:
            raise WorkloadError(f"need at least one shard: {shards}")
        if vnodes < 1:
            raise WorkloadError(f"need at least one vnode per shard: {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        self._members = set(range(shards))
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute ring points from the current membership.

        Point positions depend only on ``(shard, vnode)`` names, so the
        same membership set always yields the same sorted point list no
        matter what add/remove history produced it.
        """
        points: List[Tuple[int, int]] = []
        for shard in sorted(self._members):
            for v in range(self.vnodes):
                points.append((_hash(b"shard-%d#%d" % (shard, v)), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def members(self) -> List[int]:
        """The shards currently on the ring, ascending."""
        return sorted(self._members)

    def remove_node(self, shard: int) -> None:
        """Take ``shard`` off the ring; its keys spill to ring successors."""
        if shard not in self._members:
            raise WorkloadError(f"shard {shard} is not on the ring")
        if len(self._members) == 1:
            raise WorkloadError("cannot remove the last shard from the ring")
        self._members.remove(shard)
        self._rebuild()

    def add_node(self, shard: int) -> None:
        """(Re-)add ``shard``; restores its exact pre-removal vnode positions."""
        if not 0 <= shard < self.shards:
            raise WorkloadError(
                f"shard {shard} outside the ring's shard space [0, {self.shards})"
            )
        if shard in self._members:
            raise WorkloadError(f"shard {shard} is already on the ring")
        self._members.add(shard)
        self._rebuild()

    def shard_for(self, key: bytes) -> int:
        """The shard owning ``key`` (first ring point at/after its hash)."""
        idx = bisect_right(self._hashes, _hash(key))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]

    def partition(self, keys: Sequence[bytes]) -> List[List[bytes]]:
        """Split ``keys`` into per-shard lists (order preserved)."""
        out: List[List[bytes]] = [[] for _ in range(self.shards)]
        for key in keys:
            out[self.shard_for(key)].append(key)
        return out

    def distribution(self, keys: Sequence[bytes]) -> Dict[int, int]:
        """Keys-per-shard histogram (diagnostics and balance tests)."""
        counts: Dict[int, int] = {s: 0 for s in range(self.shards)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
