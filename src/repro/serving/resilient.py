"""Resilient serving: every hash-ring shard is a replicated cluster group.

The plain :class:`~repro.serving.stack.ServingStack` answers the paper's
single-node questions at serving scale; this stack answers the ROADMAP's
"behind a network hop" question.  Each consistent-hash shard is a full
:class:`~repro.cluster.replication.Cluster` group — a leader and
followers with their own (fault-injectable) devices and filesystems,
joined by their own :class:`~repro.net.Network` — and every tenant op
travels through the :mod:`~repro.serving.client` policy layer (deadlines,
backoff, hedged reads, breakers) and the
:class:`~repro.serving.admission.BrownoutAdmission` front door (shed
writes before reads while a group has no write quorum; per-tenant error
budgets).

Chaos comes in as one :class:`~repro.faults.FaultSchedule` in **global
node space** (node ``g * replicas + r`` is replica ``r`` of group ``g``):

* net specs are localized per group (a partition only installs on the
  groups whose members it names);
* device/fs specs route to the named node's private injector;
* ``CRASH`` specs are exposed via :attr:`crash_specs` for the driving
  harness to turn into crash/restart controls (the stack never tears
  nodes down from inside itself).

The stack also carries the audit state the serving DST verifies:

* **no acked write lost** — every audited key's final replicated value
  must be its highest-acked write or a later indeterminate attempt
  (values are globally unique and self-describing);
* **read-your-writes** — sessions record violations when a read's
  applied sequence falls below the session's acked-write floor;
* **no hangs** — ``ops_started``/``ops_resolved`` must match once the
  fleet drains, and ``max_elapsed_ns`` must respect the client deadline;
* **honest tails** — fault windows (set by the harness) split every
  tenant's latencies into fault-window vs steady-state histograms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    DBError,
    DeadlineExceededError,
    FileSystemError,
    IOFaultError,
    ShardUnavailableError,
    WorkloadError,
)
from repro.cluster import Cluster, ClusterConfig
from repro.faults import (
    CRASH,
    NET_KINDS,
    PARTITION,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultyDevice,
    FaultyFileSystem,
)
from repro.fs.page_cache import PageCache
from repro.lsm.options import HASH_REP, WAL_SYNC, Options
from repro.net import NetConfig, Network
from repro.obs import tenant_slo_digest
from repro.serving.admission import (
    BrownoutAdmission,
    ErrorBudgetSpec,
    TenantBudget,
)
from repro.serving.client import ClientPolicy, ClientSession, ShardClient
from repro.serving.fleet import TenantSpec, TenantWorkload
from repro.serving.router import HashRing
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.units import SEC, kb, mb


def _node_options() -> Options:
    """Per-replica DB options: small, synced, checksum-paranoid.

    WAL_SYNC makes every replication ack a durability promise (the
    property the serving DST audits); the hash memtable rep keeps
    in-process reruns bit-identical.
    """
    return Options(
        write_buffer_size=kb(16),
        max_bytes_for_level_base=kb(64),
        target_file_size_base=kb(32),
        block_cache_bytes=kb(32),
        memtable_rep=HASH_REP,
        wal_mode=WAL_SYNC,
        paranoid_checks=True,
        name="resilient",
    )


@dataclass(frozen=True)
class ResilientServingConfig:
    """Shape of one resilient serving stack."""

    shards: int = 2
    replicas: int = 3
    device: str = "xpoint"
    seed: int = 1
    page_cache_bytes: int = mb(2)
    vnodes: int = 64
    policy: ClientPolicy = ClientPolicy()
    error_budget: ErrorBudgetSpec = ErrorBudgetSpec()
    admission_headroom: float = 1.5

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise WorkloadError(f"need at least one shard group: {self.shards}")
        if self.replicas < 2:
            raise WorkloadError(f"a shard group needs >= 2 replicas: {self.replicas}")
        if self.admission_headroom <= 0:
            raise WorkloadError("admission headroom must be positive")

    @property
    def total_nodes(self) -> int:
        return self.shards * self.replicas


class ShardGroup:
    """One replicated shard: cluster + network + per-node fault plumbing.

    Doubles as the :class:`~repro.serving.client.ShardClient` group
    duck type (leader_id / replica_ids / applied_seq / read / write /
    rediscover) and the brownout probe (write_quorum_reachable).
    """

    def __init__(
        self,
        group_id: int,
        base_node: int,
        cluster: Cluster,
        network: Network,
        injectors: List[FaultInjector],
    ) -> None:
        self.group_id = group_id
        self.base_node = base_node  # global id of local node 0
        self.cluster = cluster
        self.network = network
        self.injectors = injectors

    @property
    def leader_id(self) -> Optional[int]:
        return self.cluster.leader_id

    def replica_ids(self) -> List[int]:
        return list(range(len(self.cluster.nodes)))

    def applied_seq(self, node_id: int) -> int:
        return self.cluster.applied_seq(node_id)

    def read(self, node_id: int, key: bytes):
        result = yield from self.cluster.get_from(node_id, key)
        return result

    def write(self, key: bytes, value):
        result = yield from self.cluster.put(key, value)
        return result

    def rediscover(self) -> Optional[int]:
        """Leader re-discovery: ask the control plane for an election."""
        self.cluster.elect()
        return self.cluster.leader_id

    def write_quorum_reachable(self) -> bool:
        return self.cluster.write_quorum_reachable()


@dataclass
class ResilientServingResult:
    """Everything one resilient fleet run reports."""

    config_desc: str
    shards: int
    replicas: int
    device: str
    seed: int
    duration_ns: int
    total_users: int
    tenant_rows: List[Dict[str, object]] = field(default_factory=list)
    group_rows: List[Dict[str, object]] = field(default_factory=list)
    client_row: Dict[str, object] = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return sum(int(r["ops"]) for r in self.tenant_rows)

    @property
    def kops(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.total_ops * SEC / self.duration_ns / 1e3

    def render(self) -> str:
        lines = [
            f"== resilient serving {self.config_desc} ==",
            f"fleet: {self.total_users} simulated users, "
            f"{self.total_ops} ops in {self.duration_ns / 1e9:.2f}s "
            f"({self.kops:.2f} kops)",
        ]
        lines.append(tenant_slo_digest(self.tenant_rows))
        lines.append("per-group:")
        for row in self.group_rows:
            lines.append(
                "  group {group}: leader n{leader} term {term} | "
                "failovers {failovers} | log {log_len} groups".format(**row)
            )
        c = self.client_row
        lines.append(
            f"client layer: {c['hedges_launched']} hedges "
            f"({c['hedges_won']} won), {c['retries']} retries, "
            f"{c['breaker_trips']} breaker trips, "
            f"{c['deadline_exceeded']} deadline misses"
        )
        return "\n".join(lines)


class ResilientServingStack:
    """N replicated shard groups behind routing, admission, and policy."""

    def __init__(
        self,
        config: ResilientServingConfig,
        chaos: Optional[FaultSchedule] = None,
    ) -> None:
        self.config = config
        self.engine = Engine()
        self.rng = RandomStream(config.seed, "resilient-serving")
        self.ring = HashRing(config.shards, vnodes=config.vnodes)

        specs = list(chaos.specs) if chaos is not None else []
        #: CRASH specs (global node space) for the harness to schedule.
        self.crash_specs: List[FaultSpec] = [s for s in specs if s.kind == CRASH]
        node_specs = self._route_node_specs(specs)

        self.groups: List[ShardGroup] = []
        for g in range(config.shards):
            base = g * config.replicas
            injectors: List[FaultInjector] = []
            fss = []
            for r in range(config.replicas):
                injector = FaultInjector(
                    self.engine, FaultSchedule(node_specs[base + r])
                )
                injectors.append(injector)
                device = FaultyDevice(
                    self.engine,
                    self._profile(),
                    injector,
                    self.rng.fork(f"device/{base + r}"),
                )
                fss.append(
                    FaultyFileSystem(
                        self.engine,
                        device,
                        PageCache(config.page_cache_bytes),
                        injector,
                    )
                )
            network = Network(
                self.engine,
                config.replicas,
                self.rng.fork(f"net/{g}"),
                NetConfig(),
            )
            network.install_schedule(self._localize_net_specs(specs, g))
            cluster = Cluster(
                self.engine,
                network,
                fss,
                _node_options,
                self.rng.fork(f"cluster/{g}"),
                ClusterConfig(),
            )
            self.groups.append(ShardGroup(g, base, cluster, network, injectors))

        self.clients = [
            ShardClient(
                self.engine,
                g,
                group,
                config.policy,
                self.rng.fork(f"client/{g}"),
            )
            for g, group in enumerate(self.groups)
        ]
        self.admission = BrownoutAdmission(
            self._live_controllers,
            self.groups,
            error_budget=config.error_budget,
        )
        self.sessions: List[ClientSession] = []
        #: (start, end) virtual-ns windows during which faults were live;
        #: set by the harness so tenant tails split honestly.
        self.fault_windows: List[Tuple[int, int]] = []
        # Write audit: every value ever handed to a shard client, and the
        # (seq, value) pairs that were acked back.
        self._issued: Dict[bytes, Set[bytes]] = {}
        self._acked: Dict[bytes, List[Tuple[int, bytes]]] = {}
        self._value_counter = 0
        # The no-hang ledger.
        self.ops_started = 0
        self.ops_resolved = 0
        self.max_elapsed_ns = 0

    def _profile(self):
        from repro.storage.profiles import profile_by_name

        return profile_by_name(self.config.device)

    # -- chaos routing -----------------------------------------------------

    def _route_node_specs(
        self, specs: Sequence[FaultSpec]
    ) -> List[List[FaultSpec]]:
        """Device/fs specs per global node (``node`` field stripped)."""
        out: List[List[FaultSpec]] = [[] for _ in range(self.config.total_nodes)]
        for spec in specs:
            if spec.kind in NET_KINDS or spec.kind == CRASH:
                continue
            node = (spec.node or 0) % self.config.total_nodes
            out[node].append(
                replace(spec, node=None) if spec.node is not None else spec
            )
        return out

    def _localize_net_specs(
        self, specs: Sequence[FaultSpec], group_id: int
    ) -> List[FaultSpec]:
        """Global-space net specs folded into one group's local node ids."""
        base = group_id * self.config.replicas
        local: List[FaultSpec] = []
        for spec in specs:
            if spec.kind not in NET_KINDS:
                continue
            if spec.kind == PARTITION:
                members = tuple(
                    n - base
                    for n in (spec.nodes or ())
                    if base <= n < base + self.config.replicas
                )
                # A group partitions only when the boundary crosses it.
                if not members or len(members) >= self.config.replicas:
                    continue
                local.append(replace(spec, nodes=members))
            elif spec.node is not None:
                if base <= spec.node < base + self.config.replicas:
                    local.append(replace(spec, node=spec.node - base))
            else:
                local.append(spec)  # heal / group-wide delay / drop storms
        return local

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for group in self.groups:
            group.cluster.start()

    def shutdown(self) -> None:
        for group in self.groups:
            group.cluster.shutdown()

    def crash_global(self, node: int) -> None:
        """Crash one node by global id (harness control plane)."""
        group = self.groups[node // self.config.replicas]
        group.cluster.crash_node(node % self.config.replicas)

    def restart_global(self, node: int) -> None:
        group = self.groups[node // self.config.replicas]
        group.cluster.restart_node(node % self.config.replicas)

    def _live_controllers(self):
        out = []
        for group in self.groups:
            leader = group.cluster.leader_node
            if leader is not None and leader.active and leader.db is not None:
                out.append(leader.db.controller)
        return out

    # -- tenant surface ----------------------------------------------------

    def session(self, tenant: str, cid: int) -> ClientSession:
        session = ClientSession(f"{tenant}/{cid}")
        self.sessions.append(session)
        return session

    def shard_of(self, key: bytes) -> int:
        return self.ring.shard_for(key)

    def in_fault_window(self, now: int) -> bool:
        return any(a <= now < b for a, b in self.fault_windows)

    def next_value(self, key: bytes) -> bytes:
        """Globally unique, self-describing write value (audit currency)."""
        self._value_counter += 1
        return b"rv%08d:" % self._value_counter + key

    def _note_resolved(self, began: int) -> None:
        self.ops_resolved += 1
        elapsed = self.engine.now - began
        if elapsed > self.max_elapsed_ns:
            self.max_elapsed_ns = elapsed

    def get(self, session: ClientSession, key: bytes):
        """Generator: resilient read; value bytes, None miss, or typed error."""
        self.ops_started += 1
        began = self.engine.now
        try:
            outcome = yield from self.clients[self.shard_of(key)].read(
                session, key
            )
            return outcome.value
        finally:
            self._note_resolved(began)

    def put(self, session: ClientSession, key: bytes):
        """Generator: audited resilient write; returns the acked seq."""
        shard = self.shard_of(key)
        value = self.next_value(key)
        self._issued.setdefault(key, set()).add(value)
        self.ops_started += 1
        began = self.engine.now
        try:
            seq = yield from self.clients[shard].write(session, key, value)
            self._acked.setdefault(key, []).append((seq, value))
            return seq
        finally:
            self._note_resolved(began)

    def scan(self, session: ClientSession, start: bytes, end: bytes, limit=None):
        """Generator: scatter-gather scan over every group's leader.

        Same deadline/backoff contract as point ops: a group that stays
        leaderless or faulting past the attempt budget raises a typed
        error instead of hanging the scan.
        """
        policy = self.config.policy
        engine = self.engine
        self.ops_started += 1
        began = engine.now
        deadline = began + policy.op_deadline_ns
        try:
            merged: List[Tuple[bytes, object]] = []
            for g, (group, client) in enumerate(zip(self.groups, self.clients)):
                for attempt in range(policy.max_attempts):
                    if engine.now >= deadline:
                        raise DeadlineExceededError(
                            f"scan missed its deadline at group {g}",
                            op="scan",
                            elapsed_ns=engine.now - began,
                        )
                    part = None
                    try:
                        part = yield from group.cluster.scan(start, end, limit=limit)
                    except (IOFaultError, DBError, FileSystemError):
                        part = None  # storm-era leader read: retryable
                    if part is not None:
                        merged.extend(part)
                        break
                    group.rediscover()
                    if attempt + 1 >= policy.max_attempts:
                        raise ShardUnavailableError(
                            f"scan exhausted {policy.max_attempts} attempts "
                            f"on group {g}",
                            shard=g,
                            attempts=policy.max_attempts,
                        )
                    delay = client.backoff_ns(attempt)
                    if engine.now + delay >= deadline:
                        raise DeadlineExceededError(
                            f"scan backoff would cross the deadline at group {g}",
                            op="scan",
                            elapsed_ns=engine.now - began,
                        )
                    yield delay
            merged.sort(key=lambda kv: kv[0])
            if limit is not None:
                merged = merged[:limit]
            return merged
        finally:
            self._note_resolved(began)

    # -- fleet plumbing ----------------------------------------------------

    def build_fleet(
        self, tenants: List[TenantSpec]
    ) -> List[TenantWorkload]:
        if not tenants:
            raise WorkloadError("need at least one tenant")
        workloads = [
            TenantWorkload(i, spec, self.config.seed)
            for i, spec in enumerate(tenants)
        ]
        for wl in workloads:
            peak = 1.0 + wl.spec.diurnal_amplitude
            self.admission.set_budget(
                wl.spec.name,
                TenantBudget(
                    ops_per_sec=wl.spec.aggregate_rate
                    * peak
                    * self.config.admission_headroom,
                    burst=max(4, wl.spec.clients * 4),
                ),
            )
        return workloads

    def prefill(self, workloads: List[TenantWorkload]):
        """Generator: install every tenant's keys through replication.

        Runs before chaos; the writes are audited like any other, so the
        baseline state participates in the no-loss check.
        """
        session = self.session("prefill", 0)
        for wl in workloads:
            for key in wl.all_keys():
                yield from self.put(session, key)

    def spawn_fleet(
        self, workloads: List[TenantWorkload], end: int
    ) -> List[object]:
        procs = []
        for wl in workloads:
            for cid in range(wl.spec.clients):
                procs.append(
                    self.engine.process(
                        wl.resilient_client(self.engine, self, cid, end),
                        name=f"fleet-{wl.spec.name}-{cid}",
                    )
                )
        for proc in procs:
            proc.callbacks.append(lambda _ev: None)
        return procs

    # -- audit -------------------------------------------------------------

    def ryw_violations(self) -> List[str]:
        out: List[str] = []
        for session in self.sessions:
            out.extend(session.ryw_violations)
        return out

    def audited_keys(self) -> List[bytes]:
        return sorted(self._acked)

    def verify_writes(self):
        """Generator: the no-acked-write-loss audit; returns violations.

        For every key with at least one acked write, the final leader
        value must be the highest-acked value or some *other* issued
        value (an indeterminate attempt that landed with a higher
        sequence).  An older acked value — or a value never issued —
        means replication lost or invented an acked write.
        """
        violations: List[str] = []
        for key in self.audited_keys():
            acked = self._acked[key]
            top_seq, top_value = max(acked)
            acked_values = {v for _s, v in acked}
            allowed = {top_value} | (self._issued.get(key, set()) - acked_values)
            group = self.groups[self.shard_of(key)]
            final = yield from group.cluster.get(key)
            if final not in allowed:
                if final is None:
                    got = "miss"
                elif final in acked_values:
                    got = f"stale acked value {final[:12]!r}"
                else:
                    got = f"foreign value {final[:12]!r}"
                violations.append(
                    f"key {key!r}: acked seq {top_seq} not durable ({got})"
                )
        return violations

    # -- reporting ---------------------------------------------------------

    def collect(
        self, workloads: List[TenantWorkload], duration_ns: int
    ) -> ResilientServingResult:
        for wl in workloads:
            wl.stats.duration_ns = duration_ns
        result = ResilientServingResult(
            config_desc=(
                f"{self.config.device} x {self.config.shards} group(s) "
                f"x {self.config.replicas} replicas, seed {self.config.seed}"
            ),
            shards=self.config.shards,
            replicas=self.config.replicas,
            device=self.config.device,
            seed=self.config.seed,
            duration_ns=duration_ns,
            total_users=sum(wl.spec.users for wl in workloads),
            tenant_rows=[wl.stats.row() for wl in workloads],
        )
        for g, group in enumerate(self.groups):
            cluster = group.cluster
            leader = cluster.leader_node
            result.group_rows.append(
                {
                    "group": g,
                    "leader": cluster.leader_id if leader else -1,
                    "term": cluster.term,
                    "failovers": cluster._failovers - 1,
                    "log_len": len(leader.log) if leader else 0,
                }
            )
        totals: Dict[str, int] = {
            "hedges_launched": 0,
            "hedges_won": 0,
            "hedges_cancelled": 0,
            "retries": 0,
            "breaker_trips": 0,
            "breaker_fastfail": 0,
            "deadline_exceeded": 0,
            "rediscoveries": 0,
        }
        for client in self.clients:
            s = client.stats
            totals["hedges_launched"] += s.get("hedges_launched", 0)
            totals["hedges_won"] += s.get("hedges_won", 0)
            totals["hedges_cancelled"] += s.get("hedges_cancelled", 0)
            totals["retries"] += s.get("read_retries", 0) + s.get(
                "write_retries", 0
            )
            totals["breaker_trips"] += client.breaker.trips
            totals["breaker_fastfail"] += s.get("breaker_fastfail", 0)
            totals["deadline_exceeded"] += s.get("deadline_exceeded", 0)
            totals["rediscoveries"] += s.get("rediscoveries", 0)
        result.client_row = dict(totals)
        return result


__all__ = [
    "ResilientServingConfig",
    "ResilientServingResult",
    "ResilientServingStack",
    "ShardGroup",
]
