"""The resilient serving client: deadlines, retries, hedges, breakers.

Between a tenant and a replicated shard group sits this policy layer.
Its contract is the one the serving DST proves end to end — **every op
resolves by its deadline or raises a typed** :class:`~repro.errors.ServingError`
— and its mechanisms are the classic client-side resilience kit, all
deterministic in virtual time:

* **per-op deadlines** — an op never sleeps past its deadline: remaining
  time bounds every wait, and a backoff that would overshoot raises
  :class:`~repro.errors.DeadlineExceededError` instead of sleeping;
* **exponential backoff with seeded jitter** — retry delays double from
  ``base_backoff_ns`` up to ``max_backoff_ns``, jittered from the
  client's named RNG substream, so two clients retrying the same dead
  shard desynchronize yet every run replays bit-identically per seed;
* **hedged reads** — a read that is quiet for ``hedge_delay_ns`` launches
  a second attempt on the most-caught-up *other* replica; the first
  arm to finish wins and the loser is cancelled (abandoned to complete
  harmlessly in virtual time, its result discarded);
* **read-your-writes sessions** — a :class:`ClientSession` tracks the
  last acked write sequence per shard, and hedge targets are filtered to
  replicas whose applied sequence has caught up to that floor, so a
  follower read can never travel back before the session's own writes;
* **leader re-discovery** — a write that finds no leader pokes the
  group's control plane (``rediscover``) before counting the attempt as
  failed, so clients ride through elections instead of erroring out;
* **retry-storm suppression** — a per-shard :class:`ShardBreaker`
  (sliding-window circuit breaker with a half-open probe) fast-fails
  ops against a hard-down shard with :class:`~repro.errors.ShedError`
  rather than piling retries onto it.

The group is duck-typed (see :class:`ShardClient`), so the policy is
testable in isolation against scripted fakes — which is exactly what
``tests/serving/test_client_policy.py`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

from repro.errors import (
    DeadlineExceededError,
    ShardUnavailableError,
    ShedError,
    WorkloadError,
)
from repro.sim.rng import RandomStream
from repro.sim.units import ms, us


def _null(_ev) -> None:
    return None


@dataclass(frozen=True)
class ClientPolicy:
    """Knobs of the per-op resilience policy (virtual-time ns)."""

    op_deadline_ns: int = ms(40)
    max_attempts: int = 5
    base_backoff_ns: int = us(200)
    max_backoff_ns: int = ms(8)
    backoff_jitter: float = 0.5
    #: Silence before a read hedges to a caught-up follower; hedging off
    #: when ``hedge_reads`` is False.
    hedge_delay_ns: int = ms(2)
    hedge_reads: bool = True
    # Circuit breaker: >= failure_threshold failures inside window_ns
    # opens the breaker for cooloff_ns; then one half-open probe decides.
    breaker_window_ns: int = ms(20)
    breaker_failure_threshold: int = 8
    breaker_cooloff_ns: int = ms(10)

    def __post_init__(self) -> None:
        if self.op_deadline_ns <= 0 or self.max_attempts < 1:
            raise WorkloadError("deadline and attempts must be positive")
        if self.base_backoff_ns <= 0 or self.max_backoff_ns < self.base_backoff_ns:
            raise WorkloadError("backoff bounds must satisfy 0 < base <= max")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise WorkloadError("backoff jitter must be in [0, 1)")
        if self.hedge_delay_ns <= 0:
            raise WorkloadError("hedge delay must be positive")
        if self.breaker_failure_threshold < 1 or self.breaker_window_ns <= 0:
            raise WorkloadError("breaker threshold/window must be positive")
        if self.breaker_cooloff_ns <= 0:
            raise WorkloadError("breaker cooloff must be positive")


class ShardBreaker:
    """Sliding-window circuit breaker over virtual time.

    Closed: ops flow, failures accumulate in a ``window_ns`` sliding
    window.  Reaching ``failure_threshold`` opens the breaker: ops
    fast-fail for ``cooloff_ns``.  After the cooloff one probe op is let
    through (half-open); its success closes the breaker, its failure
    re-opens it for another cooloff.  Entirely deterministic — state
    changes only on ``allow``/``on_success``/``on_failure`` calls.
    """

    def __init__(self, policy: ClientPolicy) -> None:
        self.policy = policy
        self._failures: List[int] = []
        self._open_until = -1
        self._probe_inflight = False
        self.trips = 0
        self.fast_fails = 0

    @property
    def open(self) -> bool:
        return self._open_until >= 0

    def allow(self, now: int) -> bool:
        """May an op proceed at ``now``?  (Counts a fast-fail when not.)"""
        if not self.open:
            return True
        if now < self._open_until or self._probe_inflight:
            self.fast_fails += 1
            return False
        self._probe_inflight = True  # half-open: exactly one probe
        return True

    def on_success(self, now: int) -> None:
        self._failures.clear()
        self._open_until = -1
        self._probe_inflight = False

    def on_failure(self, now: int) -> None:
        if self.open:
            # The half-open probe failed: re-open for another cooloff.
            self._open_until = now + self.policy.breaker_cooloff_ns
            self._probe_inflight = False
            return
        cutoff = now - self.policy.breaker_window_ns
        self._failures = [t for t in self._failures if t > cutoff]
        self._failures.append(now)
        if len(self._failures) >= self.policy.breaker_failure_threshold:
            self._open_until = now + self.policy.breaker_cooloff_ns
            self._probe_inflight = False
            self._failures.clear()
            self.trips += 1


class ClientSession:
    """One tenant session: the read-your-writes floor per shard."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._floors: Dict[int, int] = {}
        self.ryw_violations: List[str] = []

    def seq_floor(self, shard: int) -> int:
        return self._floors.get(shard, 0)

    def observe_write(self, shard: int, seq: int) -> None:
        if seq > self._floors.get(shard, 0):
            self._floors[shard] = seq

    def check_read(self, shard: int, applied_seq: int, now: int) -> None:
        floor = self.seq_floor(shard)
        if applied_seq < floor:
            self.ryw_violations.append(
                f"t={now} session {self.name} shard {shard}: read at "
                f"applied_seq {applied_seq} below write floor {floor}"
            )


class ReadOutcome(NamedTuple):
    """What one resilient read resolved to (value may be a miss)."""

    value: Optional[bytes]
    node_id: int
    applied_seq: int
    hedged: bool  # True when the hedge arm won


_FAILED = object()  # attempt sentinel: this arm produced no result


class ShardClient:
    """Deadline/retry/hedge policy against one replicated shard group.

    ``group`` is duck-typed; the resilient stack passes the real
    :class:`~repro.cluster.replication.Cluster` behind an adapter, tests
    pass scripted fakes.  Required surface::

        group.leader_id            -> Optional[int]
        group.replica_ids()        -> Sequence[int]
        group.applied_seq(node)    -> int            (non-blocking)
        group.read(node, key)      -> generator -> Optional[(value, seq)]
        group.write(key, value)    -> generator -> (acked: bool, seq: int)
        group.rediscover()         -> Optional[int]  (ask for an election)

    One ShardClient is shared by every session talking to the shard, so
    its breaker aggregates failures fleet-wide — the point of retry-storm
    suppression is that *everyone* backs off a hard-down shard.
    """

    def __init__(
        self,
        engine,
        shard_id: int,
        group,
        policy: Optional[ClientPolicy] = None,
        rng: Optional[RandomStream] = None,
    ) -> None:
        self.engine = engine
        self.shard_id = shard_id
        self.group = group
        self.policy = policy or ClientPolicy()
        self.rng = (rng or RandomStream(0, "client")).fork("backoff")
        self.breaker = ShardBreaker(self.policy)
        self.stats: Dict[str, int] = {}

    def _inc(self, key: str, n: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + n

    # -- shared machinery --------------------------------------------------

    def backoff_ns(self, attempt: int) -> int:
        """Jittered exponential backoff for retry number ``attempt`` (0-based)."""
        base = min(
            self.policy.max_backoff_ns,
            self.policy.base_backoff_ns * (1 << attempt),
        )
        return max(1, round(self.rng.jittered(base, self.policy.backoff_jitter)))

    def _spawn(self, gen, name: str):
        proc = self.engine.process(gen, name=name)
        proc.callbacks.append(_null)
        return proc

    def _wait(self, procs, timeout_ns: int):
        """Generator: until some proc settles (even by raising) or timeout."""
        engine = self.engine
        deadline = engine.now + max(0, timeout_ns)
        while engine.now < deadline and not any(p.done for p in procs):
            try:
                yield engine.any_of(
                    list(procs) + [engine.timeout(deadline - engine.now)]
                )
            except Exception:
                pass  # a failed arm settles it; the loop re-checks .done

    def _shed(self, op: str) -> ShedError:
        self._inc("breaker_fastfail")
        return ShedError(
            f"shard {self.shard_id} breaker open ({op})",
            reason="breaker",
            shard=self.shard_id,
        )

    def _deadline_error(self, op: str, start: int) -> DeadlineExceededError:
        self._inc("deadline_exceeded")
        return DeadlineExceededError(
            f"{op} on shard {self.shard_id} missed its deadline",
            op=op,
            elapsed_ns=self.engine.now - start,
        )

    # -- reads -------------------------------------------------------------

    def _caught_up(self, floor: int, exclude: Optional[int] = None) -> List[int]:
        """Replicas whose applied seq has reached the session floor."""
        out = []
        for node_id in self.group.replica_ids():
            if node_id == exclude:
                continue
            if self.group.applied_seq(node_id) >= floor:
                out.append(node_id)
        return out

    def _arm_result(self, session: ClientSession, proc, node_id: int, hedged: bool):
        if proc.exception is not None or proc.value is None:
            return _FAILED
        value, applied = proc.value
        session.check_read(self.shard_id, applied, self.engine.now)
        return ReadOutcome(value, node_id, applied, hedged)

    def _read_attempt(self, session: ClientSession, key: bytes, deadline: int):
        """Generator: one (possibly hedged) read attempt; ReadOutcome or _FAILED."""
        engine = self.engine
        floor = session.seq_floor(self.shard_id)
        primary = self.group.leader_id
        if primary is None:
            # Mid-election: degrade the read to any caught-up replica.
            candidates = self._caught_up(floor)
            if not candidates:
                return _FAILED
            primary = candidates[0]
        pproc = self._spawn(
            self.group.read(primary, key), f"read-s{self.shard_id}-n{primary}"
        )
        first_wait = min(self.policy.hedge_delay_ns, deadline - engine.now)
        yield from self._wait([pproc], first_wait)
        if pproc.done:
            return self._arm_result(session, pproc, primary, hedged=False)
        hedge_id: Optional[int] = None
        if self.policy.hedge_reads:
            peers = self._caught_up(floor, exclude=primary)
            if peers:
                # Most-caught-up peer; ties go to the lowest node id.
                hedge_id = max(peers, key=lambda n: (self.group.applied_seq(n), -n))
        if hedge_id is None:
            yield from self._wait([pproc], deadline - engine.now)
            if pproc.done:
                return self._arm_result(session, pproc, primary, hedged=False)
            return _FAILED
        self._inc("hedges_launched")
        hproc = self._spawn(
            self.group.read(hedge_id, key), f"hedge-s{self.shard_id}-n{hedge_id}"
        )
        yield from self._wait([pproc, hproc], deadline - engine.now)
        if pproc.done:
            result = self._arm_result(session, pproc, primary, hedged=False)
            if result is not _FAILED:
                if not hproc.done:
                    self._inc("hedges_cancelled")  # loser abandoned mid-flight
                return result
        if hproc.done:
            result = self._arm_result(session, hproc, hedge_id, hedged=True)
            if result is not _FAILED:
                self._inc("hedges_won")
                if not pproc.done:
                    self._inc("hedges_cancelled")
                return result
        return _FAILED

    def read(self, session: ClientSession, key: bytes):
        """Generator: resilient read; :class:`ReadOutcome` or typed error."""
        engine = self.engine
        start = engine.now
        deadline = start + self.policy.op_deadline_ns
        for attempt in range(self.policy.max_attempts):
            now = engine.now
            if now >= deadline:
                self.breaker.on_failure(now)
                raise self._deadline_error("get", start)
            if not self.breaker.allow(now):
                raise self._shed("get")
            result = yield from self._read_attempt(session, key, deadline)
            if result is not _FAILED:
                self.breaker.on_success(engine.now)
                return result
            self.breaker.on_failure(engine.now)
            if engine.now >= deadline:
                raise self._deadline_error("get", start)
            if attempt + 1 < self.policy.max_attempts:
                self._inc("read_retries")
                delay = self.backoff_ns(attempt)
                if engine.now + delay >= deadline:
                    raise self._deadline_error("get", start)
                yield delay
        self._inc("unavailable")
        raise ShardUnavailableError(
            f"get on shard {self.shard_id} exhausted "
            f"{self.policy.max_attempts} attempts",
            shard=self.shard_id,
            attempts=self.policy.max_attempts,
        )

    # -- writes ------------------------------------------------------------

    def write(self, session: ClientSession, key: bytes, value):
        """Generator: resilient write; returns the acked seq or raises.

        Retries re-send the *same* value, so an indeterminate earlier
        attempt that did land is idempotent (same key, same bytes) and
        the no-acked-write-loss audit stays value-based.
        """
        engine = self.engine
        start = engine.now
        deadline = start + self.policy.op_deadline_ns
        for attempt in range(self.policy.max_attempts):
            now = engine.now
            if now >= deadline:
                self.breaker.on_failure(now)
                raise self._deadline_error("put", start)
            if not self.breaker.allow(now):
                raise self._shed("put")
            if self.group.leader_id is None:
                self._inc("rediscoveries")
                self.group.rediscover()
            acked = False
            seq = 0
            if self.group.leader_id is not None:
                proc = self._spawn(
                    self.group.write(key, value), f"write-s{self.shard_id}"
                )
                yield from self._wait([proc], deadline - engine.now)
                if not proc.done:
                    # Still in flight at the deadline: indeterminate — the
                    # abandoned attempt may yet land, which retry-with-
                    # same-value keeps harmless.
                    self.breaker.on_failure(engine.now)
                    self._inc("indeterminate")
                    raise self._deadline_error("put", start)
                if proc.exception is None and proc.value is not None:
                    acked, seq = proc.value
            if acked:
                self.breaker.on_success(engine.now)
                session.observe_write(self.shard_id, seq)
                return seq
            self.breaker.on_failure(engine.now)
            if attempt + 1 < self.policy.max_attempts:
                self._inc("write_retries")
                delay = self.backoff_ns(attempt)
                if engine.now + delay >= deadline:
                    raise self._deadline_error("put", start)
                yield delay
        self._inc("unavailable")
        raise ShardUnavailableError(
            f"put on shard {self.shard_id} exhausted "
            f"{self.policy.max_attempts} attempts",
            shard=self.shard_id,
            attempts=self.policy.max_attempts,
        )


__all__ = [
    "ClientPolicy",
    "ClientSession",
    "ReadOutcome",
    "ShardBreaker",
    "ShardClient",
]
