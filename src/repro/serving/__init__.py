"""Multi-tenant serving layer: sharded DBs, shared budgets, a client fleet.

The paper measures one RocksDB instance; production RocksDB serves many
tenants over many shards on the same device.  This package promotes the
``ablation-wq`` finding (sharded write queues relieve the Fig. 15/16
contention) into an architecture:

* :class:`~repro.serving.stack.ServingStack` — N shard DBs behind
  consistent-hash routing (:class:`~repro.serving.router.HashRing`), all
  sharing one device, one :class:`~repro.lsm.block_cache.BlockCache` and
  one :class:`~repro.lsm.write_buffer_manager.WriteBufferManager` budget;
* :class:`~repro.serving.admission.AdmissionController` — per-tenant token
  buckets scaled by the shards' Algorithm-1 stall states;
* :mod:`~repro.serving.fleet` — the tenant fleet generator (Zipfian hot
  keys with migration, diurnal curves, per-tenant SLO accounting);
* :mod:`~repro.serving.sweep` — ``--jobs``-parallel tenant-scale sweeps,
  bit-identical across job counts;
* ``python -m repro.serving`` — the CLI entry point.
"""

from repro.serving.admission import AdmissionController, TenantBudget, TokenBucket
from repro.serving.fleet import (
    TenantSpec,
    TenantStats,
    TenantWorkload,
    default_tenants,
    tenant_key,
)
from repro.serving.router import HashRing
from repro.serving.shardfs import ShardFsView
from repro.serving.stack import ServingConfig, ServingResult, ServingStack
from repro.serving.sweep import (
    ServingPoint,
    SweepReport,
    run_serving_point,
    run_sweep,
)

__all__ = [
    "AdmissionController",
    "HashRing",
    "ServingConfig",
    "ServingPoint",
    "ServingResult",
    "ServingStack",
    "ShardFsView",
    "SweepReport",
    "TenantBudget",
    "TenantSpec",
    "TenantStats",
    "TenantWorkload",
    "TokenBucket",
    "default_tenants",
    "run_serving_point",
    "run_sweep",
    "tenant_key",
]
