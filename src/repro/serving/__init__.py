"""Multi-tenant serving layer: sharded DBs, shared budgets, a client fleet.

The paper measures one RocksDB instance; production RocksDB serves many
tenants over many shards on the same device.  This package promotes the
``ablation-wq`` finding (sharded write queues relieve the Fig. 15/16
contention) into an architecture:

* :class:`~repro.serving.stack.ServingStack` — N shard DBs behind
  consistent-hash routing (:class:`~repro.serving.router.HashRing`), all
  sharing one device, one :class:`~repro.lsm.block_cache.BlockCache` and
  one :class:`~repro.lsm.write_buffer_manager.WriteBufferManager` budget;
* :class:`~repro.serving.admission.AdmissionController` — per-tenant token
  buckets scaled by the shards' Algorithm-1 stall states;
* :mod:`~repro.serving.fleet` — the tenant fleet generator (Zipfian hot
  keys with migration, diurnal curves, per-tenant SLO accounting);
* :mod:`~repro.serving.sweep` — ``--jobs``-parallel tenant-scale sweeps,
  bit-identical across job counts;
* :mod:`~repro.serving.resilient` — the replicated tier: every shard is a
  :class:`~repro.cluster.Cluster` group behind a retrying/hedging
  :class:`~repro.serving.client.ShardClient` with
  :class:`~repro.serving.admission.BrownoutAdmission` degradation
  (chaos-tested by ``python -m repro.dst --serving``);
* ``python -m repro.serving`` — the CLI entry point (``--resilient`` runs
  the replicated tier).
"""

from repro.serving.admission import (
    AdmissionController,
    BrownoutAdmission,
    ErrorBudget,
    ErrorBudgetSpec,
    TenantBudget,
    TokenBucket,
)
from repro.serving.client import (
    ClientPolicy,
    ClientSession,
    ReadOutcome,
    ShardBreaker,
    ShardClient,
)
from repro.serving.fleet import (
    TenantSpec,
    TenantStats,
    TenantWorkload,
    default_tenants,
    tenant_key,
)
from repro.serving.resilient import (
    ResilientServingConfig,
    ResilientServingResult,
    ResilientServingStack,
    ShardGroup,
)
from repro.serving.router import HashRing
from repro.serving.shardfs import ShardFsView
from repro.serving.stack import ServingConfig, ServingResult, ServingStack
from repro.serving.sweep import (
    ServingPoint,
    SweepReport,
    run_serving_point,
    run_sweep,
)

__all__ = [
    "AdmissionController",
    "BrownoutAdmission",
    "ClientPolicy",
    "ClientSession",
    "ErrorBudget",
    "ErrorBudgetSpec",
    "HashRing",
    "ReadOutcome",
    "ResilientServingConfig",
    "ResilientServingResult",
    "ResilientServingStack",
    "ServingConfig",
    "ServingPoint",
    "ServingResult",
    "ServingStack",
    "ShardBreaker",
    "ShardClient",
    "ShardFsView",
    "ShardGroup",
    "SweepReport",
    "TenantBudget",
    "TenantSpec",
    "TenantStats",
    "TenantWorkload",
    "TokenBucket",
    "default_tenants",
    "run_serving_point",
    "run_sweep",
    "tenant_key",
]
