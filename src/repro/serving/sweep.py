"""Tenant-scale sweeps fanned across cores (``--jobs``).

A serving sweep point — (device, shard count, fleet shape, seed) — builds
its own engine, machine and RNG universe from scratch, exactly like the
harness figure sweeps, so points are embarrassingly parallel.  Points are
plain picklable dataclasses, the worker is a module-level callable, and
results merge in point order: :func:`repro.perf.parallel.map_points`
therefore guarantees ``--jobs N`` output is bit-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.perf.parallel import map_points
from repro.serving.fleet import default_tenants
from repro.serving.stack import ServingConfig, ServingResult, ServingStack
from repro.sim.units import mb, seconds


@dataclass(frozen=True)
class ServingPoint:
    """One independent serving sweep point — picklable."""

    device: str = "xpoint"
    shards: int = 2
    tenants: int = 2
    users_per_tenant: int = 250_000
    key_count: int = 2_000
    clients: int = 2
    duration_s: float = 0.5
    seed: int = 1
    block_cache_mb: float = 1.0
    write_buffer_mb: float = 4.0
    page_cache_mb: float = 8.0


def run_serving_point(point: ServingPoint) -> ServingResult:
    """Execute one sweep point (runs inside a worker under ``--jobs``)."""
    config = ServingConfig(
        shards=point.shards,
        device=point.device,
        seed=point.seed,
        page_cache_bytes=mb(point.page_cache_mb),
        block_cache_bytes=mb(point.block_cache_mb),
        write_buffer_budget=mb(point.write_buffer_mb),
    )
    stack = ServingStack(config)
    tenants = default_tenants(
        point.tenants,
        users_per_tenant=point.users_per_tenant,
        key_count=point.key_count,
        clients=point.clients,
    )
    return stack.run_fleet(tenants, duration_ns=seconds(point.duration_s))


@dataclass
class SweepReport:
    """Results of a multi-point serving sweep, in point order."""

    points: List[ServingPoint]
    results: List[ServingResult] = field(default_factory=list)

    def scaling_table(self) -> str:
        """Shard-scaling digest: per-device aggregate kops and worst p99."""
        lines = ["shard scaling (aggregate kops | worst tenant p99):"]
        by_device: Dict[str, List[ServingResult]] = {}
        for result in self.results:
            by_device.setdefault(result.device, []).append(result)
        for device in sorted(by_device):
            for result in by_device[device]:
                worst = max(
                    (float(r["p99_us"]) for r in result.tenant_rows),
                    default=0.0,
                )
                slo_met = sum(
                    1
                    for r in result.tenant_rows
                    if float(r["p99_us"]) <= float(r["slo_p99_us"])
                )
                lines.append(
                    f"  {device} x{result.shards} shard(s): "
                    f"{result.kops:.2f} kops | worst p99 {worst:.1f}us | "
                    f"SLO {slo_met}/{len(result.tenant_rows)}"
                )
        return "\n".join(lines)


def run_sweep(points: List[ServingPoint], jobs: int = 1) -> SweepReport:
    """Run every point (fanning across ``jobs`` workers) in point order."""
    results = map_points(run_serving_point, points, jobs=jobs)
    return SweepReport(points=points, results=results)
