"""CLI: run a multi-tenant serving experiment.

Usage::

    python -m repro.serving                          # 2 shards, 2 tenants
    python -m repro.serving --shards 4 --tenants 8
    python -m repro.serving --shard-sweep 1,2,4 --jobs 4
    python -m repro.serving --device sata-flash --duration 1.0

Every invocation prints, per sweep point, the per-tenant SLO digest
(through :func:`repro.obs.tenant_slo_digest`), per-shard engine counters
and the shared cache / write-buffer budget report, followed by a
shard-scaling table when more than one point ran.  Output is bit-identical
for any ``--jobs`` value.
"""

from __future__ import annotations

import argparse

from repro.perf.parallel import default_jobs
from repro.serving.sweep import ServingPoint, run_sweep
from repro.storage.profiles import PROFILES


def _parse_sweep(raw: str) -> list:
    try:
        values = [int(v) for v in raw.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad sweep list: {raw!r}") from None
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(f"bad sweep list: {raw!r}")
    return values


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Multi-tenant serving experiment: N shards, shared "
        "cache + write-buffer budgets, admission control, tenant fleet",
    )
    parser.add_argument(
        "--device",
        default="xpoint",
        choices=sorted(k for k in PROFILES if k not in ("null", "nvm")),
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--shard-sweep",
        type=_parse_sweep,
        default=None,
        metavar="N,N,...",
        help="run one point per shard count (overrides --shards)",
    )
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument(
        "--users",
        type=int,
        default=250_000,
        help="simulated users per tenant (drives the arrival rate)",
    )
    parser.add_argument("--keys", type=int, default=2_000)
    parser.add_argument("--clients", type=int, default=2)
    parser.add_argument("--duration", type=float, default=0.5, metavar="SECONDS")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cache-mb", type=float, default=1.0)
    parser.add_argument("--write-buffer-mb", type=float, default=4.0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=default_jobs(),
        metavar="N",
        help="worker processes for sweep points (default: $REPRO_JOBS or 1); "
        "any value produces bit-identical output",
    )
    args = parser.parse_args(argv)
    if args.shards < 1 or args.tenants < 1:
        parser.error("--shards and --tenants must be >= 1")

    shard_counts = args.shard_sweep or [args.shards]
    points = [
        ServingPoint(
            device=args.device,
            shards=shards,
            tenants=args.tenants,
            users_per_tenant=args.users,
            key_count=args.keys,
            clients=args.clients,
            duration_s=args.duration,
            seed=args.seed,
            block_cache_mb=args.cache_mb,
            write_buffer_mb=args.write_buffer_mb,
        )
        for shards in shard_counts
    ]
    report = run_sweep(points, jobs=args.jobs)
    for result in report.results:
        print(result.render())
        print()
    if len(report.results) > 1:
        print(report.scaling_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
