"""CLI: run a multi-tenant serving experiment.

Usage::

    python -m repro.serving                          # 2 shards, 2 tenants
    python -m repro.serving --shards 4 --tenants 8
    python -m repro.serving --shard-sweep 1,2,4 --jobs 4
    python -m repro.serving --device sata-flash --duration 1.0
    python -m repro.serving --resilient --replicas 3   # replicated tier

Every invocation prints, per sweep point, the per-tenant SLO digest
(through :func:`repro.obs.tenant_slo_digest`), per-shard engine counters
and the shared cache / write-buffer budget report, followed by a
shard-scaling table when more than one point ran.  Output is bit-identical
for any ``--jobs`` value.

``--resilient`` runs the replicated tier instead: each shard is a
leader/follower :class:`~repro.cluster.Cluster` group served through the
retrying/hedging client layer, and the report adds client-layer counters
(retries, hedges, sheds, deadline misses).  Fault injection for that tier
lives in ``python -m repro.dst --serving``; this entry point runs it
fault-free as a steady-state reference.
"""

from __future__ import annotations

import argparse

from repro.perf.parallel import default_jobs
from repro.serving.sweep import ServingPoint, run_sweep
from repro.storage.profiles import PROFILES


def _run_resilient(args) -> int:
    from repro.serving.fleet import default_tenants
    from repro.serving.resilient import (
        ResilientServingConfig,
        ResilientServingStack,
    )

    cfg = ResilientServingConfig(
        shards=args.shards,
        replicas=args.replicas,
        device=args.device,
        seed=args.seed,
    )
    stack = ResilientServingStack(cfg)
    stack.start()
    tenants = default_tenants(
        args.tenants,
        users_per_tenant=args.users,
        key_count=args.keys,
        clients=args.clients,
    )
    workloads = stack.build_fleet(tenants)
    prefill = stack.engine.process(stack.prefill(workloads), name="prefill")
    prefill.callbacks.append(lambda _ev: None)
    while not prefill.done:
        nxt = stack.engine.peek()
        if nxt is None:
            raise RuntimeError("prefill deadlocked")
        stack.engine.run(until=nxt)
    if prefill.exception is not None:
        raise prefill.exception
    duration_ns = int(args.duration * 1e9)
    end = stack.engine.now + duration_ns
    procs = stack.spawn_fleet(workloads, end)
    while not all(p.done for p in procs):
        nxt = stack.engine.peek()
        if nxt is None:
            raise RuntimeError("fleet deadlocked")
        stack.engine.run(until=nxt)
    for proc in procs:
        if proc.exception is not None:
            raise proc.exception
    result = stack.collect(workloads, duration_ns)
    stack.shutdown()
    print(result.render())
    return 0


def _parse_sweep(raw: str) -> list:
    try:
        values = [int(v) for v in raw.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad sweep list: {raw!r}") from None
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(f"bad sweep list: {raw!r}")
    return values


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Multi-tenant serving experiment: N shards, shared "
        "cache + write-buffer budgets, admission control, tenant fleet",
    )
    parser.add_argument(
        "--device",
        default="xpoint",
        choices=sorted(k for k in PROFILES if k not in ("null", "nvm")),
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--resilient",
        action="store_true",
        help="run the replicated tier (shard groups behind the "
        "retry/hedge client layer) instead of the single-node stack",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=3,
        help="replicas per shard group (only with --resilient)",
    )
    parser.add_argument(
        "--shard-sweep",
        type=_parse_sweep,
        default=None,
        metavar="N,N,...",
        help="run one point per shard count (overrides --shards)",
    )
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument(
        "--users",
        type=int,
        default=250_000,
        help="simulated users per tenant (drives the arrival rate)",
    )
    parser.add_argument("--keys", type=int, default=2_000)
    parser.add_argument("--clients", type=int, default=2)
    parser.add_argument("--duration", type=float, default=0.5, metavar="SECONDS")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cache-mb", type=float, default=1.0)
    parser.add_argument("--write-buffer-mb", type=float, default=4.0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=default_jobs(),
        metavar="N",
        help="worker processes for sweep points (default: $REPRO_JOBS or 1); "
        "any value produces bit-identical output",
    )
    args = parser.parse_args(argv)
    if args.shards < 1 or args.tenants < 1:
        parser.error("--shards and --tenants must be >= 1")
    if args.resilient:
        if args.shard_sweep:
            parser.error("--resilient runs a single point, not --shard-sweep")
        return _run_resilient(args)

    shard_counts = args.shard_sweep or [args.shards]
    points = [
        ServingPoint(
            device=args.device,
            shards=shards,
            tenants=args.tenants,
            users_per_tenant=args.users,
            key_count=args.keys,
            clients=args.clients,
            duration_s=args.duration,
            seed=args.seed,
            block_cache_mb=args.cache_mb,
            write_buffer_mb=args.write_buffer_mb,
        )
        for shards in shard_counts
    ]
    report = run_sweep(points, jobs=args.jobs)
    for result in report.results:
        print(result.render())
        print()
    if len(report.results) > 1:
        print(report.scaling_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
