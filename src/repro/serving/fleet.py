"""Client-fleet generator: millions of simulated users across tenants.

One tenant = one "application" renting space in the serving tier: its own
key space (a column-family-style prefix), operation mix, request
distribution, SLO target and provisioned admission rate.  The fleet scales
by *users*, not by simulated processes: each tenant's closed-loop clients
aggregate ``users / clients`` users apiece, with open-loop think times
drawn so the tenant's aggregate arrival rate is ``users x
ops_per_user_per_sec`` — a million-user tenant is as cheap to simulate as
its op rate, not its population.

Realism knobs the paper-scale workloads lack, all deterministic in
virtual time:

* **Zipfian hot keys with migration** — request ranks come from the YCSB
  :class:`~repro.workloads.ycsb.ZipfianGenerator` (or Latest/uniform), and
  the mapping of rank -> key rotates every ``hot_migration_period_ns`` by
  ``hot_migration_stride`` keys, modeling trending content: the hot set
  moves, dragging cache and compaction behaviour with it;
* **diurnal load** — each tenant's arrival rate is modulated by a sinusoid
  (period, amplitude, per-tenant phase), so tenants peak at different
  simulated hours and the device sees the composite curve;
* **per-tenant SLO accounting** — every op's latency is checked against
  the tenant's SLO threshold; violation fractions and achieved percentiles
  feed the :func:`repro.obs.tenant_slo_digest`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ServingError, ShedError, WorkloadError
from repro.sim.rng import RandomStream
from repro.sim.stats import LatencyHistogram
from repro.sim.units import SEC, ms, seconds
from repro.workloads.generators import ValueSpec, encode_key
from repro.workloads.ycsb import (
    OP_INSERT,
    OP_READ,
    OP_RMW,
    OP_SCAN,
    OP_UPDATE,
    LatestGenerator,
    YcsbSpec,
    ZipfianGenerator,
)

#: Width of the column-family prefix: "cf07/" + 16-byte db_bench key.
CF_PREFIX = b"cf%02d/"


def tenant_key(tenant_index: int, key_index: int) -> bytes:
    """Column-family-prefixed key: tenants share shards, not key spaces."""
    return (CF_PREFIX % tenant_index) + encode_key(key_index)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload contract."""

    name: str
    users: int = 10_000
    key_count: int = 2_000
    value_size: int = 256
    clients: int = 2
    mix: YcsbSpec = field(
        default_factory=lambda: YcsbSpec("A", read=0.5, update=0.5)
    )
    zipf_theta: float = 0.99
    #: Aggregate arrival rate = users * ops_per_user_per_sec (ops/second).
    ops_per_user_per_sec: float = 0.05
    #: SLO: overall p99 latency target, ns.
    slo_p99_ns: int = ms(50)
    # Diurnal curve: rate multiplier 1 + amplitude * sin(2pi (t/period+phase)).
    diurnal_period_ns: int = seconds(4.0)
    diurnal_amplitude: float = 0.0
    diurnal_phase: float = 0.0
    # Hot-key migration: every period, the rank->key mapping rotates by
    # stride keys (0 disables).
    hot_migration_period_ns: int = 0
    hot_migration_stride: int = 0

    def __post_init__(self) -> None:
        if self.users < 1 or self.key_count < 1 or self.clients < 1:
            raise WorkloadError(
                f"tenant {self.name}: users/keys/clients must be positive"
            )
        if self.ops_per_user_per_sec <= 0:
            raise WorkloadError(f"tenant {self.name}: per-user rate must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise WorkloadError(
                f"tenant {self.name}: diurnal amplitude must be in [0, 1)"
            )
        if self.hot_migration_period_ns < 0 or self.hot_migration_stride < 0:
            raise WorkloadError(f"tenant {self.name}: migration params must be >= 0")

    @property
    def aggregate_rate(self) -> float:
        """Tenant-wide arrival rate at diurnal midpoint (ops/second)."""
        return self.users * self.ops_per_user_per_sec

    def rate_multiplier(self, now: int) -> float:
        """Diurnal load multiplier at virtual time ``now``."""
        if self.diurnal_amplitude == 0.0:
            return 1.0
        angle = 2.0 * math.pi * (
            now / self.diurnal_period_ns + self.diurnal_phase
        )
        return 1.0 + self.diurnal_amplitude * math.sin(angle)


@dataclass
class TenantStats:
    """Measurements of one tenant over one serving run."""

    spec: TenantSpec
    ops: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    read_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    write_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    slo_violations: int = 0
    throttled_ops: int = 0
    throttle_ns: int = 0
    duration_ns: int = 0
    # Resilient-serving accounting (all zero on the zero-fault path).
    shed_ops: int = 0
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    error_ops: int = 0
    error_kinds: Dict[str, int] = field(default_factory=dict)
    fault_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    steady_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    fault_ops: int = 0

    def record(self, op: str, latency_ns: int, in_fault_window: bool = False) -> None:
        self.ops += 1
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        self.latency.record(latency_ns)
        if in_fault_window:
            self.fault_ops += 1
            self.fault_latency.record(latency_ns)
        else:
            self.steady_latency.record(latency_ns)
        if op == OP_READ or op == OP_SCAN:
            self.read_latency.record(latency_ns)
        else:
            self.write_latency.record(latency_ns)
        if latency_ns > self.spec.slo_p99_ns:
            self.slo_violations += 1

    def record_shed(self, reason: str) -> None:
        """An op shed before reaching storage (brownout / budget / breaker)."""
        self.shed_ops += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1

    def record_error(self, kind: str) -> None:
        """An op that resolved as a typed serving error within its deadline."""
        self.error_ops += 1
        self.error_kinds[kind] = self.error_kinds.get(kind, 0) + 1

    @property
    def kops(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.ops * SEC / self.duration_ns / 1e3

    def row(self) -> Dict[str, object]:
        """One digest row (plain values: crosses process boundaries)."""
        ops = max(1, self.ops)
        return {
            "tenant": self.spec.name,
            "users": self.spec.users,
            "ops": self.ops,
            "kops": round(self.kops, 2),
            "p50_us": round(self.latency.percentile(50) / 1e3, 1),
            "p99_us": round(self.latency.percentile(99) / 1e3, 1),
            "slo_p99_us": round(self.spec.slo_p99_ns / 1e3, 1),
            "slo_violation_frac": round(self.slo_violations / ops, 4),
            "throttled_frac": round(self.throttled_ops / ops, 4),
            # Zero on the zero-fault path; the digest only prints them
            # when nonzero, keeping legacy output byte-identical.
            "shed": self.shed_ops,
            "errors": self.error_ops,
            "fault_ops": self.fault_ops,
            "fault_p99_us": round(self.fault_latency.percentile(99) / 1e3, 1),
            "steady_p99_us": round(self.steady_latency.percentile(99) / 1e3, 1),
        }


class TenantWorkload:
    """Drives one tenant's clients against a serving stack."""

    def __init__(self, index: int, spec: TenantSpec, seed: int) -> None:
        self.index = index
        self.spec = spec
        self.seed = seed
        self.stats = TenantStats(spec)
        self._next_insert = spec.key_count
        if spec.mix.distribution == "latest":
            self._chooser: Optional[object] = LatestGenerator(
                spec.key_count, spec.zipf_theta
            )
        elif spec.mix.distribution == "zipfian":
            self._chooser = ZipfianGenerator(spec.key_count, spec.zipf_theta)
        else:
            self._chooser = None  # uniform

    # -- key selection -------------------------------------------------------

    def _migration_offset(self, now: int) -> int:
        period = self.spec.hot_migration_period_ns
        if period <= 0 or self.spec.hot_migration_stride <= 0:
            return 0
        return (now // period) * self.spec.hot_migration_stride

    def pick_index(self, rng: RandomStream, now: int) -> int:
        """Rank -> key index, with the hot set rotated by migration."""
        limit = self._next_insert
        if self._chooser is None:
            rank = rng.randint(0, limit - 1)
        else:
            rank = min(self._chooser.next(rng), limit - 1)
        return (rank + self._migration_offset(now)) % limit

    def pick_key(self, rng: RandomStream, now: int) -> bytes:
        return tenant_key(self.index, self.pick_index(rng, now))

    def insert_index(self) -> int:
        index = self._next_insert
        self._next_insert += 1
        if isinstance(self._chooser, LatestGenerator):
            self._chooser.grow()
        return index

    def all_keys(self) -> List[bytes]:
        """The tenant's initial key population (for prefill)."""
        return [tenant_key(self.index, i) for i in range(self.spec.key_count)]

    # -- the client process ---------------------------------------------------

    def client(self, engine, stack, cid: int, end: int):
        """Generator: one closed-loop client aggregating users/clients users."""
        spec = self.spec
        rng = RandomStream(self.seed, f"fleet/{spec.name}/{cid}")
        per_client_rate = spec.aggregate_rate / spec.clients
        values = ValueSpec(spec.value_size)
        while engine.now < end:
            rate = per_client_rate * spec.rate_multiplier(engine.now)
            think = round(rng.expovariate(rate) * SEC)
            if think:
                yield think
            if engine.now >= end:
                break
            delay = stack.admission.admit(spec.name, engine.now)
            if delay:
                self.stats.throttled_ops += 1
                self.stats.throttle_ns += delay
                yield delay
            op = spec.mix.pick_op(rng)
            began = engine.now
            if op == OP_READ:
                key = self.pick_key(rng, began)
                yield from stack.get(key)
            elif op == OP_UPDATE:
                index = self.pick_index(rng, began)
                yield from stack.put(
                    tenant_key(self.index, index), values.value_for(index, 1)
                )
            elif op == OP_INSERT:
                index = self.insert_index()
                yield from stack.put(
                    tenant_key(self.index, index), values.value_for(index)
                )
            elif op == OP_SCAN:
                start_idx = self.pick_index(rng, began)
                length = rng.randint(1, spec.mix.max_scan_len)
                yield from stack.scan(
                    tenant_key(self.index, start_idx),
                    tenant_key(
                        self.index, min(start_idx + length, 10**15 - 1)
                    ),
                    limit=length,
                )
            else:  # read-modify-write
                index = self.pick_index(rng, began)
                yield from stack.get(tenant_key(self.index, index))
                yield from stack.put(
                    tenant_key(self.index, index), values.value_for(index, 2)
                )
            self.stats.record(op, engine.now - began)

    def resilient_client(self, engine, stack, cid: int, end: int):
        """Generator: one closed-loop client against a *resilient* stack.

        Same arrival process and op mix as :meth:`client`, but ops go
        through the replicated-shard client layer: every op either
        succeeds, is shed up front (:class:`~repro.errors.ShedError`
        from the brownout gate, counted per reason), or resolves as a
        typed :class:`~repro.errors.ServingError` within its deadline
        (counted per kind and charged to the tenant's error budget).
        Latencies are split into fault-window vs steady-state tails.
        """
        spec = self.spec
        rng = RandomStream(self.seed, f"fleet/{spec.name}/{cid}")
        per_client_rate = spec.aggregate_rate / spec.clients
        session = stack.session(spec.name, cid)
        while engine.now < end:
            rate = per_client_rate * spec.rate_multiplier(engine.now)
            think = round(rng.expovariate(rate) * SEC)
            if think:
                yield think
            if engine.now >= end:
                break
            delay = stack.admission.admit(spec.name, engine.now)
            if delay:
                self.stats.throttled_ops += 1
                self.stats.throttle_ns += delay
                yield delay
            op = spec.mix.pick_op(rng)
            began = engine.now
            # Pick the op's key up front so the shed gate knows its shard.
            if op == OP_INSERT:
                key = tenant_key(self.index, self.insert_index())
            else:
                key = self.pick_key(rng, began)
            is_write = op not in (OP_READ, OP_SCAN)
            try:
                stack.admission.check(
                    spec.name, stack.shard_of(key), is_write, began
                )
            except ShedError as exc:
                self.stats.record_shed(exc.reason)
                continue
            in_fault = stack.in_fault_window(began)
            try:
                if op == OP_READ:
                    yield from stack.get(session, key)
                elif op == OP_SCAN:
                    length = rng.randint(1, spec.mix.max_scan_len)
                    start_idx = self.pick_index(rng, began)
                    yield from stack.scan(
                        session,
                        tenant_key(self.index, start_idx),
                        tenant_key(
                            self.index, min(start_idx + length, 10**15 - 1)
                        ),
                        limit=length,
                    )
                elif op == OP_RMW:
                    yield from stack.get(session, key)
                    yield from stack.put(session, key)
                else:  # update / insert
                    yield from stack.put(session, key)
            except ShedError as exc:
                # Breaker fast-fail inside the client layer.
                self.stats.record_shed(exc.reason)
                stack.admission.record_error(spec.name, engine.now)
            except ServingError as exc:
                self.stats.record_error(type(exc).__name__)
                stack.admission.record_error(spec.name, engine.now)
            else:
                self.stats.record(op, engine.now - began, in_fault)


def default_tenants(
    tenants: int,
    users_per_tenant: int = 250_000,
    key_count: int = 2_000,
    clients: int = 2,
    seed_mixes: Optional[List[YcsbSpec]] = None,
) -> List[TenantSpec]:
    """A heterogeneous tenant population for CLI/CI runs.

    Tenants cycle through read-mostly / update-heavy / scan-leaning mixes,
    phase-shifted diurnal peaks, and the odd hot-key migrator — the point
    is contention diversity, not any one workload.
    """
    mixes = seed_mixes or [
        YcsbSpec("B", read=0.95, update=0.05),
        YcsbSpec("A", read=0.5, update=0.5),
        YcsbSpec("mixed", read=0.65, update=0.25, insert=0.05, scan=0.05),
    ]
    specs: List[TenantSpec] = []
    for i in range(tenants):
        mix = mixes[i % len(mixes)]
        specs.append(
            TenantSpec(
                name=f"tenant-{i:02d}",
                users=users_per_tenant,
                key_count=key_count,
                clients=clients,
                mix=mix,
                slo_p99_ns=ms(20) if mix.read >= 0.9 else ms(60),
                diurnal_amplitude=0.4,
                diurnal_phase=i / max(1, tenants),
                hot_migration_period_ns=(
                    seconds(1.0) if i % 3 == 1 else 0
                ),
                hot_migration_stride=key_count // 10 if i % 3 == 1 else 0,
            )
        )
    return specs
