"""Per-shard path namespaces over one shared filesystem.

Serving shards co-locate on a single device and a single mounted
filesystem — that is the whole point of the multi-tenant experiment: many
LSM instances contending on one device and one space budget.  Each shard's
``DB`` however assumes it owns its path namespace ("MANIFEST", "wal/...",
"sst/...").  :class:`ShardFsView` gives every shard a private ``shard-N/``
prefix over the shared :class:`~repro.fs.filesystem.SimFileSystem`: path
arguments are translated on the way in, listings are stripped on the way
out, and everything else (allocation, quotas, page cache, the device) is
the shared instance's — so shards compete for space and I/O exactly as
column families in one RocksDB process do.
"""

from __future__ import annotations

from typing import Any, List


class ShardFsView:
    """A path-prefixing view over a shared :class:`SimFileSystem`."""

    def __init__(self, fs: Any, prefix: str) -> None:
        if not prefix or "/" in prefix.rstrip("/"):
            raise ValueError(f"shard prefix must be a single directory: {prefix!r}")
        self._fs = fs
        self.prefix = prefix.rstrip("/") + "/"

    # -- path-translating entry points --------------------------------------

    def create(self, path: str, **kwargs):
        return self._fs.create(self.prefix + path, **kwargs)

    def open(self, path: str):
        return self._fs.open(self.prefix + path)

    def delete(self, path: str) -> None:
        self._fs.delete(self.prefix + path)

    def exists(self, path: str) -> bool:
        return self._fs.exists(self.prefix + path)

    def install_synced(self, path: str, nbytes: int):
        return self._fs.install_synced(self.prefix + path, nbytes)

    def list(self, prefix: str = "") -> List[str]:
        full = self.prefix + prefix
        n = len(self.prefix)
        return [p[n:] for p in self._fs.list(prefix=full)]

    # -- shared-state delegation ---------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # free_bytes/quota_bytes/device/page_cache/stats/... are the shared
        # filesystem's: shards see one joint space and I/O budget.
        return getattr(self._fs, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardFsView {self.prefix!r} over {self._fs!r}>"
