"""Simulated filesystem (Ext4 stand-in) with an OS page cache model."""

from repro.fs.filesystem import EXTENT_BYTES, SimFile, SimFileSystem
from repro.fs.page_cache import PAGE_SIZE, PageCache

__all__ = ["EXTENT_BYTES", "PAGE_SIZE", "PageCache", "SimFile", "SimFileSystem"]
