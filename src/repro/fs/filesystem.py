"""Extent-based simulated filesystem (the testbed's Ext4 stand-in).

The filesystem models exactly what an LSM store needs from Ext4:

* append-only writes buffered in the page cache (``append``), written back to
  the device either on explicit ``sync`` (fsync) or asynchronously when the
  dirty watermark is crossed (OS writeback);
* random and sequential reads served from the page cache when resident;
* whole-file deletes that free extents and TRIM the device.

Data *content* is not serialized: each :class:`SimFile` exposes ``payload``
(an opaque object attached by its owner, e.g. an SST's in-memory index) and a
``records`` list with per-record durability flags, which is what WAL recovery
needs.  The filesystem models sizes, offsets and timing only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    FileExistsInFS,
    FileNotFoundInFS,
    FileSystemError,
    IOFaultError,
    OutOfSpaceError,
    StaleFileError,
)
from repro.sim.engine import Engine, Event
from repro.sim.stats import StatsSet
from repro.sim.units import MB
from repro.storage.device import StorageDevice

EXTENT_BYTES = 1 * MB


class TornRecord:
    """The partially durable tail record a crash can leave behind.

    When power is lost while a record's bytes are only partly written back
    (the durable watermark falls *inside* the record), the surviving prefix
    is garbage to any reader: replay must detect it — via a checksum — and
    truncate the log there.  ``original`` is the logical record the torn
    bytes belonged to; ``durable_bytes`` is how much of it survived.
    """

    __slots__ = ("original", "durable_bytes")

    def __init__(self, original: Any, durable_bytes: int) -> None:
        self.original = original
        self.durable_bytes = durable_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TornRecord {self.durable_bytes}B of {self.original!r}>"


class SimFile:
    """An open file on the simulated filesystem."""

    def __init__(
        self,
        fs: "SimFileSystem",
        path: str,
        file_id: int,
        writeback_bytes: Optional[int] = None,
        dirty_limit_bytes: Optional[int] = None,
    ) -> None:
        self.fs = fs
        self.path = path
        self.file_id = file_id
        # Per-file overrides of the OS writeback thresholds (the WAL uses
        # wal_bytes_per_sync here).
        self.writeback_bytes = writeback_bytes
        self.dirty_limit_bytes = dirty_limit_bytes
        self.size = 0
        self.synced_size = 0  # durable watermark
        self._flushed_size = 0  # bytes handed to the device (maybe in flight)
        self.extents: List[int] = []  # physical offset of each extent
        self.deleted = False
        self.closed = False
        # Opaque owner state (e.g. parsed SST); survives "crash" only if the
        # owner re-derives it from synced records/content.
        self.payload: Any = None
        # (nbytes, record) appended entries, for WAL-style replay.
        self.records: List[Tuple[int, Any]] = []
        # Byte ranges the device mangled (fault injection); empty on the
        # happy path so readers only pay a truthiness check.
        self.corrupt_ranges: List[Tuple[int, int]] = []
        # Deferred writeback failure, surfaced at the next fsync (the
        # kernel's EIO-on-fsync semantics).  Set only under fault injection.
        self.pending_io_error: Optional[BaseException] = None
        self._pending_flushes: List[Event] = []

    # -- writes ---------------------------------------------------------------

    def append(self, nbytes: int, record: Any = None) -> Optional[Event]:
        """Buffered append (a ``write()`` syscall into the page cache).

        Returns ``None`` on the common path.  When the file's dirty span
        exceeds the writeback threshold, an asynchronous device write is
        started and — if the amount of un-written dirty data exceeds the
        dirty limit — the returned event models write() blocking on
        writeback backpressure; the caller must yield it.
        """
        self._check_alive()
        if nbytes <= 0:
            raise FileSystemError(f"append size must be positive: {nbytes}")
        fs = self.fs
        offset = self.size
        # Allocate extents (and hit any quota) *before* mutating the file,
        # so a failed append (ENOSPC) leaves size/records untouched.
        fs._ensure_extents(self, offset + nbytes)
        self.size = offset + nbytes
        if record is not None:
            self.records.append((nbytes, record))
        fs.page_cache.fill(self.file_id, offset, nbytes)
        fs.stats.inc("bytes_appended", nbytes)

        writeback_at = self.writeback_bytes
        if writeback_at is None:
            writeback_at = fs.writeback_bytes
        if self.size - self._flushed_size >= writeback_at:
            ev = self._start_flush()
            dirty_limit = self.dirty_limit_bytes
            if dirty_limit is None:
                dirty_limit = fs.dirty_limit_bytes
            if self.size - self.synced_size >= dirty_limit:
                fs.stats.inc("writeback_stalls")
                return ev
        return None

    def _start_flush(self) -> Optional[Event]:
        """Kick off device writes for the dirty range; returns the last event.

        A device write fault is *deferred*: writeback is asynchronous, so the
        error is remembered and surfaced at the next :meth:`sync` (the
        kernel's EIO-on-fsync semantics).  The durable watermark does not
        advance past the failed range; a later flush retries it.
        """
        if self._flushed_size >= self.size:
            return self._pending_flushes[-1] if self._pending_flushes else None
        ev = None
        try:
            for phys, nbytes in self.fs._physical_runs(
                self, self._flushed_size, self.size - self._flushed_size
            ):
                ev = self.fs.device.write(phys, nbytes, sequential=True)
                self._pending_flushes.append(ev)
        except IOFaultError as exc:
            self.pending_io_error = exc
            self.fs.stats.inc("writeback_errors")
            return ev
        flushed_to = self.size
        epoch = self.fs.epoch

        def _mark(_ev: Event, size: int = flushed_to, f: "SimFile" = self) -> None:
            # A completion issued before a node-local power failure must not
            # resurrect bytes the failure already discarded: the filesystem
            # epoch is bumped on power_fail(), so stale completions no-op.
            if f.fs.epoch == epoch and size > f.synced_size:
                f.synced_size = size

        if ev is not None:
            ev.callbacks.append(_mark)
        self._flushed_size = self.size
        return ev

    def sync(self):
        """Generator: fsync — flush dirty bytes and wait for durability.

        Raises the deferred :class:`IOFaultError` of a failed asynchronous
        writeback (clearing it, so a retry can succeed once the fault
        passes — callers own the retry policy).
        """
        self._check_alive()
        epoch = self.fs.epoch
        self._start_flush()
        pending = [ev for ev in self._pending_flushes if not ev.triggered]
        self._pending_flushes = pending
        if pending:
            yield self.fs.engine.all_of(pending)
        if self.fs.epoch != epoch:
            # The filesystem power-failed while this fsync was in flight
            # (node-local crash with the engine still running): the dirty
            # bytes are gone and must not be marked durable.
            self.fs.stats.inc("fsync_errors")
            raise IOFaultError(
                f"power failure during fsync of {self.path}",
                op="fsync",
                transient=False,
            )
        if self.pending_io_error is not None:
            exc, self.pending_io_error = self.pending_io_error, None
            self.fs.stats.inc("fsync_errors")
            raise exc
        if self.size > self.synced_size:
            self.synced_size = self.size
        self.fs.stats.inc("fsyncs")
        return None

    # -- reads ----------------------------------------------------------------

    def read(self, offset: int, nbytes: int, sequential: bool = False) -> Optional[Event]:
        """Read a byte range; returns a wait event on page-cache miss.

        Returns ``None`` when fully cached (no simulated time passes), else
        an event firing when the device read(s) complete.  The pages are
        inserted into the cache.
        """
        self._check_alive()
        if offset < 0 or offset + nbytes > self.size:
            raise FileSystemError(
                f"read [{offset}, {offset + nbytes}) beyond EOF {self.size} in {self.path}"
            )
        fs = self.fs
        # read_through = access + fill of the misses in one page walk; the
        # missing pages are already resident when it returns.
        holes = fs.page_cache.read_through(self.file_id, offset, nbytes)
        if not holes:
            fs.stats.inc("cached_reads")
            return None
        fs.stats.inc("device_reads")
        if len(holes) == 1:
            # Single hole within one extent (the common small-block read):
            # map it inline instead of spinning up the _physical_runs
            # generator for one run.
            hole_off, hole_len = holes[0]
            extent_idx, within = divmod(hole_off, EXTENT_BYTES)
            extents = self.extents
            if within + hole_len <= EXTENT_BYTES and extent_idx < len(extents):
                return fs.device.read(
                    extents[extent_idx] + within, hole_len, sequential=sequential
                )
            events = [
                fs.device.read(phys, run_len, sequential=sequential)
                for phys, run_len in fs._physical_runs(self, hole_off, hole_len)
            ]
        else:
            events = []
            for hole_off, hole_len in holes:
                for phys, run_len in fs._physical_runs(self, hole_off, hole_len):
                    events.append(
                        fs.device.read(phys, run_len, sequential=sequential)
                    )
        if len(events) == 1:
            return events[0]
        return fs.engine.all_of(events)

    # -- lifecycle & integrity -------------------------------------------------

    def close(self) -> None:
        """Drop the handle: further reads/appends raise :class:`StaleFileError`.

        Closing is idempotent and purely a handle-state change — buffered
        dirty bytes stay in the page cache and are written back (or lost at
        crash) exactly as if the handle were still open.
        """
        self.closed = True

    def mark_corrupt(self, offset: int, nbytes: int) -> None:
        """Record that the device mangled [offset, offset+nbytes) (faults)."""
        if nbytes > 0:
            self.corrupt_ranges.append((offset, nbytes))

    def is_corrupt(self, offset: int, nbytes: int) -> bool:
        """True when the byte range overlaps a mangled range."""
        for lo, ln in self.corrupt_ranges:
            if offset < lo + ln and lo < offset + nbytes:
                return True
        return False

    # -- internals ------------------------------------------------------------

    def _check_alive(self) -> None:
        if self.deleted:
            raise StaleFileError(self.path, "deleted")
        if self.closed:
            raise StaleFileError(self.path, "closed")


class SimFileSystem:
    """A mounted filesystem on one device, with a shared page cache."""

    def __init__(
        self,
        engine: Engine,
        device: StorageDevice,
        page_cache,
        writeback_bytes: int = 256 * 1024,
        dirty_limit_bytes: int = 1 * MB,
        quota_bytes: Optional[int] = None,
    ) -> None:
        from repro.fs.page_cache import PageCache  # local import to avoid cycle

        if not isinstance(page_cache, PageCache):
            raise FileSystemError("page_cache must be a PageCache instance")
        self.engine = engine
        self.device = device
        self.page_cache = page_cache
        self.writeback_bytes = writeback_bytes
        self.dirty_limit_bytes = dirty_limit_bytes
        self.stats = StatsSet()
        # Incremented on every power failure.  In-flight writeback
        # completions and suspended fsyncs capture the epoch they started
        # under and refuse to act once it changes — required for node-local
        # crashes in cluster runs, where the engine keeps running while one
        # node's filesystem loses power.
        self.epoch = 0
        self._files: Dict[str, SimFile] = {}
        self._next_file_id = 1
        self._next_extent = 0
        self._free_extents: List[int] = []
        self._extent_count = device.profile.capacity_bytes // EXTENT_BYTES
        self._used_extents = 0
        # Optional byte quota (the mounted partition being smaller than the
        # device).  ``None`` = unlimited; allocation then only hits the
        # device capacity limit, exactly as before quotas existed.
        self.quota_bytes = quota_bytes

    # -- capacity ---------------------------------------------------------------

    def set_quota(self, quota_bytes: Optional[int]) -> None:
        """Set or clear (``None``) the byte quota.

        Shrinking the quota below current usage does not fail existing
        files — it makes the next allocation raise
        :class:`~repro.errors.OutOfSpaceError`, like filling a real disk.
        """
        if quota_bytes is not None and quota_bytes < 0:
            raise FileSystemError(f"quota_bytes must be >= 0: {quota_bytes}")
        self.quota_bytes = quota_bytes

    def capacity_bytes(self) -> int:
        """Usable capacity: the quota if set, else the device size."""
        device_bytes = self._extent_count * EXTENT_BYTES
        if self.quota_bytes is None:
            return device_bytes
        return min(self.quota_bytes, device_bytes)

    def used_bytes(self) -> int:
        """Bytes consumed by allocated extents (allocation granularity)."""
        return self._used_extents * EXTENT_BYTES

    def free_bytes(self) -> int:
        """Bytes still allocatable before ENOSPC."""
        return max(0, self.capacity_bytes() - self.used_bytes())

    # -- namespace -------------------------------------------------------------

    #: Class of files this filesystem hands out; the fault-injection layer
    #: (:mod:`repro.faults`) overrides this with a fault-aware subclass.
    file_class = SimFile

    def create(
        self,
        path: str,
        writeback_bytes: Optional[int] = None,
        dirty_limit_bytes: Optional[int] = None,
    ) -> SimFile:
        """Create a new empty file (fails if it exists).

        With a quota configured and no free space left, creation raises
        :class:`~repro.errors.OutOfSpaceError` (ENOSPC on ``open(O_CREAT)``).
        """
        if path in self._files:
            raise FileExistsInFS(path)
        if self.quota_bytes is not None and self.free_bytes() <= 0:
            self.stats.inc("quota_enospc")
            raise OutOfSpaceError(
                f"cannot create {path}: quota exhausted "
                f"({self.used_bytes()}/{self.capacity_bytes()} bytes used)",
                path=path,
            )
        f = self.file_class(
            self,
            path,
            self._next_file_id,
            writeback_bytes=writeback_bytes,
            dirty_limit_bytes=dirty_limit_bytes,
        )
        self._next_file_id += 1
        self._files[path] = f
        self.stats.inc("files_created")
        return f

    def open(self, path: str) -> SimFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInFS(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def list(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    def delete(self, path: str) -> None:
        """Unlink a file: free extents, drop cached pages, TRIM the device."""
        f = self._files.pop(path, None)
        if f is None:
            raise FileNotFoundInFS(path)
        f.deleted = True
        self.page_cache.invalidate_file(f.file_id)
        for phys in f.extents:
            self._free_extents.append(phys)
            self._used_extents -= 1
            self.device.trim(phys, EXTENT_BYTES)
        f.extents.clear()
        self.stats.inc("files_deleted")

    def install_synced(self, path: str, nbytes: int) -> SimFile:
        """Create a file that already durably holds ``nbytes`` (fixtures).

        Used by experiment pre-population to stand up a large existing
        database instantly: extents are allocated and the durable watermark
        set without any simulated I/O and without warming the page cache
        (the dataset starts cold, as after a reboot).
        """
        f = self.create(path)
        self._ensure_extents(f, nbytes)
        f.size = nbytes
        f.synced_size = nbytes
        f._flushed_size = nbytes
        return f

    def rename(self, old: str, new: str) -> None:
        if new in self._files:
            raise FileExistsInFS(new)
        f = self._files.pop(old, None)
        if f is None:
            raise FileNotFoundInFS(old)
        f.path = new
        self._files[new] = f

    # -- crash simulation --------------------------------------------------------

    def crash(self) -> None:
        """Simulate whole-machine power loss: un-synced data vanishes.

        All in-flight simulated work dies with the machine (the engine's
        pending occurrences are cancelled), then the filesystem state is
        rolled back to its durable watermarks via :meth:`power_fail`.
        """
        self.engine.clear_pending()
        self.power_fail()

    def power_fail(self) -> None:
        """Roll this filesystem back to its durable watermarks.

        Every file is truncated to its durable watermark and its cached pages
        dropped; owners must rebuild state from ``records`` that fall below
        the watermark.  When the watermark lands *inside* a record (a torn
        write — only possible under fault injection, since normal writeback
        advances the watermark at record granularity) the partial tail is
        kept as a :class:`TornRecord`, which checksum-verifying replay must
        detect and truncate.

        Unlike :meth:`crash`, the engine is *not* cleared: cluster runs
        power-fail one node while the rest of the machine keeps simulating.
        The epoch bump makes any still-scheduled writeback completion or
        suspended fsync for this filesystem a no-op / typed failure.
        """
        self.epoch += 1
        for f in self._files.values():
            f.size = f.synced_size
            f._flushed_size = min(f._flushed_size, f.size)
            f._pending_flushes.clear()
            f.pending_io_error = None
            kept: List[Tuple[int, Any]] = []
            durable = 0
            for nbytes, record in f.records:
                if durable + nbytes <= f.synced_size:
                    kept.append((nbytes, record))
                    durable += nbytes
                else:
                    torn = f.synced_size - durable
                    if torn > 0:
                        kept.append((torn, TornRecord(record, torn)))
                        self.stats.inc("torn_records")
                    break
            f.records = kept
            self.page_cache.invalidate_file(f.file_id)
        self.stats.inc("crashes")

    # -- allocation ---------------------------------------------------------------

    def _ensure_extents(self, f: SimFile, size: Optional[int] = None) -> None:
        size = f.size if size is None else size
        needed = (size + EXTENT_BYTES - 1) // EXTENT_BYTES
        grow = needed - len(f.extents)
        if grow <= 0:
            return
        # Check the whole shortfall before allocating anything: a failed
        # growth must not consume quota or strand half of its extents.
        if (
            self.quota_bytes is not None
            and (self._used_extents + grow) * EXTENT_BYTES > self.quota_bytes
        ):
            self.stats.inc("quota_enospc")
            raise OutOfSpaceError(
                f"quota exhausted growing {f.path}: "
                f"{self.used_bytes()} used of {self.quota_bytes} allowed, "
                f"{grow * EXTENT_BYTES} more needed",
                path=f.path,
                needed_bytes=grow * EXTENT_BYTES,
                free_bytes=self.free_bytes(),
            )
        available = len(self._free_extents) + (self._extent_count - self._next_extent)
        if grow > available:
            raise OutOfSpaceError(
                f"device {self.device.profile.name} is full "
                f"({self._extent_count} extents)",
                path=f.path,
                needed_bytes=grow * EXTENT_BYTES,
            )
        for _ in range(grow):
            if self._free_extents:
                phys = self._free_extents.pop()
            else:
                phys = self._next_extent * EXTENT_BYTES
                self._next_extent += 1
            f.extents.append(phys)
            self._used_extents += 1

    def _physical_runs(self, f: SimFile, offset: int, nbytes: int):
        """Map a logical byte range to (physical_offset, nbytes) runs."""
        remaining = nbytes
        pos = offset
        while remaining > 0:
            extent_idx = pos // EXTENT_BYTES
            within = pos % EXTENT_BYTES
            run = min(remaining, EXTENT_BYTES - within)
            if extent_idx >= len(f.extents):
                raise FileSystemError(
                    f"range [{offset}, {offset + nbytes}) not allocated in {f.path}"
                )
            yield f.extents[extent_idx] + within, run
            pos += run
            remaining -= run
