"""OS page cache model (LRU over 4 KB pages).

The paper's testbed boots with 8 GB of RAM against a 100 GB dataset, so the
OS buffer cache absorbs roughly 8 % of reads.  The model tracks *which* pages
are resident — actual data bytes live in the structures of the upper layers —
and answers the only question the I/O path needs: which fraction of a read
must touch the device.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.errors import FileSystemError
from repro.sim.stats import StatsSet

PAGE_SIZE = 4096


class PageCache:
    """LRU page cache shared by all files of one simulated machine."""

    def __init__(self, capacity_bytes: int, page_size: int = PAGE_SIZE) -> None:
        if page_size <= 0:
            raise FileSystemError(f"page size must be positive: {page_size}")
        self.page_size = page_size
        self.capacity_pages = max(0, capacity_bytes // page_size)
        # OrderedDict: O(1) LRU eviction via popitem(last=False) even after
        # heavy churn (a plain dict degrades: deletion tombstones make
        # next(iter()) linear).
        self._pages: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.stats = StatsSet()

    # -- capacity ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * self.page_size

    def _page_range(self, offset: int, nbytes: int) -> range:
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        return range(first, last + 1)

    # -- operations ----------------------------------------------------------

    def access(self, file_id: int, offset: int, nbytes: int) -> List[Tuple[int, int]]:
        """Look up a byte range; returns the missing ranges to read.

        Resident pages are promoted to MRU.  The returned list contains
        ``(offset, nbytes)`` holes (coalesced) that must be fetched from the
        device; the caller is expected to :meth:`fill` them afterwards.
        """
        if nbytes <= 0:
            raise FileSystemError(f"access size must be positive: {nbytes}")
        pages = self._pages
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        if first == last:
            # Single-page fast path: most WAL appends and small block reads.
            key = (file_id, first)
            if key in pages:
                pages.move_to_end(key)
                self.stats.inc("page_hits", 1)
                return []
            self.stats.inc("page_misses", 1)
            return [(first * self.page_size, self.page_size)]
        missing_pages: List[int] = []
        hits = 0
        for page in range(first, last + 1):
            key = (file_id, page)
            if key in pages:
                pages.move_to_end(key)  # promote to MRU
                hits += 1
            else:
                missing_pages.append(page)
        if hits:
            self.stats.inc("page_hits", hits)
        if missing_pages:
            self.stats.inc("page_misses", len(missing_pages))
        return self._coalesce(missing_pages)

    def read_through(self, file_id: int, offset: int, nbytes: int) -> List[Tuple[int, int]]:
        """:meth:`access` + :meth:`fill` of the misses in one page scan.

        Returns the coalesced holes that must be fetched from the device,
        with the missing pages already inserted as resident — exactly the
        state (LRU order, eviction sequence, tickers) of an ``access``
        followed by one ``fill`` per hole, at half the page-walk cost.
        """
        if nbytes <= 0:
            raise FileSystemError(f"access size must be positive: {nbytes}")
        pages = self._pages
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        if first == last:
            # Single-page fast path: most small block reads.
            key = (file_id, first)
            if key in pages:
                pages.move_to_end(key)
                self.stats.inc("page_hits", 1)
                return []
            self.stats.inc("page_misses", 1)
            pages[key] = True
            if len(pages) > self.capacity_pages:
                self._evict_excess()
            return [(first * self.page_size, self.page_size)]
        # Hits are promoted before any miss is inserted (matching access()
        # followed by fill()): interleaving would reorder the LRU list and
        # change which pages later evictions pick.
        missing_pages: List[int] = []
        hits = 0
        for page in range(first, last + 1):
            key = (file_id, page)
            if key in pages:
                pages.move_to_end(key)  # promote to MRU
                hits += 1
            else:
                missing_pages.append(page)
        if hits:
            self.stats.inc("page_hits", hits)
        if missing_pages:
            self.stats.inc("page_misses", len(missing_pages))
            for page in missing_pages:
                pages[(file_id, page)] = True
            if len(pages) > self.capacity_pages:
                self._evict_excess()
        return self._coalesce(missing_pages)

    def _coalesce(self, pages: List[int]) -> List[Tuple[int, int]]:
        if not pages:
            return []
        runs: List[Tuple[int, int]] = []
        run_start = prev = pages[0]
        for page in pages[1:]:
            if page == prev + 1:
                prev = page
                continue
            runs.append((run_start * self.page_size, (prev - run_start + 1) * self.page_size))
            run_start = prev = page
        runs.append((run_start * self.page_size, (prev - run_start + 1) * self.page_size))
        return runs

    def fill(self, file_id: int, offset: int, nbytes: int) -> None:
        """Insert a byte range as resident (after a device read or a write)."""
        if nbytes <= 0:
            return
        pages = self._pages
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        if first == last:
            # Single-page fast path: nothing was inserted on a hit, so the
            # eviction sweep (a no-op then) is skipped entirely.
            key = (file_id, first)
            if key in pages:
                pages.move_to_end(key)
                return
            pages[key] = True
            if len(pages) > self.capacity_pages:
                self._evict_excess()
            return
        for page in range(first, last + 1):
            key = (file_id, page)
            if key in pages:
                pages.move_to_end(key)
            else:
                pages[key] = True
        self._evict_excess()

    def contains(self, file_id: int, offset: int, nbytes: int) -> bool:
        """True if the whole byte range is resident (no LRU promotion)."""
        pages = self._pages
        return all(
            (file_id, page) in pages for page in self._page_range(offset, nbytes)
        )

    def invalidate_file(self, file_id: int) -> None:
        """Drop every page of a deleted file."""
        stale = [key for key in self._pages if key[0] == file_id]
        for key in stale:
            del self._pages[key]
        self.stats.inc("pages_invalidated", len(stale))

    def _evict_excess(self) -> None:
        pages = self._pages
        evicted = 0
        while len(pages) > self.capacity_pages:
            pages.popitem(last=False)
            evicted += 1
        if evicted:
            self.stats.inc("pages_evicted", evicted)

    # -- reporting -----------------------------------------------------------

    def hit_rate(self) -> float:
        hits = self.stats.get("page_hits")
        misses = self.stats.get("page_misses")
        total = hits + misses
        return hits / total if total else 0.0
