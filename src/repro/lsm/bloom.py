"""Bloom filter (full-filter style, double hashing).

RocksDB's default table options ship **without** a filter policy — a default
the paper implicitly relies on when it measures per-Level-0-file query
overhead — so the store only builds filters when
``Options.bloom_bits_per_key > 0``.  The implementation is real: CRC-based
double hashing over a bit array, with the standard ``k = bits_per_key * ln 2``
probe count.
"""

from __future__ import annotations

import zlib
from typing import Iterable

from repro.errors import DBError

_GOLDEN = 0x9E3779B9


def _hash_pair(key: bytes) -> tuple[int, int]:
    h1 = zlib.crc32(key) & 0xFFFFFFFF
    h2 = (zlib.crc32(key, _GOLDEN) | 1) & 0xFFFFFFFF  # odd => full cycle
    return h1, h2


class BloomFilter:
    """Immutable bloom filter over a set of byte keys."""

    def __init__(self, keys: Iterable[bytes], bits_per_key: int) -> None:
        if bits_per_key <= 0:
            raise DBError(f"bits_per_key must be positive: {bits_per_key}")
        keys = list(keys)
        self.bits_per_key = bits_per_key
        # Probe count: bits_per_key * ln(2), clamped like LevelDB.
        self.k = max(1, min(30, int(bits_per_key * 0.69)))
        nbits = max(64, len(keys) * bits_per_key)
        self.nbits = nbits
        bits = 0
        for key in keys:
            h1, h2 = _hash_pair(key)
            for i in range(self.k):
                bits |= 1 << ((h1 + i * h2) % nbits)
        self._bits = bits
        self.key_count = len(keys)

    def may_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means possibly present."""
        h1, h2 = _hash_pair(key)
        bits = self._bits
        nbits = self.nbits
        for i in range(self.k):
            if not (bits >> ((h1 + i * h2) % nbits)) & 1:
                return False
        return True

    @property
    def approximate_bytes(self) -> int:
        return self.nbits // 8
