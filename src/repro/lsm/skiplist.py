"""A real skiplist — RocksDB's default memtable representation.

Nodes are plain Python lists ``[key, data, next_0, next_1, ...]`` to keep
allocation cheap.  Heights are drawn from a deterministic geometric
distribution (p = 1/4, max height 12), the same parameters as LevelDB /
RocksDB, so the expected search path length — which the CPU cost model
charges — matches the real structure.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro.sim.rng import RandomStream

MAX_HEIGHT = 12
_BRANCHING = 4  # P(level up) = 1/4

_KEY = 0
_DATA = 1
_NEXT0 = 2


class SkipList:
    """Ordered map from ``bytes`` keys to opaque data, latest value wins."""

    __slots__ = ("_rng", "_head", "_height", "_count")

    def __init__(self, rng: Optional[RandomStream] = None) -> None:
        self._rng = rng or RandomStream(0, "skiplist")
        self._head: list = [None, None] + [None] * MAX_HEIGHT
        self._height = 1
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _random_height(self) -> int:
        height = 1
        randint = self._rng.randint
        while height < MAX_HEIGHT and randint(1, _BRANCHING) == 1:
            height += 1
        return height

    def _find_predecessors(self, key: bytes) -> list:
        """Nodes preceding ``key`` at each level (the update path)."""
        head = self._head
        update = [head] * MAX_HEIGHT
        node = head
        for level in range(self._height + 1, _NEXT0 - 1, -1):
            # ``level`` is the node-list slot (key/data offsets folded in).
            nxt = node[level]
            while nxt is not None and nxt[_KEY] < key:
                node = nxt
                nxt = node[level]
            update[level - _NEXT0] = node
        return update

    def insert(self, key: bytes, data: Any) -> bool:
        """Insert or replace; returns True if the key was new."""
        update = self._find_predecessors(key)
        candidate = update[0][_NEXT0]
        if candidate is not None and candidate[_KEY] == key:
            candidate[_DATA] = data
            return False
        height = self._random_height()
        if height > self._height:
            self._height = height
        node = [key, data] + [None] * height
        for level in range(height):
            prev = update[level]
            node[_NEXT0 + level] = prev[_NEXT0 + level]
            prev[_NEXT0 + level] = node
        self._count += 1
        return True

    def get(self, key: bytes) -> Optional[Any]:
        """Return the data for ``key`` or None."""
        node = self._head
        for slot in range(self._height + 1, _NEXT0 - 1, -1):
            nxt = node[slot]
            while nxt is not None and nxt[_KEY] < key:
                node = nxt
                nxt = node[slot]
        candidate = node[_NEXT0]
        if candidate is not None and candidate[_KEY] == key:
            return candidate[_DATA]
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def seek(self, key: bytes) -> Iterator[Tuple[bytes, Any]]:
        """Iterate (key, data) pairs starting at the first key >= ``key``."""
        node = self._head
        for slot in range(self._height + 1, _NEXT0 - 1, -1):
            nxt = node[slot]
            while nxt is not None and nxt[_KEY] < key:
                node = nxt
                nxt = node[slot]
        node = node[_NEXT0]
        while node is not None:
            yield node[_KEY], node[_DATA]
            node = node[_NEXT0]

    def __iter__(self) -> Iterator[Tuple[bytes, Any]]:
        node = self._head[_NEXT0]
        while node is not None:
            yield node[_KEY], node[_DATA]
            node = node[_NEXT0]

    def first_key(self) -> Optional[bytes]:
        node = self._head[_NEXT0]
        return None if node is None else node[_KEY]

    def last_key(self) -> Optional[bytes]:
        node = self._head
        for slot in range(self._height + 1, _NEXT0 - 1, -1):
            nxt = node[slot]
            while nxt is not None:
                node = nxt
                nxt = node[slot]
        return None if node is self._head else node[_KEY]
