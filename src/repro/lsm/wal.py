"""Write-ahead log.

Every write group appends one log record covering the whole batch group
(RocksDB's group commit).  Three modes model the configurations the paper
measures:

* ``buffered`` (default, db_bench's setting): ``write()`` into the page
  cache; the OS writes back asynchronously every ``wal_bytes_per_sync``
  bytes, and appends block only when the device falls behind the dirty
  limit — this is how the WAL still costs 30+ us of p90 latency even though
  no fsync is issued (Finding #4);
* ``sync``: fsync after every group;
* ``off``: Figure 17's WAL-disabled configuration.

The WAL filesystem may live on a different device than the data files —
that is exactly case study C (NVM logging): pass an NVM-backed filesystem.

One log file exists per memtable; when a memtable flushes, its log becomes
obsolete and is deleted.  Records carry the real (key, entry) payloads so
recovery replays actual data (only records below the durable watermark
survive a simulated crash).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import DBError, IOFaultError
from repro.fs.filesystem import SimFile, SimFileSystem, TornRecord
from repro.lsm.costs import CostModel
from repro.lsm.format import Entry, entry_value_size, records_checksum
from repro.lsm.io_retry import retry_gen
from repro.lsm.options import WAL_OFF, WAL_SYNC, Options
from repro.sim.engine import Engine, Event


class WalRecord:
    """One group-commit log record: the (key, entry) payloads plus a CRC.

    The checksum covers the logical record content at append time and is
    re-verified during replay, which is what lets recovery *detect* a torn
    tail or a device-mangled range instead of resurrecting garbage.  It is
    computed lazily on first access: entries are immutable tuples frozen at
    append, so first-access and append-time checksums are identical — and
    the common case (a record that is never replayed or replicated) skips
    the CRC work entirely on the hot write path.
    """

    __slots__ = ("entries", "_crc")

    def __init__(self, entries: List[Tuple[bytes, Entry]]) -> None:
        self.entries = list(entries)
        self._crc: Optional[int] = None

    @property
    def crc(self) -> int:
        value = self._crc
        if value is None:
            value = self._crc = records_checksum(self.entries)
        return value

    def verify(self) -> bool:
        return self.crc == records_checksum(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WalRecord n={len(self.entries)} crc={self.crc:#010x}>"


def scan_log(f: SimFile) -> Tuple[List[WalRecord], int, int]:
    """Verify one log file; returns (good_records, good_bytes, bad_records).

    Walks the durable records in order, accumulating byte offsets, and stops
    at the first record that fails validation: a :class:`TornRecord` left by
    a mid-record crash, a record overlapping a device-corrupted range, or a
    checksum mismatch.  Everything from the first bad record on is dropped
    (RocksDB's point-in-time / truncate-at-corruption recovery).
    """
    good: List[WalRecord] = []
    offset = 0
    bad = 0
    total = len(f.records)
    for idx, (nbytes, rec) in enumerate(f.records):
        if (
            isinstance(rec, TornRecord)
            or not isinstance(rec, WalRecord)
            or (f.corrupt_ranges and f.is_corrupt(offset, nbytes))
            or not rec.verify()
        ):
            bad = total - idx
            break
        good.append(rec)
        offset += nbytes
    return good, offset, bad


def truncate_log(f: SimFile, good_records: List[WalRecord], good_bytes: int) -> None:
    """Physically truncate a log at its last good record."""
    f.records = f.records[: len(good_records)]
    f.size = good_bytes
    f.synced_size = min(f.synced_size, good_bytes)
    f._flushed_size = min(f._flushed_size, good_bytes)


class WalManager:
    """Owns the numbered log files of one DB instance."""

    def __init__(
        self,
        engine: Engine,
        fs: SimFileSystem,
        options: Options,
        costs: CostModel,
        dirname: str = "wal",
        first_number: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.fs = fs
        self.options = options
        self.costs = costs
        self.dirname = dirname
        self.current: Optional[SimFile] = None
        self.current_number = 0
        self._live: List[Tuple[int, SimFile]] = []  # (number, file), oldest first
        self.bytes_written = 0
        # Per-append filesystem write cost (see add_group): fixed for this
        # manager's (fs, device) pairing, resolved once off the hot path.
        self._seq_write_half_ns = fs.device.profile.seq_write_base_ns // 2
        # Replication tap: when set, called as ``on_group(records, nbytes)``
        # for every appended group *after* the local append is issued.  The
        # cluster layer uses this on the leader to ship WAL records; None
        # (the default) costs nothing on the single-node path.
        self.on_group = None
        if options.wal_mode != WAL_OFF:
            # Adopt pre-existing (pre-crash) logs: they stay live until the
            # memtable holding their replayed records is flushed.
            existing = sorted(
                (int(p.rsplit("/", 1)[-1].split(".")[0]), p)
                for p in fs.list(prefix=f"{dirname}/")
            )
            for number, path in existing:
                self._live.append((number, fs.open(path)))
                self.current_number = number
            if first_number is None:
                first_number = self.current_number + 1
            self.roll(first_number)

    @property
    def enabled(self) -> bool:
        return self.options.wal_mode != WAL_OFF

    def _path(self, number: int) -> str:
        return f"{self.dirname}/{number:06d}.log"

    def roll(self, number: int) -> None:
        """Start a new log file (called at every memtable switch)."""
        if not self.enabled:
            return
        number = max(number, self.current_number + 1)
        f = self.fs.create(
            self._path(number),
            writeback_bytes=self.options.wal_bytes_per_sync,
            dirty_limit_bytes=2 * self.options.wal_bytes_per_sync,
        )
        self.current = f
        self.current_number = number
        self._live.append((number, f))

    def add_group(
        self, records: List[Tuple[bytes, Entry]]
    ) -> Tuple[int, Optional[Event]]:
        """Append one group-commit record; returns (cpu_ns, wait_event).

        ``cpu_ns`` is the serialization cost the leader must charge.  The
        event — when not None — must be yielded before the write is
        acknowledged: in ``sync`` mode it is durability, in ``buffered``
        mode it only appears under writeback backpressure.
        """
        if not self.enabled:
            return 0, None
        if self.current is None:
            raise DBError("WAL enabled but no live log file")
        # wal_record_bytes() unrolled: one call per record per group shows
        # up in write-heavy profiles.  Same arithmetic, same result.
        options = self.options
        costs = self.costs
        overhead = options.wal_record_overhead
        nbytes = 0
        for key, entry in records:
            value = entry[2]
            if value is None:
                vsize = 0
            elif value.__class__ is bytes:
                vsize = len(value)
            else:
                vsize = getattr(value, "size", None)
                if vsize is None:
                    vsize = entry_value_size(entry)
            nbytes += len(key) + vsize + overhead
        # wal_serialize() inlined, same arithmetic.
        cpu = (
            costs.wal_append_base_ns
            + (nbytes * costs.wal_serialize_per_byte_ps) // 1000
        )
        if options.wal_compression:
            # Section VI: compress the log to trade CPU for I/O traffic.
            cpu += (nbytes * costs.wal_compress_per_byte_ps) // 1000
            nbytes = max(1, int(nbytes * options.wal_compression_ratio))
        self.bytes_written += nbytes
        # Filesystem write-path cost: a write() into a file on a block
        # device does journal/block-layer work that scales with the backing
        # device; on byte-addressable NVM (tmpfs) that path is a bare
        # memcpy.  This is the per-write gap case study C removes.
        cpu += self._seq_write_half_ns
        backpressure = self.current.append(nbytes, record=WalRecord(records))
        if self.on_group is not None:
            self.on_group(records, nbytes)
        if options.wal_mode == WAL_SYNC:
            return cpu, self._sync_event()
        return cpu, backpressure

    def _sync_event(self) -> Event:
        ev = self.engine.event()
        done = self.engine.process(self._sync_proc(ev), name="wal-sync")
        del done
        return ev

    def _sync_proc(self, ev: Event):
        # Transient device faults: retry the fsync with backoff (writeback
        # re-issues the failed range).  Permanent faults — or exhausted
        # retries — fail the waiting write group with the typed error
        # instead of crashing the sync process.
        f = self.current
        try:
            yield from retry_gen(f.sync)
        except IOFaultError as exc:
            ev.fail(exc)
            return
        ev.succeed()

    def sync(self):
        """Generator: explicit fsync of the current log."""
        if self.enabled and self.current is not None:
            yield from self.current.sync()

    def release_up_to(self, number: int) -> None:
        """Delete logs whose memtables are durably flushed (<= number)."""
        kept: List[Tuple[int, SimFile]] = []
        for num, f in self._live:
            if num <= number and f is not self.current:
                self.fs.delete(f.path)
            else:
                kept.append((num, f))
        self._live = kept

    # -- recovery ----------------------------------------------------------------

    def live_logs(self) -> List[Tuple[int, SimFile]]:
        return list(self._live)

    @staticmethod
    def recover_logs(
        fs: SimFileSystem, dirname: str = "wal"
    ) -> Tuple[List[Tuple[int, str, List[WalRecord]]], Dict[str, int]]:
        """Verify and truncate every on-disk log; return the good groups.

        Returns ``(logs, stats)`` where ``logs`` is a list of
        ``(log_number, path, good_records)`` in log order and ``stats``
        counts what validation dropped.  Each log is physically truncated at
        its first bad record, and — mirroring RocksDB's point-in-time
        recovery — replay stops entirely at the first corrupted log: records
        in *later* logs are newer than the corruption point, so replaying
        them would resurrect writes newer than lost ones.
        """
        logs: List[Tuple[int, str, List[WalRecord]]] = []
        stats = {"bad_records": 0, "truncated_logs": 0, "dropped_logs": 0}
        stop = False
        for path in fs.list(prefix=f"{dirname}/"):
            number = int(path.rsplit("/", 1)[-1].split(".")[0])
            f = fs.open(path)
            if stop:
                stats["dropped_logs"] += 1
                truncate_log(f, [], 0)
                continue
            good, good_bytes, bad = scan_log(f)
            if bad:
                stats["bad_records"] += bad
                stats["truncated_logs"] += 1
                truncate_log(f, good, good_bytes)
                stop = True
            logs.append((number, path, good))
        return logs, stats

    @staticmethod
    def replay(fs: SimFileSystem, dirname: str = "wal") -> Iterator[Tuple[bytes, Entry]]:
        """Yield every durable, *checksum-valid* (key, entry), in order.

        Used after :meth:`SimFileSystem.crash` — only records under each
        file's synced watermark remain, and validation truncates each log
        at its first torn or corrupted record.
        """
        logs, _stats = WalManager.recover_logs(fs, dirname)
        for _number, _path, groups in logs:
            for group in groups:
                for key, entry in group:
                    yield key, entry
