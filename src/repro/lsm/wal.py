"""Write-ahead log.

Every write group appends one log record covering the whole batch group
(RocksDB's group commit).  Three modes model the configurations the paper
measures:

* ``buffered`` (default, db_bench's setting): ``write()`` into the page
  cache; the OS writes back asynchronously every ``wal_bytes_per_sync``
  bytes, and appends block only when the device falls behind the dirty
  limit — this is how the WAL still costs 30+ us of p90 latency even though
  no fsync is issued (Finding #4);
* ``sync``: fsync after every group;
* ``off``: Figure 17's WAL-disabled configuration.

The WAL filesystem may live on a different device than the data files —
that is exactly case study C (NVM logging): pass an NVM-backed filesystem.

One log file exists per memtable; when a memtable flushes, its log becomes
obsolete and is deleted.  Records carry the real (key, entry) payloads so
recovery replays actual data (only records below the durable watermark
survive a simulated crash).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import DBError
from repro.fs.filesystem import SimFile, SimFileSystem
from repro.lsm.costs import CostModel
from repro.lsm.format import Entry, wal_record_bytes
from repro.lsm.options import WAL_OFF, WAL_SYNC, Options
from repro.sim.engine import Engine, Event


class WalManager:
    """Owns the numbered log files of one DB instance."""

    def __init__(
        self,
        engine: Engine,
        fs: SimFileSystem,
        options: Options,
        costs: CostModel,
        dirname: str = "wal",
        first_number: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.fs = fs
        self.options = options
        self.costs = costs
        self.dirname = dirname
        self.current: Optional[SimFile] = None
        self.current_number = 0
        self._live: List[Tuple[int, SimFile]] = []  # (number, file), oldest first
        self.bytes_written = 0
        if options.wal_mode != WAL_OFF:
            # Adopt pre-existing (pre-crash) logs: they stay live until the
            # memtable holding their replayed records is flushed.
            existing = sorted(
                (int(p.rsplit("/", 1)[-1].split(".")[0]), p)
                for p in fs.list(prefix=f"{dirname}/")
            )
            for number, path in existing:
                self._live.append((number, fs.open(path)))
                self.current_number = number
            if first_number is None:
                first_number = self.current_number + 1
            self.roll(first_number)

    @property
    def enabled(self) -> bool:
        return self.options.wal_mode != WAL_OFF

    def _path(self, number: int) -> str:
        return f"{self.dirname}/{number:06d}.log"

    def roll(self, number: int) -> None:
        """Start a new log file (called at every memtable switch)."""
        if not self.enabled:
            return
        number = max(number, self.current_number + 1)
        f = self.fs.create(
            self._path(number),
            writeback_bytes=self.options.wal_bytes_per_sync,
            dirty_limit_bytes=2 * self.options.wal_bytes_per_sync,
        )
        self.current = f
        self.current_number = number
        self._live.append((number, f))

    def add_group(
        self, records: List[Tuple[bytes, Entry]]
    ) -> Tuple[int, Optional[Event]]:
        """Append one group-commit record; returns (cpu_ns, wait_event).

        ``cpu_ns`` is the serialization cost the leader must charge.  The
        event — when not None — must be yielded before the write is
        acknowledged: in ``sync`` mode it is durability, in ``buffered``
        mode it only appears under writeback backpressure.
        """
        if not self.enabled:
            return 0, None
        if self.current is None:
            raise DBError("WAL enabled but no live log file")
        nbytes = sum(
            wal_record_bytes(key, entry, self.options.wal_record_overhead)
            for key, entry in records
        )
        cpu = self.costs.wal_serialize(nbytes)
        if self.options.wal_compression:
            # Section VI: compress the log to trade CPU for I/O traffic.
            cpu += (nbytes * self.costs.wal_compress_per_byte_ps) // 1000
            nbytes = max(1, int(nbytes * self.options.wal_compression_ratio))
        self.bytes_written += nbytes
        # Filesystem write-path cost: a write() into a file on a block
        # device does journal/block-layer work that scales with the backing
        # device; on byte-addressable NVM (tmpfs) that path is a bare
        # memcpy.  This is the per-write gap case study C removes.
        cpu += self.fs.device.profile.seq_write_base_ns // 2
        backpressure = self.current.append(nbytes, record=list(records))
        if self.options.wal_mode == WAL_SYNC:
            return cpu, self._sync_event()
        return cpu, backpressure

    def _sync_event(self) -> Event:
        ev = self.engine.event()
        done = self.engine.process(self._sync_proc(ev), name="wal-sync")
        del done
        return ev

    def _sync_proc(self, ev: Event):
        yield from self.current.sync()
        ev.succeed()

    def sync(self):
        """Generator: explicit fsync of the current log."""
        if self.enabled and self.current is not None:
            yield from self.current.sync()

    def release_up_to(self, number: int) -> None:
        """Delete logs whose memtables are durably flushed (<= number)."""
        kept: List[Tuple[int, SimFile]] = []
        for num, f in self._live:
            if num <= number and f is not self.current:
                self.fs.delete(f.path)
            else:
                kept.append((num, f))
        self._live = kept

    # -- recovery ----------------------------------------------------------------

    def live_logs(self) -> List[Tuple[int, SimFile]]:
        return list(self._live)

    @staticmethod
    def replay(fs: SimFileSystem, dirname: str = "wal") -> Iterator[Tuple[bytes, Entry]]:
        """Yield every durable (key, entry) from the on-disk logs, in order.

        Used after :meth:`SimFileSystem.crash` — only records under each
        file's synced watermark remain.
        """
        for path in fs.list(prefix=f"{dirname}/"):
            f = fs.open(path)
            for _nbytes, group in f.records:
                for key, entry in group:
                    yield key, entry
