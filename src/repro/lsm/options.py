"""Database options, mirroring RocksDB 5.17 defaults where the paper relies
on them.

Notable defaults reproduced faithfully:

* ``write_buffer_size`` 64 MB, ``max_write_buffer_number`` 2 — "users often
  impose a limit on the number of in-memory Memtables (2 by default)";
* ``level0_slowdown_writes_trigger`` 20 / ``level0_stop_writes_trigger`` 36 —
  "on-disk Level-0 files (36 by default)";
* ``level0_file_num_compaction_trigger`` 4;
* **no bloom filter** unless configured (``bloom_bits_per_key = 0``), which
  is what makes the paper's Level-0 query overhead visible;
* ``delayed_write_rate`` 16 MB/s with the Algorithm-1 refill interval of
  1024 us and Dec = 0.8 / Inc = 1.25 adaptation;
* a single writer queue with pipelined writes (the paper's Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import OptionsError
from repro.sim.units import KB, MB, us

SKIPLIST_REP = "skiplist"
HASH_REP = "hash"

WAL_OFF = "off"
WAL_BUFFERED = "buffered"  # write() into the page cache; OS flushes later
WAL_SYNC = "sync"  # fsync every write group


@dataclass
class Options:
    """Configuration of a :class:`repro.lsm.db.DB` instance."""

    # --- memtable --------------------------------------------------------
    write_buffer_size: int = 64 * MB
    max_write_buffer_number: int = 2
    memtable_rep: str = SKIPLIST_REP

    # --- level structure ---------------------------------------------------
    num_levels: int = 7
    level0_file_num_compaction_trigger: int = 4
    level0_slowdown_writes_trigger: int = 20
    level0_stop_writes_trigger: int = 36
    max_bytes_for_level_base: int = 256 * MB
    max_bytes_for_level_multiplier: float = 10.0
    target_file_size_base: int = 64 * MB
    target_file_size_multiplier: float = 1.0

    # --- reads ----------------------------------------------------------
    block_size: int = 4 * KB
    block_cache_bytes: int = 8 * MB  # RocksDB's small default cache
    bloom_bits_per_key: int = 0  # 0 = no filter (RocksDB default)
    # Verify SST block checksums on every device read (RocksDB's
    # paranoid_checks).  Off by default: corruption checks then run only
    # for files the fault layer has marked damaged.
    paranoid_checks: bool = False

    # --- write path --------------------------------------------------------
    enable_pipelined_write: bool = True
    allow_concurrent_memtable_write: bool = True
    max_write_batch_group_size: int = 1 * MB
    # Section VI implication: "multiple short write thread queues rather
    # than one single long queue".  1 = RocksDB's single queue.
    write_queue_shards: int = 1
    wal_mode: str = WAL_BUFFERED
    wal_bytes_per_sync: int = 512 * KB
    # Section VI implication: "compressing and condensing the data written
    # to the log could help reduce the I/O traffic".
    wal_compression: bool = False
    wal_compression_ratio: float = 0.6  # compressed size / raw size

    # --- throttling (Algorithm 1) -----------------------------------------
    delayed_write_rate: int = 16 * MB  # bytes/second
    refill_interval_ns: int = us(1024)
    delayed_write_rate_dec: float = 0.8
    delayed_write_rate_inc: float = 1.25
    min_delayed_write_rate: int = 1 * MB
    # Also stall when compaction debt piles up (RocksDB soft limit).
    soft_pending_compaction_bytes_limit: int = 64 * 1024 * MB

    # --- background work -----------------------------------------------------
    max_background_flushes: int = 1
    max_background_compactions: int = 2
    compaction_readahead_bytes: int = 256 * KB
    # Token-bucket cap on background (flush+compaction) write bytes/second;
    # 0 disables (RocksDB's rate_limiter).
    rate_limit_bytes_per_sec: int = 0

    # --- background-error handling (RocksDB ErrorHandler / Resume) ----------
    # Base virtual-time delay before the first auto-resume attempt after a
    # recoverable (soft/hard) background error.
    bg_error_resume_interval_ns: int = us(500)
    # Exponential backoff multiplier between failed resume attempts, and
    # the cap the schedule saturates at.
    bg_error_resume_backoff: float = 2.0
    bg_error_resume_max_interval_ns: int = us(50_000)
    # Failed resume attempts tolerated for a *soft* error before it
    # escalates to hard (read-only).  Hard errors keep retrying forever;
    # only permanent faults and corruption are fatal.
    max_bg_error_resume_count: int = 6
    # Low-space soft stall: when a filesystem quota is configured and free
    # space (minus reserved compaction output) drops to this threshold,
    # writes are delayed before ENOSPC ever fires.  0 = auto (two write
    # buffers' worth).
    low_space_stall_bytes: int = 0

    # --- bookkeeping ---------------------------------------------------------
    wal_record_overhead: int = 12  # per-record header bytes
    memtable_entry_overhead: int = 64  # charged per entry, like RocksDB arena

    # Free-form label used in reports.
    name: str = "default"
    extras: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Raise :class:`OptionsError` on inconsistent settings."""
        if self.write_buffer_size <= 0:
            raise OptionsError("write_buffer_size must be positive")
        if self.max_write_buffer_number < 1:
            raise OptionsError("max_write_buffer_number must be >= 1")
        if self.memtable_rep not in (SKIPLIST_REP, HASH_REP):
            raise OptionsError(f"unknown memtable_rep {self.memtable_rep!r}")
        if self.num_levels < 2:
            raise OptionsError("num_levels must be >= 2")
        if not (
            0
            < self.level0_file_num_compaction_trigger
            <= self.level0_slowdown_writes_trigger
            <= self.level0_stop_writes_trigger
        ):
            raise OptionsError(
                "need 0 < compaction trigger <= slowdown trigger <= stop trigger, got "
                f"{self.level0_file_num_compaction_trigger} / "
                f"{self.level0_slowdown_writes_trigger} / "
                f"{self.level0_stop_writes_trigger}"
            )
        if self.max_bytes_for_level_multiplier <= 1.0:
            raise OptionsError("level multiplier must exceed 1")
        if self.block_size <= 0:
            raise OptionsError("block_size must be positive")
        if self.bloom_bits_per_key < 0:
            raise OptionsError("bloom_bits_per_key must be >= 0")
        if self.wal_mode not in (WAL_OFF, WAL_BUFFERED, WAL_SYNC):
            raise OptionsError(f"unknown wal_mode {self.wal_mode!r}")
        if self.delayed_write_rate <= 0:
            raise OptionsError("delayed_write_rate must be positive")
        if not 0.0 < self.delayed_write_rate_dec < 1.0:
            raise OptionsError("delayed_write_rate_dec must be in (0, 1)")
        if self.delayed_write_rate_inc <= 1.0:
            raise OptionsError("delayed_write_rate_inc must exceed 1")
        if self.max_background_flushes < 1 or self.max_background_compactions < 1:
            raise OptionsError("background job counts must be >= 1")
        if self.write_queue_shards < 1:
            raise OptionsError("write_queue_shards must be >= 1")
        if self.rate_limit_bytes_per_sec < 0:
            raise OptionsError("rate_limit_bytes_per_sec must be >= 0")
        if not 0.0 < self.wal_compression_ratio <= 1.0:
            raise OptionsError("wal_compression_ratio must be in (0, 1]")
        if self.bg_error_resume_interval_ns <= 0:
            raise OptionsError("bg_error_resume_interval_ns must be positive")
        if self.bg_error_resume_backoff < 1.0:
            raise OptionsError("bg_error_resume_backoff must be >= 1")
        if self.bg_error_resume_max_interval_ns < self.bg_error_resume_interval_ns:
            raise OptionsError(
                "bg_error_resume_max_interval_ns must be >= the base interval"
            )
        if self.max_bg_error_resume_count < 1:
            raise OptionsError("max_bg_error_resume_count must be >= 1")
        if self.low_space_stall_bytes < 0:
            raise OptionsError("low_space_stall_bytes must be >= 0")

    def copy(self, **overrides) -> "Options":
        """Return a copy with selected fields replaced (and re-validated)."""
        new = replace(self, **overrides)
        new.validate()
        return new

    def max_bytes_for_level(self, level: int) -> int:
        """Target byte size of a level (L1 = base, multiplier afterwards)."""
        if level < 1:
            raise OptionsError(f"levels below 1 have no byte target: {level}")
        size = float(self.max_bytes_for_level_base)
        for _ in range(level - 1):
            size *= self.max_bytes_for_level_multiplier
        return int(size)

    def low_space_threshold(self) -> int:
        """Free-space level (bytes) below which writes soft-stall."""
        if self.low_space_stall_bytes > 0:
            return self.low_space_stall_bytes
        return 2 * self.write_buffer_size

    def target_file_size(self, level: int) -> int:
        """Target output file size for a compaction into ``level``."""
        size = float(self.target_file_size_base)
        for _ in range(max(0, level - 1)):
            size *= self.target_file_size_multiplier
        return max(1, int(size))
