"""SST file space tracking — RocksDB's ``SstFileManager``.

Two jobs, both only meaningful when the filesystem has a byte quota (the
disk-full model); with no quota every check short-circuits to "plenty of
space" and the manager is free on the hot path:

*Compaction output reservation.*  A compaction can briefly need its full
output size on disk while the inputs still exist.  Before a job starts,
the DB reserves that many bytes here; if free space minus existing
reservations cannot cover it, the compaction is not started and the DB
reports a soft out-of-space error instead of hitting hard ENOSPC halfway
through a multi-file write (RocksDB's ``EnoughRoomForCompaction``).

*Deferred deletions.*  While the MANIFEST is dirty (an edit is applied in
memory but its record is not durable), obsolete files must not be
physically deleted: a crash would recover the *previous* version, which
still references them.  The VersionSet routes deletions through
:meth:`delete_file`, which queues them until the manifest is clean again.

:meth:`low_on_space` is the early-warning signal: when free space drops to
the configured threshold the DB floors its write controller at DELAYED,
trading throughput for time — a soft landing before hard ENOSPC.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lsm.options import Options


class SstFileManager:
    """Tracks reserved compaction space and deferred file deletions."""

    def __init__(self, fs, options: Options) -> None:
        self.fs = fs
        self.options = options
        self.reserved_bytes = 0
        # path -> file size at deferral time (accounting/diagnostics).
        self.pending_deletions: Dict[str, int] = {}
        self._versions = None

    def bind(self, versions) -> None:
        """Attach the VersionSet whose manifest state gates deletions."""
        self._versions = versions

    # -- deletions ----------------------------------------------------------

    def delete_file(self, path: str) -> None:
        """Delete ``path``, deferring while the manifest is dirty."""
        if self._versions is not None and self._versions.manifest_dirty:
            size = 0
            if self.fs.exists(path):
                size = self.fs.open(path).size
            self.pending_deletions[path] = size
            return
        if self.fs.exists(path):
            self.fs.delete(path)

    def flush_pending_deletions(self) -> int:
        """Physically delete deferred files (manifest is durable again)."""
        n = 0
        for path in list(self.pending_deletions):
            del self.pending_deletions[path]
            if self.fs.exists(path):
                self.fs.delete(path)
                n += 1
        return n

    @property
    def pending_deletion_bytes(self) -> int:
        return sum(self.pending_deletions.values())

    # -- space --------------------------------------------------------------

    def try_reserve_compaction(self, nbytes: int) -> bool:
        """Reserve up to ``nbytes`` of output space; False if it won't fit.

        Output size is estimated as the input size (an upper bound for a
        merge that drops shadowed entries).  Always succeeds when the
        filesystem has no quota.
        """
        if self.fs.quota_bytes is None:
            self.reserved_bytes += nbytes
            return True
        if self.fs.free_bytes() - self.reserved_bytes < nbytes:
            return False
        self.reserved_bytes += nbytes
        return True

    def release_compaction(self, nbytes: int) -> None:
        self.reserved_bytes -= nbytes
        if self.reserved_bytes < 0:
            self.reserved_bytes = 0

    def low_on_space(self) -> bool:
        """True when free space (minus reservations) is below the stall
        threshold — the DB floors writes at DELAYED before hard ENOSPC."""
        if self.fs.quota_bytes is None:
            return False
        free = self.fs.free_bytes() - self.reserved_bytes
        return free <= self.options.low_space_threshold()

    def describe(self) -> Dict[str, Optional[int]]:
        return {
            "quota_bytes": self.fs.quota_bytes,
            "reserved_bytes": self.reserved_bytes,
            "pending_deletions": len(self.pending_deletions),
            "pending_deletion_bytes": self.pending_deletion_bytes,
        }
