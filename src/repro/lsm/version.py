"""Version management: levels, file metadata, manifest.

A :class:`Version` is an immutable snapshot of the level structure.  Reads
reference the version they started on; compactions install new versions via
:class:`VersionEdit`.  Files are reference-counted across versions and their
simulated storage is reclaimed only when no live version references them —
the same lifetime rules as RocksDB, which matter here because a GET may be
suspended on a device read while a compaction deletes the file it is reading.

Level invariants (checked by :meth:`Version.check_invariants`):

* Level 0 files are ordered newest-first and may overlap;
* Levels >= 1 are sorted by smallest key with pairwise-disjoint key ranges.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import DBError, IOFaultError, OutOfSpaceError
from repro.fs.filesystem import SimFile, SimFileSystem, TornRecord
from repro.lsm.io_retry import retry_gen
from repro.lsm.options import Options
from repro.lsm.sst import SSTable
from repro.sim.stats import StatsSet


class FileMetadata:
    """A live SST file: table content + its simulated file + refcount."""

    __slots__ = ("number", "sst", "file", "level", "being_compacted", "refs")

    def __init__(self, number: int, sst: SSTable, file: SimFile, level: int) -> None:
        self.number = number
        self.sst = sst
        self.file = file
        self.level = level
        self.being_compacted = False
        self.refs = 0

    @property
    def smallest(self) -> bytes:
        return self.sst.smallest

    @property
    def largest(self) -> bytes:
        return self.sst.largest

    @property
    def file_bytes(self) -> int:
        return self.sst.file_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<File #{self.number} L{self.level} {self.file_bytes}B>"


class VersionEdit:
    """A delta applied to the current version (added/removed files)."""

    def __init__(self) -> None:
        self.added: List[Tuple[int, FileMetadata]] = []  # (level, file)
        self.deleted: List[Tuple[int, int]] = []  # (level, file number)

    def add_file(self, level: int, meta: FileMetadata) -> "VersionEdit":
        self.added.append((level, meta))
        return self

    def delete_file(self, level: int, number: int) -> "VersionEdit":
        self.deleted.append((level, number))
        return self

    def encoded_bytes(self) -> int:
        """Approximate manifest record size for this edit."""
        return 16 + 48 * len(self.added) + 12 * len(self.deleted)


class Version:
    """Immutable snapshot of the LSM level structure."""

    def __init__(self, num_levels: int) -> None:
        self.levels: List[List[FileMetadata]] = [[] for _ in range(num_levels)]
        # Parallel bisect keys for levels >= 1 (smallest key per file).
        self._level_keys: List[List[bytes]] = [[] for _ in range(num_levels)]
        self.refs = 0

    # -- construction ------------------------------------------------------------

    def _finalize(self) -> None:
        for level in range(1, len(self.levels)):
            files = self.levels[level]
            files.sort(key=lambda f: f.smallest)
            self._level_keys[level] = [f.smallest for f in files]

    def check_invariants(self) -> None:
        """Raise DBError if the level structure is malformed."""
        for level, files in enumerate(self.levels):
            if level == 0:
                continue
            for a, b in zip(files, files[1:]):
                if a.largest >= b.smallest:
                    raise DBError(
                        f"L{level} files overlap: #{a.number} and #{b.number}"
                    )

    # -- queries -------------------------------------------------------------------

    def level0_files(self) -> List[FileMetadata]:
        """L0 files newest-first (the lookup order)."""
        return self.levels[0]

    def file_for_key(self, level: int, key: bytes) -> Optional[FileMetadata]:
        """The single file in level >= 1 whose range may contain ``key``."""
        keys = self._level_keys[level]
        idx = bisect_right(keys, key) - 1
        if idx < 0:
            return None
        meta = self.levels[level][idx]
        if meta.largest < key:
            return None
        return meta

    def overlapping_files(
        self, level: int, smallest: bytes, largest: bytes
    ) -> List[FileMetadata]:
        """Files in ``level`` whose ranges intersect [smallest, largest]."""
        files = self.levels[level]
        if level == 0:
            return [f for f in files if f.sst.overlaps(smallest, largest)]
        keys = self._level_keys[level]
        lo = bisect_left(keys, smallest)
        if lo > 0 and files[lo - 1].largest >= smallest:
            lo -= 1
        out = []
        for meta in files[lo:]:
            if meta.smallest > largest:
                break
            out.append(meta)
        return out

    def level_bytes(self, level: int) -> int:
        return sum(f.file_bytes for f in self.levels[level])

    def num_files(self, level: Optional[int] = None) -> int:
        if level is None:
            return sum(len(files) for files in self.levels)
        return len(self.levels[level])

    def all_files(self) -> List[FileMetadata]:
        return [f for files in self.levels for f in files]

    def describe(self) -> str:
        parts = []
        for level, files in enumerate(self.levels):
            if files:
                parts.append(f"L{level}:{len(files)}({self.level_bytes(level) >> 20}MB)")
        return " ".join(parts) if parts else "(empty)"


class VersionSet:
    """Owns the current version, the manifest and file lifetimes."""

    def __init__(
        self,
        fs: SimFileSystem,
        options: Options,
        on_file_dead: Optional[Callable[[FileMetadata], None]] = None,
    ) -> None:
        self.fs = fs
        self.options = options
        self.stats = StatsSet()
        self._on_file_dead = on_file_dead
        self.next_file_number = 1
        self.last_sequence = 0
        self.manifest = fs.create("MANIFEST")
        self.current = Version(options.num_levels)
        self.current.refs += 1
        self._files: Dict[int, FileMetadata] = {}
        self._init_durability_state()

    @classmethod
    def recover(
        cls,
        fs: SimFileSystem,
        options: Options,
        on_file_dead: Optional[Callable[[FileMetadata], None]] = None,
    ) -> "VersionSet":
        """Rebuild a version set by replaying durable manifest records.

        Only records below the manifest's synced watermark survive a
        simulated crash, so the recovered state is exactly the durable one.
        A torn or device-corrupted tail record (fault injection) truncates
        the manifest there: edits past the first bad record are dropped,
        never half-applied.
        """
        vs = cls.__new__(cls)
        vs.fs = fs
        vs.options = options
        vs.stats = StatsSet()
        vs._on_file_dead = on_file_dead
        vs.next_file_number = 1
        vs.last_sequence = 0
        vs.manifest = fs.open("MANIFEST")
        vs.current = Version(options.num_levels)
        vs.current.refs += 1
        vs._files = {}
        vs._init_durability_state()
        good = 0
        offset = 0
        for nbytes, edit in list(vs.manifest.records):
            if isinstance(edit, TornRecord) or (
                vs.manifest.corrupt_ranges
                and vs.manifest.is_corrupt(offset, nbytes)
            ):
                vs.stats.inc("manifest_truncated_records",
                             len(vs.manifest.records) - good)
                vs.manifest.records = vs.manifest.records[:good]
                vs.manifest.size = offset
                vs.manifest.synced_size = min(vs.manifest.synced_size, offset)
                vs.manifest._flushed_size = min(vs.manifest._flushed_size, offset)
                break
            offset += nbytes
            good += 1
            for _level, meta in edit.added:
                meta.refs = 0
                meta.being_compacted = False
            vs.apply(edit)
        for meta in vs.current.all_files():
            vs.next_file_number = max(vs.next_file_number, meta.number + 1)
            vs.last_sequence = max(vs.last_sequence, max(e[0] for e in meta.sst.entries))
        return vs

    def _init_durability_state(self) -> None:
        # Manifest-durability tracking (repro.lsm.error_handler).  The
        # manifest is *dirty* when an applied edit's record is appended (or
        # queued) but not yet durable; while dirty, WAL release and physical
        # file deletion are held off so a crash recovers consistently.
        self.manifest_dirty = False
        # Edits applied in memory whose records could not even be appended
        # (manifest ENOSPC, or ordered behind such a record).  Re-appended
        # in order by sync_manifest().
        self._unlogged_edits: List[VersionEdit] = []
        # Deletion hook (SstFileManager.delete_file defers while dirty);
        # None = delete directly.
        self.file_deleter: Optional[Callable[[str], None]] = None
        # Called when the manifest becomes clean again (flush deferred
        # deletions).
        self.on_manifest_clean: Optional[Callable[[], Any]] = None

    # -- numbering ---------------------------------------------------------------

    def new_file_number(self) -> int:
        num = self.next_file_number
        self.next_file_number += 1
        return num

    # -- version lifetime -----------------------------------------------------------

    def ref_current(self) -> Version:
        """Take a read reference on the current version."""
        v = self.current
        v.refs += 1
        return v

    def unref(self, version: Version) -> None:
        if version.refs <= 0:
            raise DBError("version unref below zero")
        if version is self.current and version.refs <= 1:
            raise DBError("unref would drop the VersionSet's own reference")
        version.refs -= 1
        if version.refs == 0 and version is not self.current:
            self._release_files(version)

    def _release_files(self, version: Version) -> None:
        for meta in version.all_files():
            meta.refs -= 1
            if meta.refs == 0:
                self._reclaim(meta)

    def _reclaim(self, meta: FileMetadata) -> None:
        del self._files[meta.number]
        if self.file_deleter is not None:
            self.file_deleter(meta.file.path)
        elif self.fs.exists(meta.file.path):
            self.fs.delete(meta.file.path)
        if self._on_file_dead is not None:
            self._on_file_dead(meta)
        self.stats.inc("files_reclaimed")

    # -- edits -------------------------------------------------------------------------

    def apply(self, edit: VersionEdit) -> Version:
        """Install ``edit`` on top of the current version.

        Returns the new current version.  The caller separately charges the
        manifest append I/O via :meth:`log_edit`.
        """
        old = self.current
        new = Version(self.options.num_levels)
        deleted = set(edit.deleted)
        for level, files in enumerate(old.levels):
            for meta in files:
                if (level, meta.number) not in deleted:
                    new.levels[level].append(meta)
        for level, meta in edit.added:
            meta.level = level
            if meta.number in self._files and self._files[meta.number] is not meta:
                raise DBError(f"duplicate file number {meta.number}")
            self._files[meta.number] = meta
            if level == 0:
                # L0 is ordered newest-first: fresh flushes go to the front.
                new.levels[0].insert(0, meta)
            else:
                new.levels[level].append(meta)
        new._finalize()
        new.check_invariants()

        for meta in new.all_files():
            meta.refs += 1
        new.refs += 1  # the VersionSet's own reference
        self.current = new
        old.refs -= 1
        if old.refs == 0:
            self._release_files_diff(old, new)
        self.stats.inc("edits_applied")
        return new

    def _release_files_diff(self, old: Version, new: Version) -> None:
        # Files in old keep one ref from new if still present; just unref all.
        self._release_files(old)

    def log_edit(self, edit: VersionEdit):
        """Generator: append + fsync the manifest record for ``edit``.

        The edit object rides along as the record payload so recovery can
        replay the exact durable sequence of edits.  Transient device faults
        on the fsync are retried — losing a manifest sync would orphan the
        just-installed files.
        """
        if self._unlogged_edits:
            # An earlier edit is still waiting to reach the manifest;
            # appending this record now would put the durable edit sequence
            # out of order.  Queue it behind and surface the degraded state
            # (sync_manifest re-appends in order).
            self._unlogged_edits.append(edit)
            self.manifest_dirty = True
            exc = OutOfSpaceError(
                "manifest has unlogged edits pending", path=self.manifest.path
            )
            exc.bg_source = "manifest"
            raise exc
        try:
            ev = self.manifest.append(edit.encoded_bytes(), record=edit)
        except OutOfSpaceError as exc:
            # The record never reached the manifest: queue the edit for
            # ordered re-append.  Crash safety holds because the files this
            # edit deletes are only *deferred*-deleted while dirty, so a
            # recovery from the durable (pre-edit) manifest still finds
            # every file it references.
            self._unlogged_edits.append(edit)
            self.manifest_dirty = True
            exc.bg_source = "manifest"
            raise
        if ev is not None:
            yield ev
        try:
            yield from retry_gen(
                self.manifest.sync, self.stats, "manifest.io_retries"
            )
        except IOFaultError as exc:
            # The record is appended (it sits in the page cache) but not
            # durable: mark the manifest dirty so WAL release and physical
            # file deletion hold off until a later sync covers it.
            self.manifest_dirty = True
            exc.bg_source = "manifest"
            raise
        if self.manifest_dirty:
            self._manifest_clean()

    def sync_manifest(self):
        """Generator: heal manifest durability (the auto-resume probe).

        Re-appends queued edits in order, then fsyncs the manifest;
        success clears the dirty flag and releases deferred deletions.
        Raises on the first failure — the caller backs off and retries.
        """
        while self._unlogged_edits:
            edit = self._unlogged_edits[0]
            ev = self.manifest.append(edit.encoded_bytes(), record=edit)
            self._unlogged_edits.pop(0)
            self.stats.inc("manifest.requeued_edits")
            if ev is not None:
                yield ev
        try:
            yield from self.manifest.sync()
        except IOFaultError as exc:
            exc.bg_source = "manifest"
            raise
        self._manifest_clean()

    def _manifest_clean(self) -> None:
        self.manifest_dirty = False
        self.stats.inc("manifest.resynced")
        if self.on_manifest_clean is not None:
            self.on_manifest_clean()

    # -- derived state -----------------------------------------------------------------

    def compaction_score(self, level: int) -> float:
        v = self.current
        if level == 0:
            return len(v.levels[0]) / self.options.level0_file_num_compaction_trigger
        target = self.options.max_bytes_for_level(level)
        return v.level_bytes(level) / target if target else 0.0

    def pending_compaction_bytes(self) -> int:
        """Bytes above target across levels (RocksDB's debt estimate)."""
        debt = 0
        v = self.current
        for level in range(1, self.options.num_levels - 1):
            excess = v.level_bytes(level) - self.options.max_bytes_for_level(level)
            if excess > 0:
                debt += excess
        trigger = self.options.level0_file_num_compaction_trigger
        extra_l0 = len(v.levels[0]) - trigger
        if extra_l0 > 0:
            debt += sum(f.file_bytes for f in v.levels[0][:extra_l0])
        return debt
