"""Flush: turning an immutable memtable into a Level-0 SST.

A flush streams the sorted memtable contents into a new SST file in
``compaction_readahead_bytes``-sized appends (large sequential writes on the
device), fsyncs it, and installs it at Level 0 via a version edit.  CPU cost
is charged per entry; write I/O goes through the filesystem so flushes
compete with user reads for device channels — the interference the paper
measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DBError
from repro.lsm.io_retry import retry_gen
from repro.lsm.sst import SSTBuilder
from repro.lsm.version import FileMetadata, VersionEdit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.db import DB
    from repro.lsm.memtable import MemTable

_IO_CHUNK = 1 * 1024 * 1024


class FlushJob:
    """One memtable -> one Level-0 file.

    ``track`` names the trace thread the flush span is recorded on (the
    DB passes its worker's track so concurrent flushes don't overlap).
    """

    def __init__(self, db: "DB", memtable: "MemTable", track: str = "flush") -> None:
        self.db = db
        self.memtable = memtable
        self.track = track
        self._path: "str | None" = None  # output path once created

    def run(self):
        """Generator: perform the flush; returns the new FileMetadata.

        On failure the partial output file is deleted (the error handler
        retries with a fresh file number) — unless the failure is tagged
        ``bg_source == "manifest"``, which happens *after* the SST is
        installed: then the file is live and must stay.
        """
        db = self.db
        mt = self.memtable
        if not mt.immutable:
            raise DBError("flushing a mutable memtable")
        if mt.is_empty():
            return None
        mt.flush_in_progress = True
        try:
            meta = yield from self._run_steps()
            return meta
        except GeneratorExit:
            # The job was abandoned (simulation teardown), not failed: no
            # cleanup, no trace events — the world is being discarded.
            raise
        except BaseException as exc:
            path = self._path
            if getattr(exc, "bg_source", "") != "manifest" and path is not None:
                if db.fs.exists(path):
                    db.fs.delete(path)
            db.engine.tracer.span_end(self.track, {"error": type(exc).__name__})
            raise
        finally:
            mt.flush_in_progress = False

    def _run_steps(self):
        db = self.db
        mt = self.memtable
        tracer = db.engine.tracer
        tracer.span_begin(self.track, "flush")
        self._path = None

        number = db.versions.new_file_number()
        builder = SSTBuilder(
            number, db.options.block_size, db.options.bloom_bits_per_key
        )
        for key, entry in mt.sorted_items():
            builder.add(key, entry)
        sst = builder.finish()

        path = f"sst/{number:06d}.sst"
        f = db.fs.create(path)
        self._path = path
        f.payload = sst

        total = sst.file_bytes
        entries = sst.entry_count
        cpu_total = db.costs.flush_entries(entries)
        written = 0
        while written < total:
            chunk = min(_IO_CHUNK, total - written)
            written += chunk
            cpu = cpu_total * chunk // total
            if cpu:
                yield cpu
            if db.rate_limiter is not None:
                pace = db.rate_limiter.request(chunk)
                if pace:
                    yield pace
            backpressure = f.append(chunk)
            if backpressure is not None:
                yield backpressure
        # Writeback faults surface at fsync; transient ones are retried so
        # an injected error burst degrades the flush instead of killing it.
        yield from retry_gen(f.sync, db.stats, "flush.io_retries")

        meta = FileMetadata(number, sst, f, level=0)
        edit = VersionEdit().add_file(0, meta)
        db.versions.apply(edit)
        yield db.costs.manifest_apply_ns
        yield from db.versions.log_edit(edit)

        db.stats.inc("flush.count")
        db.stats.inc("flush.bytes", total)
        db.stats.inc("flush.entries", entries)
        tracer.span_end(self.track, {"bytes": total, "entries": entries})
        return meta
