"""Internal record format shared by memtables, the WAL and SSTs.

An internal entry is the tuple ``(seq, kind, value)`` attached to a key:

* ``seq`` — global sequence number, monotonically increasing per write;
* ``kind`` — :data:`KIND_PUT` or :data:`KIND_DELETE` (tombstone);
* ``value`` — ``bytes`` or :class:`~repro.lsm.value.ValueRef` (PUT only).

Newer entries shadow older ones for the same user key; tombstones are
dropped when a compaction reaches the bottommost level.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.lsm.value import Value, value_size

KIND_DELETE = 0
KIND_PUT = 1

Entry = Tuple[int, int, Optional[Value]]  # (seq, kind, value)


def entry_value_size(entry: Entry) -> int:
    """Logical value bytes of an entry (0 for tombstones)."""
    value = entry[2]
    if value is None:
        return 0
    # Hot path: avoid the generic value_size() dispatch.
    if value.__class__ is bytes:
        return len(value)
    size = getattr(value, "size", None)
    if size is not None:
        return size
    return value_size(value)


def entry_charge(key: bytes, entry: Entry, overhead: int) -> int:
    """Memory charged to the memtable for one entry (RocksDB arena analog)."""
    return len(key) + entry_value_size(entry) + overhead


def entry_file_bytes(key: bytes, entry: Entry) -> int:
    """On-disk logical footprint of one entry inside an SST data block."""
    # key + value + 8B seq/kind varint-ish header
    value = entry[2]
    if value is None:
        return len(key) + 8
    if value.__class__ is bytes:
        return len(key) + len(value) + 8
    return len(key) + entry_value_size(entry) + 8


def wal_record_bytes(key: bytes, entry: Entry, record_overhead: int) -> int:
    """On-disk logical footprint of one entry in the write-ahead log."""
    return len(key) + entry_value_size(entry) + record_overhead
