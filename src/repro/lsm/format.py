"""Internal record format shared by memtables, the WAL and SSTs.

An internal entry is the tuple ``(seq, kind, value)`` attached to a key:

* ``seq`` — global sequence number, monotonically increasing per write;
* ``kind`` — :data:`KIND_PUT` or :data:`KIND_DELETE` (tombstone);
* ``value`` — ``bytes`` or :class:`~repro.lsm.value.ValueRef` (PUT only).

Newer entries shadow older ones for the same user key; tombstones are
dropped when a compaction reaches the bottommost level.
"""

from __future__ import annotations

from zlib import crc32

from typing import Iterable, Optional, Tuple

from repro.lsm.value import Value, value_size

KIND_DELETE = 0
KIND_PUT = 1

Entry = Tuple[int, int, Optional[Value]]  # (seq, kind, value)


def entry_checksum(key: bytes, entry: Entry, crc: int = 0) -> int:
    """Fold one (key, entry) pair into a CRC32 accumulator.

    Covers everything the entry logically serializes to: key bytes, sequence
    number, kind, and the value content (a :class:`~repro.lsm.value.ValueRef`
    contributes its identity rather than its materialized bytes — the two are
    in bijection, so detection power is the same).
    """
    seq, kind, value = entry
    crc = crc32(key, crc)
    crc = crc32(b"%d|%d" % (seq, kind), crc)
    if value is None:
        crc = crc32(b"~", crc)
    elif value.__class__ is bytes:
        crc = crc32(value, crc)
    else:  # ValueRef or bytes-like
        size = getattr(value, "size", None)
        if size is not None:
            crc = crc32(b"@%d:%d" % (getattr(value, "seed", 0), size), crc)
        else:
            crc = crc32(bytes(value), crc)
    return crc


def records_checksum(records: Iterable[Tuple[bytes, Entry]]) -> int:
    """CRC32 over a sequence of (key, entry) pairs (WAL groups, SST blocks)."""
    crc = 0
    for key, entry in records:
        crc = entry_checksum(key, entry, crc)
    return crc


def entry_value_size(entry: Entry) -> int:
    """Logical value bytes of an entry (0 for tombstones)."""
    value = entry[2]
    if value is None:
        return 0
    # Hot path: avoid the generic value_size() dispatch.
    if value.__class__ is bytes:
        return len(value)
    size = getattr(value, "size", None)
    if size is not None:
        return size
    return value_size(value)


def entry_charge(key: bytes, entry: Entry, overhead: int) -> int:
    """Memory charged to the memtable for one entry (RocksDB arena analog)."""
    return len(key) + entry_value_size(entry) + overhead


def entry_file_bytes(key: bytes, entry: Entry) -> int:
    """On-disk logical footprint of one entry inside an SST data block."""
    # key + value + 8B seq/kind varint-ish header
    value = entry[2]
    if value is None:
        return len(key) + 8
    if value.__class__ is bytes:
        return len(key) + len(value) + 8
    size = getattr(value, "size", None)
    if size is not None:
        return len(key) + size + 8
    return len(key) + value_size(value) + 8


def wal_record_bytes(key: bytes, entry: Entry, record_overhead: int) -> int:
    """On-disk logical footprint of one entry in the write-ahead log."""
    return len(key) + entry_value_size(entry) + record_overhead
