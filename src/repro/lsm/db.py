"""The key-value store facade (RocksDB analog).

All public operations are *generators* meant to run inside simulated
processes::

    engine = Engine()
    db = DB(engine, fs, Options())

    def client():
        yield from db.put(b"k", b"v")
        value = yield from db.get(b"k")

    engine.process(client())
    engine.run()

For scripting convenience, :meth:`DB.run_sync` drives a single operation to
completion on an otherwise idle engine.

Write path (paper Algorithms 1 and 2): throttle -> join writer queue ->
leader forms group, switches memtable if full, appends one WAL record for
the group -> members apply their batches to the memtable concurrently.
Read path: memtables (newest first) -> L0 files newest-first (every file
whose range covers the key is searched — the paper's L0 query overhead) ->
binary-searched single file per deeper level; block cache and page cache
short-circuit device reads.
"""

from __future__ import annotations

import zlib
from typing import Iterator, List, Optional, Tuple

from repro.errors import (
    CorruptionError,
    DBClosedError,
    DBError,
    IOFaultError,
    OutOfSpaceError,
)
from repro.fs.filesystem import SimFile, SimFileSystem
from repro.lsm.block_cache import BlockCache
from repro.lsm.compaction import CompactionJob, CompactionPicker
from repro.lsm.costs import DEFAULT_COSTS, CostModel
from repro.lsm.error_handler import SEV_SOFT, ErrorHandler
from repro.lsm.flush import FlushJob
from repro.lsm.format import KIND_DELETE, KIND_PUT, Entry
from repro.lsm.io_retry import IO_RETRIES, IO_RETRY_BACKOFF_NS
from repro.lsm.memtable import MemTable, MemTableList
from repro.lsm.options import WAL_SYNC, Options
from repro.lsm.pipelined_write import ROLE_LEADER, WriteQueue, Writer
from repro.lsm.sst_file_manager import SstFileManager
from repro.lsm.value import Value, materialize, value_size
from repro.lsm.version import FileMetadata, VersionSet
from repro.lsm.wal import WalManager, scan_log, truncate_log
from repro.lsm.write_batch import WriteBatch
from repro.lsm.write_controller import (
    DELAYED,
    NORMAL,
    STOPPED,
    StallMetrics,
    WriteController,
)
from repro.sim.engine import Engine
from repro.sim.resources import Store
from repro.sim.rng import RandomStream
from repro.sim.stats import StatsSet

_CLOSE = object()


def _manual_compaction(level, inputs, lower):
    """Build a Compaction object for :meth:`DB.compact_range`."""
    from repro.lsm.compaction import Compaction

    return Compaction(level, level + 1, list(inputs), list(lower))


class DB:
    """An LSM-tree key-value store on a simulated filesystem."""

    def __init__(
        self,
        engine: Engine,
        fs: SimFileSystem,
        options: Optional[Options] = None,
        costs: Optional[CostModel] = None,
        wal_fs: Optional[SimFileSystem] = None,
        rng: Optional[RandomStream] = None,
        controller: Optional[WriteController] = None,
        block_cache: Optional[BlockCache] = None,
        write_buffer_manager=None,
        cache_namespace: int = 0,
    ) -> None:
        self.engine = engine
        self.fs = fs
        self.options = options or Options()
        self.options.validate()
        self.costs = costs or DEFAULT_COSTS
        self.rng = rng or RandomStream(0, "db")
        self.stats = StatsSet()
        # Hot-path histogram handles: stats.reset() clears histograms in
        # place, so these references stay registered across resets.
        self._write_latency = self.stats.histogram("write.latency")
        self._read_latency = self.stats.histogram("read.latency")
        self._closed = False
        # Per-DB memtable counter for RNG stream naming: forking off the
        # process-global MemTable._ids would make a run's draws depend on
        # whatever ran earlier in the same process, breaking bit-identity
        # between serial and parallel (--jobs) sweeps.
        self._memtable_seq = 0

        # A cache may be shared across shards / column families: sharers
        # pass one BlockCache plus a distinct integer namespace so their
        # per-DB SST numbering cannot collide in the joint key space.
        self._cache_ns = cache_namespace
        self.block_cache = (
            block_cache
            if block_cache is not None
            else BlockCache(self.options.block_cache_bytes)
        )
        # Optional joint memtable budget (repro.lsm.write_buffer_manager).
        self.write_buffer_manager = write_buffer_manager
        if write_buffer_manager is not None:
            write_buffer_manager.register(self)
        recovering = fs.exists("MANIFEST")
        if recovering:
            self.versions = VersionSet.recover(
                fs, self.options, on_file_dead=self._on_file_dead
            )
            self.stats.inc("recovery.files", self.versions.current.num_files())
        else:
            self.versions = VersionSet(
                fs, self.options, on_file_dead=self._on_file_dead
            )
        self._wal_fs = wal_fs or fs
        pre_crash_logs = [
            p for p in self._wal_fs.list(prefix="wal/")
        ] if recovering else []
        self.wal = WalManager(
            engine, self._wal_fs, self.options, self.costs, dirname="wal"
        )
        self.memtables = MemTableList(self._new_memtable)
        self.memtables.mutable.min_log_number = self.wal.current_number
        if recovering:
            self._replay_wal(pre_crash_logs)

        self.controller = controller or WriteController(engine, self.options)
        # Background-error state machine + space tracking (repro.lsm.
        # error_handler).  The SstFileManager routes physical file deletion
        # so obsolete files are only removed once the manifest edit that
        # obsoleted them is durable.
        self.error_handler = ErrorHandler(self)
        self.sst_file_manager = SstFileManager(fs, self.options)
        self.sst_file_manager.bind(self.versions)
        self.versions.file_deleter = self.sst_file_manager.delete_file
        self.versions.on_manifest_clean = (
            self.sst_file_manager.flush_pending_deletions
        )
        # One writer queue by default (RocksDB); optionally sharded per the
        # paper's Section VI implication on write-queue parallelism.
        self.write_queues = [
            WriteQueue(
                engine,
                self.options.max_write_batch_group_size,
                self.options.enable_pipelined_write,
            )
            for _ in range(self.options.write_queue_shards)
        ]
        self.write_queue = self.write_queues[0]
        self.picker = CompactionPicker(self.options)
        self.rate_limiter = None
        if self.options.rate_limit_bytes_per_sec > 0:
            from repro.lsm.rate_limiter import RateLimiter

            self.rate_limiter = RateLimiter(
                engine, self.options.rate_limit_bytes_per_sec
            )

        self._flush_store: Store = Store(engine)
        self._compaction_store: Store = Store(engine)
        self._compaction_tokens = 0
        self._active_compactions = 0
        self._active_flushes = 0
        self._workers = []
        for i in range(self.options.max_background_flushes):
            self._workers.append(
                engine.process(self._flush_worker(i), name=f"flush-{i}")
            )
        for i in range(self.options.max_background_compactions):
            self._workers.append(
                engine.process(self._compaction_worker(i), name=f"compact-{i}")
            )
        self._update_stall_state()

    # ------------------------------------------------------------------ setup

    def _new_memtable(self) -> MemTable:
        self._memtable_seq += 1
        mt = MemTable(
            rep=self.options.memtable_rep,
            entry_overhead=self.options.memtable_entry_overhead,
            rng=self.rng.fork(f"memtable/{self._memtable_seq}"),
        )
        mt.min_log_number = self.wal.current_number if hasattr(self, "wal") else 0
        return mt

    def _on_file_dead(self, meta: FileMetadata) -> None:
        self.block_cache.erase_file(meta.number, namespace=self._cache_ns)

    def _replay_wal(self, pre_crash_logs: List[str]) -> None:
        """Re-insert durable, checksum-valid records of pre-crash logs.

        Each log is verified record by record and physically truncated at
        its first bad record — a torn tail left by a mid-record crash, a
        device-corrupted range, or a checksum mismatch.  Replay then stops
        entirely (point-in-time recovery): records in later logs are newer
        than the corruption point, so replaying them would resurrect writes
        newer than lost ones.

        The old logs stay live (adopted by the WalManager) until the
        memtable holding their replayed records reaches Level 0, so a second
        crash before that flush still recovers everything.
        """
        count = 0
        min_old = None
        stop = False
        for path in sorted(pre_crash_logs):
            f = self._wal_fs.open(path)
            number = int(path.rsplit("/", 1)[-1].split(".")[0])
            min_old = number if min_old is None else min(min_old, number)
            if stop:
                truncate_log(f, [], 0)
                self.stats.inc("recovery.wal_dropped_logs")
                continue
            good, good_bytes, bad = scan_log(f)
            if bad:
                truncate_log(f, good, good_bytes)
                self.stats.inc("recovery.wal_bad_records", bad)
                self.stats.inc("recovery.wal_truncated_logs")
                stop = True
            for group in good:
                for key, entry in group:
                    self.memtables.mutable.add(key, entry)
                    self.versions.last_sequence = max(
                        self.versions.last_sequence, entry[0]
                    )
                    count += 1
        if count and min_old is not None:
            self.memtables.mutable.min_log_number = min_old
        self.stats.inc("recovery.wal_records", count)

    # --------------------------------------------------------------- lifecycle

    def _check_open(self) -> None:
        if self._closed:
            raise DBClosedError("operation on a closed DB")

    def close(self):
        """Generator: stop background workers (pending work is abandoned)."""
        self._check_open()
        self._closed = True
        for _ in range(self.options.max_background_flushes):
            self._flush_store.put(_CLOSE)
        for _ in range(self.options.max_background_compactions):
            self._compaction_store.put(_CLOSE)
        yield 0

    def run_sync(self, operation):
        """Drive one operation generator to completion (scripting helper).

        Runs the engine until the operation finishes; background work keeps
        running during (and possibly after) it.
        """
        proc = self.engine.process(operation, name="run_sync")
        # Join the process so failures re-raise here, not from Engine.run().
        proc.callbacks.append(lambda _ev: None)
        while not proc.done:
            if self.engine.peek() is None:
                raise DBError("operation cannot make progress (engine idle)")
            self.engine.run(until=self.engine.peek())
        if proc.exception is not None:
            raise proc.exception
        return proc.value

    # ------------------------------------------------------------------- writes

    def put(self, key: bytes, value: Value):
        """Insert/overwrite one key; returns the write generator.

        A thin non-generator wrapper (as are :meth:`delete` and
        :meth:`write`): building the op list here instead of routing through
        a :class:`WriteBatch` skips an allocation and a size-dispatch per op,
        and returning the inner generator directly adds no frame to its
        (many) resumes.
        """
        if not isinstance(key, bytes):
            raise DBError(f"keys must be bytes, got {type(key).__name__}")
        return self._write_ops(
            [(KIND_PUT, key, value)], len(key) + value_size(value)
        )

    def delete(self, key: bytes):
        """Write a tombstone for one key; returns the write generator."""
        if not isinstance(key, bytes):
            raise DBError(f"keys must be bytes, got {type(key).__name__}")
        return self._write_ops([(KIND_DELETE, key, None)], len(key))

    def write(self, batch: WriteBatch):
        """Apply a batch atomically; returns the write generator.

        The batch's ops are copied: the write path re-keys them in place
        while the caller may reuse or clear the batch.
        """
        return self._write_ops(list(batch.ops), batch.data_bytes)

    def _write_ops(self, ops: List[Tuple[int, bytes, Optional[Value]]], data_bytes: int):
        """Generator: apply ``ops`` atomically (Algorithms 1 + 2).

        ``ops`` is owned by this generator.  Leader duties (group formation,
        memtable switch, WAL append) and the memtable phase are inlined
        rather than delegated to sub-generators: this generator is resumed
        several times per write at benchmark scale, and every level of
        ``yield from`` nesting adds a frame hop to each resume.  The effect
        order is unchanged.
        """
        if self._closed:
            raise DBClosedError("operation on a closed DB")
        if not ops:
            return 0
        engine = self.engine
        stats = self.stats
        controller = self.controller
        if self.error_handler.severity:
            self.error_handler.check_writable()  # hard/fatal -> read-only
        start = engine._now

        # --- Algorithm 1: the write control process -------------------------
        while controller.state == STOPPED:
            stats.inc("stall.stops_hit")
            yield controller.stop_wait_event()
            if self.error_handler.severity:
                self.error_handler.check_writable()
        if controller.state == DELAYED:
            controller.on_delayed_write(self._backlog_bytes())
            delay = controller.get_delay(data_bytes)
            if delay > 0:
                stats.inc("stall.delays_hit")
                stats.inc("stall.delay_ns", delay)
                yield delay
            while controller.state == STOPPED:
                stats.inc("stall.stops_hit")
                yield controller.stop_wait_event()
                if self.error_handler.severity:
                    self.error_handler.check_writable()

        # --- Algorithm 2: the pipelined write process -------------------------
        writer = Writer(ops, data_bytes)
        queues = self.write_queues
        queue = (
            queues[0]
            if len(queues) == 1
            else queues[zlib.crc32(ops[0][1]) % len(queues)]
        )
        writer.queue = queue
        if queue.join(writer):
            role = ROLE_LEADER
        else:
            role = yield writer.event

        costs = self.costs
        trace_start = -1
        trace_len = 0
        if role == ROLE_LEADER:
            # ---- leader duties: group formation, memtable switch, WAL ----
            group_start = engine._now
            group = queue.form_group(writer)
            try:
                cpu = (
                    costs.write_group_leader_ns
                    + costs.write_group_per_writer_ns * len(group.writers)
                )

                # Switch the memtable between groups, never inside one (keeps
                # the WAL/memtable correspondence crash-safe).  The cheap
                # memtable-full test is inlined; the write-buffer-manager arm
                # (with its ticker) stays in _memtable_should_switch(), which
                # re-checks the first condition harmlessly.
                if (
                    self.memtables.mutable.charged_bytes
                    >= self.options.write_buffer_size
                    or (
                        self.write_buffer_manager is not None
                        and self._memtable_should_switch()
                    )
                ):
                    yield from self._switch_memtable()

                # Assign sequence numbers in queue order.
                seq = self.versions.last_sequence
                wal_records: List[Tuple[bytes, Entry]] = []
                for member in group.writers:
                    entries: List[Tuple[bytes, Entry]] = []
                    for kind, key, value in member.records:
                        seq += 1
                        entries.append(
                            (key, (seq, kind, value if kind == KIND_PUT else None))
                        )
                    member.records = entries  # now (key, entry) pairs
                    wal_records.extend(entries)
                self.versions.last_sequence = seq

                wal_number = self.wal.current_number
                for member in group.writers:
                    member.wal_number = wal_number
                wal_cpu, wal_event = self.wal.add_group(wal_records)
                total_cpu = cpu + wal_cpu
                if total_cpu:
                    yield total_cpu
                if wal_event is not None:
                    yield wal_event
            except GeneratorExit:
                # The writer was abandoned (simulation teardown): its members
                # are being discarded too — no fail fan-out, no events.
                raise
            except BaseException as exc:
                # The group never reaches the memtable phase: fail the waiting
                # members (they re-raise from their own write()) and hand
                # leadership to the next writer, else the queue hangs forever.
                queue.fail_group(group, exc)
                if isinstance(exc, (IOFaultError, OutOfSpaceError)):
                    self.error_handler.on_background_error("wal", exc)
                raise

            queue.wal_phase_done(group)
            if engine._trace:
                trace_start = group_start
                trace_len = len(group.writers)

        # ---- memtable phase: one group member applies its batch ----
        cpu = 0
        mt = self.memtables.mutable
        # If a later group switched the memtable while we were waking up,
        # our records live in an older WAL: pin it via min_log_number.
        if writer.wal_number and self.wal.enabled:
            if writer.wal_number < mt.min_log_number:
                mt.min_log_number = writer.wal_number
        memtable_insert = costs.memtable_insert
        for key, entry in writer.records:
            cpu += memtable_insert(mt.entry_count)
            mt.add(key, entry)
        if cpu:
            yield cpu
        queue.member_done(writer.group)
        if trace_start >= 0:
            engine.tracer.write_group(trace_start, engine._now, trace_len)

        stats.inc("puts", len(ops))
        latency = engine._now - start
        self._write_latency.record(latency)
        return latency

    def mean_waiting_writers(self) -> float:
        """Time-averaged writers waiting across all queue shards (Fig. 16)."""
        return sum(q.mean_waiting() for q in self.write_queues)

    # ------------------------------------------------------- batched fast path

    def put_fast(self, key: bytes, value: Value) -> Optional[int]:
        """Non-generator twin of :meth:`put` for the no-yield-needed case.

        Executes a solo-leader, non-stalled, buffered-WAL put entirely
        inline, advancing the clock directly instead of round-tripping
        through the engine for its two CPU sleeps.  Returns the op latency,
        or ``None`` when any Algorithm-1/2 state makes the op observable by
        the rest of the simulated world — a stall, a queued writer, a due
        memtable switch, WAL sync/replication/writeback, tracing, or another
        occurrence scheduled inside the op's time span — in which case the
        caller must fall back to ``yield from db.put(...)`` (eligibility is
        checked before any mutation, so falling back is always safe).

        Effect order replicates the per-op path exactly; the only divergence
        is virtual-time bookkeeping the kernel would have done for us.
        """
        engine = self.engine
        if (
            self._closed
            or engine._trace
            or self.error_handler.severity
            or self.controller.state != NORMAL
            or len(self.write_queues) != 1
        ):
            return None
        queue = self.write_queues[0]
        if queue._has_leader or queue._waiting:
            return None
        options = self.options
        mt = self.memtables.mutable
        if mt.charged_bytes >= options.write_buffer_size:
            return None  # memtable switch due
        wbm = self.write_buffer_manager
        if wbm is not None:
            # Mirror should_flush()'s early-False arm without calling it: a
            # True return increments its flush_triggers ticker, which the
            # fallback path would then double-count.
            usage = wbm.memory_usage()
            if usage > wbm.peak_usage:
                wbm.peak_usage = usage
            mutable = wbm.mutable_usage()
            if mutable > wbm.mutable_limit or (
                usage >= wbm.buffer_size and mutable >= wbm.buffer_size // 2
            ):
                return None
        costs = self.costs
        wal = self.wal
        wal_cpu = 0
        append_bytes = 0
        if wal.enabled:
            if wal.on_group is not None or options.wal_mode == WAL_SYNC:
                return None
            f = wal.current
            if f is None or f.__class__ is not SimFile:
                return None  # fault-injecting file: keep the audited path
            if value is None:
                vsize = 0
            elif value.__class__ is bytes:
                vsize = len(value)
            else:
                vsize = getattr(value, "size", None)
                if vsize is None:
                    return None  # odd value type: keep the audited path
            append_bytes = len(key) + vsize + options.wal_record_overhead
            wal_cpu = costs.wal_serialize(append_bytes)
            if options.wal_compression:
                wal_cpu += (
                    append_bytes * costs.wal_compress_per_byte_ps
                ) // 1000
                append_bytes = max(
                    1, int(append_bytes * options.wal_compression_ratio)
                )
            wal_cpu += wal._seq_write_half_ns
            writeback_at = (
                f.writeback_bytes
                if f.writeback_bytes is not None
                else f.fs.writeback_bytes
            )
            if f.size + append_bytes - f._flushed_size >= writeback_at:
                return None  # append would start a writeback flush
        total_cpu = (
            self.costs.write_group_leader_ns
            + self.costs.write_group_per_writer_ns
            + wal_cpu
        )
        mem_cpu = costs.memtable_insert(mt.entry_count)
        wake = engine._now + total_cpu + mem_cpu
        if (
            engine._nowq
            or (engine._heap and engine._heap[0][0] <= wake)
            or wake > engine.run_limit
        ):
            return None  # something else runs inside the op's span
        # Eligible: from here on, every effect matches the per-op path.
        start = engine._now
        writer = Writer([(KIND_PUT, key, value)], len(key) + value_size(value))
        writer.queue = queue
        queue.join(writer)  # solo -> leader, no gauge touch
        group = queue.form_group(writer)
        seq = self.versions.last_sequence + 1
        entry: Entry = (seq, KIND_PUT, value)
        writer.records = [(key, entry)]
        self.versions.last_sequence = seq
        writer.wal_number = wal.current_number
        try:
            got_cpu, wal_event = wal.add_group(writer.records)
        except GeneratorExit:
            raise
        except BaseException as exc:
            queue.fail_group(group, exc)
            if isinstance(exc, (IOFaultError, OutOfSpaceError)):
                self.error_handler.on_background_error("wal", exc)
            raise
        if wal_event is not None or got_cpu != wal_cpu:
            # Excluded by the pre-checks; a mismatch here is a bug, not a
            # fallback case (state is already mutated).
            raise DBError("fast-path put diverged from wal.add_group")
        engine._now += total_cpu
        queue.wal_phase_done(group)
        if wal.enabled and writer.wal_number:
            mt.min_log_number = min(mt.min_log_number, writer.wal_number)
        mt.add(key, entry)
        engine._now += mem_cpu
        queue.member_done(group)
        self.stats.inc("puts", 1)
        latency = engine._now - start
        self._write_latency.record(latency)
        return latency

    def get_fast(self, key: bytes) -> Optional[Tuple[bool, Optional[Value]]]:
        """Non-generator twin of :meth:`get` for memtable-hit lookups.

        Returns ``(found, value)`` on a memtable hit whose CPU span can be
        warped past (nothing else scheduled inside it), else ``None`` — the
        caller falls back to ``yield from db.get(...)``.  Memtable probing
        is pure, so bailing after a probe is side-effect-free; misses always
        fall back (the SST path does I/O and mutates the block cache LRU).
        """
        if self._closed:
            return None
        engine = self.engine
        costs = self.costs
        mts = self.memtables
        table = mts.mutable
        cpu = costs.memtable_lookup(table.entry_count)
        entry = table.get(key)
        if entry is None:
            if not mts.immutables:
                return None
            for table in reversed(mts.immutables):
                cpu += costs.memtable_lookup(table.entry_count)
                entry = table.get(key)
                if entry is not None:
                    break
            else:
                return None
        wake = engine._now + cpu
        if (
            engine._nowq
            or (engine._heap and engine._heap[0][0] <= wake)
            or wake > engine.run_limit
        ):
            return None
        engine._now = wake
        stats = self.stats
        stats.inc("gets")
        stats.inc("get.memtable_hit")
        result = entry[2] if entry[1] == KIND_PUT else None
        if result is None:
            stats.inc("get.tombstone")
        self._read_latency.record(cpu)
        return True, result

    def _memtable_should_switch(self) -> bool:
        """Mutable memtable full, or the shared write-buffer budget says so."""
        if self.memtables.mutable.charged_bytes >= self.options.write_buffer_size:
            return True
        if (
            self.write_buffer_manager is not None
            and self.write_buffer_manager.should_flush(self)
        ):
            self.stats.inc("memtable.wbm_switches")
            return True
        return False

    def _switch_memtable(self):
        """Seal the mutable memtable; stall if too many immutables pend."""
        limit = max(1, self.options.max_write_buffer_number - 1)
        while len(self.memtables.immutables) >= limit:
            self._update_stall_state()
            if self.controller.state != STOPPED:
                break  # a flush finished in between
            if self.error_handler.severity:
                self.error_handler.check_writable()
            self.stats.inc("stall.memtable_stops")
            yield self.controller.stop_wait_event()
        sealed = self.memtables.switch()
        if self.wal.enabled:
            try:
                self.wal.roll(self.versions.new_file_number())
            except (IOFaultError, OutOfSpaceError) as exc:
                # Could not create the next log file: keep appending to the
                # current one (correct, just a bigger log) and degrade.
                self.error_handler.on_background_error("wal", exc)
            self.memtables.mutable.min_log_number = self.wal.current_number
        self._flush_store.put(sealed)
        self.stats.inc("memtable.switches")
        self.engine.tracer.instant("db", "memtable.switch")
        self._update_stall_state()

    def apply_replicated(self, records: List[Tuple[bytes, Entry]]):
        """Generator: apply leader-assigned records on a follower.

        ``records`` are ``(key, entry)`` pairs whose entries already carry
        the *leader's* sequence numbers — the replication twin of the leader
        write path: append one group record to the local WAL (syncing per
        ``wal_mode``), insert into the memtable, advance ``last_sequence``.
        Groups must be applied in leader-log order; the cluster layer's
        per-follower sequence tracking guarantees that.
        """
        self._check_open()
        if not records:
            return
        if self.error_handler.severity:
            self.error_handler.check_writable()
        if self._memtable_should_switch():
            yield from self._switch_memtable()
        wal_number = self.wal.current_number
        try:
            wal_cpu, wal_event = self.wal.add_group(records)
            if wal_cpu:
                yield wal_cpu
            if wal_event is not None:
                yield wal_event
        except GeneratorExit:
            raise
        except BaseException as exc:
            if isinstance(exc, (IOFaultError, OutOfSpaceError)):
                self.error_handler.on_background_error("wal", exc)
            raise
        mt = self.memtables.mutable
        if self.wal.enabled and wal_number:
            mt.min_log_number = min(mt.min_log_number, wal_number)
        cpu = 0
        for key, entry in records:
            cpu += self.costs.memtable_insert(mt.entry_count)
            mt.add(key, entry)
        if cpu:
            yield cpu
        last = records[-1][1][0]
        if last > self.versions.last_sequence:
            self.versions.last_sequence = last
        self.stats.inc("replicated_applies")

    # -------------------------------------------------------------------- reads

    def get(self, key: bytes):
        """Generator: point lookup; returns the value, or None.

        Memtable probing, the level walk, and the per-SST search are all
        inlined in one generator frame: an IO-bound lookup suspends on its
        device read several frames deep otherwise, and every level of
        ``yield from`` nesting adds a frame hop to each resume (plus a
        generator allocation per probed file).  Effect order is unchanged.
        """
        self._check_open()
        engine = self.engine
        stats = self.stats
        costs = self.costs
        start = engine._now
        stats.inc("gets")
        cpu = 0
        result: Optional[Value] = None
        found = False

        # 1. memtables, newest first (iterated in place: building the
        # newest-first list allocates once per lookup at benchmark scale).
        mts = self.memtables
        table = mts.mutable
        cpu += costs.memtable_lookup(table.entry_count)
        entry = table.get(key)
        if entry is None and mts.immutables:
            for table in reversed(mts.immutables):
                cpu += costs.memtable_lookup(table.entry_count)
                entry = table.get(key)
                if entry is not None:
                    break
        if entry is not None:
            found = True
            result = entry[2] if entry[1] == KIND_PUT else None
            stats.inc("get.memtable_hit")

        if not found:
            version = self.versions.ref_current()
            range_check = costs.sst_range_check_ns
            bloom_probe = costs.bloom_probe_ns
            cache_lookup = costs.block_cache_lookup_ns
            block_decode = costs.block_decode_ns
            block_cache = self.block_cache
            cache_ns = self._cache_ns
            paranoid = self.options.paranoid_checks
            entry = None
            try:
                # Level 0: every file whose range covers the key must be
                # searched, newest first — the paper's L0 query overhead.
                for meta in version.level0_files():
                    cpu += range_check
                    sst = meta.sst
                    if not sst.key_in_range(key):
                        continue
                    stats.inc("get.l0_probes")
                    if sst.bloom is not None:
                        cpu += bloom_probe
                        if not sst.may_contain(key):
                            stats.inc("bloom.useful")
                            continue
                    cpu += costs.sst_search(sst.entry_count)
                    block_idx = sst.block_for_key(key)
                    cpu += cache_lookup
                    cache_key = (cache_ns, sst.number, block_idx)
                    if not block_cache.lookup(cache_key):
                        if cpu:
                            yield cpu
                        cpu = 0
                        offset, nbytes = sst.block_span(block_idx)
                        try:
                            io_event = meta.file.read(offset, nbytes)
                        except IOFaultError as exc:
                            io_event = yield from self._retry_block_read(
                                meta, offset, nbytes, exc
                            )
                        if io_event is not None:
                            yield io_event
                            stats.inc("get.block_device_reads")
                        if meta.file.corrupt_ranges or paranoid:
                            sst.verify_block(block_idx, meta.file)
                        cpu += block_decode
                        block_cache.insert(cache_key, nbytes)
                    entry = sst.find(key)
                    if entry is not None:
                        stats.inc("get.l0_hit")
                        break
                if entry is None:
                    # Deeper levels: at most one candidate file per level.
                    for level in range(1, self.options.num_levels):
                        meta = version.file_for_key(level, key)
                        cpu += range_check
                        if meta is None:
                            continue
                        sst = meta.sst
                        if sst.bloom is not None:
                            cpu += bloom_probe
                            if not sst.may_contain(key):
                                stats.inc("bloom.useful")
                                continue
                        cpu += costs.sst_index_search(sst.entry_count)
                        block_idx = sst.block_for_key(key)
                        cpu += cache_lookup
                        cache_key = (cache_ns, sst.number, block_idx)
                        if not block_cache.lookup(cache_key):
                            if cpu:
                                yield cpu
                            cpu = 0
                            offset, nbytes = sst.block_span(block_idx)
                            try:
                                io_event = meta.file.read(offset, nbytes)
                            except IOFaultError as exc:
                                io_event = yield from self._retry_block_read(
                                    meta, offset, nbytes, exc
                                )
                            if io_event is not None:
                                yield io_event
                                stats.inc("get.block_device_reads")
                            if meta.file.corrupt_ranges or paranoid:
                                sst.verify_block(block_idx, meta.file)
                            cpu += block_decode
                            block_cache.insert(cache_key, nbytes)
                        entry = sst.find(key)
                        if entry is not None:
                            stats.inc(
                                f"get.l{level}_hit"
                                if level <= 2
                                else "get.deep_hit"
                            )
                            break
                # Pending search CPU is charged before the version ref is
                # released (matching the delegated-search order): a sleep
                # after unref could let a concurrent compaction purge files
                # this lookup was still pinning.
                if cpu:
                    yield cpu
                cpu = 0
                if entry is not None:
                    found = True
                    result = entry[2] if entry[1] == KIND_PUT else None
            finally:
                self.versions.unref(version)

        if cpu:
            yield cpu
        if not found or result is None:
            stats.inc("get.miss" if not found else "get.tombstone")
        self._read_latency.record(engine._now - start)
        return result

    def _retry_block_read(self, meta: FileMetadata, offset: int, nbytes: int, exc):
        """Generator: retry a faulted SST block read with backoff.

        Transient injected device faults are retried (RocksDB's retryable
        background errors); permanent ones propagate as IOFaultError.  Only
        materialized after a fault, keeping the fault-free read path
        allocation-free.  Retry accounting matches retry_call exactly.
        """
        attempt = 0
        while True:
            if not exc.transient:
                raise exc
            if attempt >= IO_RETRIES:
                self.stats.inc("get.io_retries_exhausted")
                raise exc
            self.stats.inc("get.io_retries")
            yield IO_RETRY_BACKOFF_NS << attempt
            attempt += 1
            try:
                return meta.file.read(offset, nbytes)
            except IOFaultError as next_exc:
                exc = next_exc

    def multi_get(self, keys: List[bytes]):
        """Generator: point-lookup several keys; returns a list of values."""
        out = []
        for key in keys:
            value = yield from self.get(key)
            out.append(value)
        return out

    def scan(self, start: bytes, end: bytes, limit: Optional[int] = None):
        """Generator: range scan [start, end); returns [(key, value)].

        Merges memtables and every overlapping SST.  I/O is charged for the
        data blocks each consulted table contributes.
        """
        self._check_open()
        if end <= start:
            return []
        sources: List[Iterator[Tuple[bytes, Entry]]] = []
        for table in self.memtables.tables_newest_first():
            sources.append(
                (k, e) for k, e in table.sorted_items() if start <= k < end
            )
        version = self.versions.ref_current()
        try:
            consulted: List[FileMetadata] = []
            for meta in version.level0_files():
                if meta.sst.overlaps(start, end):
                    consulted.append(meta)
            for level in range(1, self.options.num_levels):
                consulted.extend(version.overlapping_files(level, start, end))
            io_events = []
            for meta in consulted:
                sources.append(meta.sst.items_from(start))
                first = meta.sst.block_for_key(start)
                last = meta.sst.block_for_key(end)
                for block in range(first, last + 1):
                    offset, nbytes = meta.sst.block_span(block)
                    ev = meta.file.read(offset, nbytes, sequential=True)
                    if ev is not None:
                        io_events.append(ev)
            if io_events:
                yield self.engine.all_of(io_events)

            # Merge newest-first per key: decorate with (key, -seq).
            import heapq as _heapq

            merged = _heapq.merge(
                *[(((k, -e[0]), k, e) for k, e in src) for src in sources]
            )
            out: List[Tuple[bytes, Value]] = []
            prev_key = None
            cpu = 0
            for _, k, e in merged:
                if k >= end:
                    break
                if k == prev_key:
                    continue
                prev_key = k
                cpu += self.costs.block_decode_ns // 4
                if e[1] == KIND_PUT:
                    out.append((k, e[2]))
                    if limit is not None and len(out) >= limit:
                        break
            if cpu:
                yield cpu
            self.stats.inc("scans")
            return out
        finally:
            self.versions.unref(version)

    def get_bytes(self, key: bytes):
        """Generator: like :meth:`get` but materializes ValueRefs to bytes."""
        value = yield from self.get(key)
        return None if value is None else materialize(value)

    # --------------------------------------------------------------- background

    def _flush_worker(self, worker: int = 0):
        track = f"flush-{worker}"
        while True:
            item = yield self._flush_store.get()
            if item is _CLOSE:
                return
            if item not in self.memtables.immutables:
                continue  # already flushed (an auto-resume retry won)
            if self.error_handler.severity:
                # Degraded: leave the memtable for the resume process,
                # which retries with backoff instead of hammering a
                # failing device.
                continue
            self._active_flushes += 1
            job = FlushJob(self, item, track=track)
            try:
                yield from job.run()
            except (IOFaultError, OutOfSpaceError, CorruptionError) as exc:
                self._active_flushes -= 1
                self.error_handler.note_flush_failure(item, exc)
                self._update_stall_state()
                continue
            if item in self.memtables.immutables:
                self.memtables.immutables.remove(item)
            self._active_flushes -= 1
            self._release_obsolete_wals()
            self._update_stall_state()
            self._maybe_schedule_compaction()

    def _compaction_worker(self, worker: int = 0):
        track = f"compact-{worker}"
        while True:
            token = yield self._compaction_store.get()
            self._compaction_tokens -= 1
            if token is _CLOSE:
                return
            while not self._closed:
                if self.error_handler.severity:
                    break  # degraded: the resume process owns retries
                compaction = self.picker.pick(self.versions)
                if compaction is None:
                    break
                if not self.sst_file_manager.try_reserve_compaction(
                    compaction.input_bytes
                ):
                    # Not enough free space for the outputs: fail soft now
                    # rather than hard ENOSPC halfway through the merge.
                    compaction.mark(False)
                    self.error_handler.on_background_error(
                        "compaction",
                        OutOfSpaceError(
                            "no room for compaction outputs",
                            needed_bytes=compaction.input_bytes,
                            free_bytes=self.fs.free_bytes(),
                        ),
                    )
                    break
                self._active_compactions += 1
                self._update_stall_state()
                job = CompactionJob(self, compaction, track=track)
                try:
                    yield from job.run()
                except (IOFaultError, OutOfSpaceError, CorruptionError) as exc:
                    self.error_handler.on_background_error(
                        getattr(exc, "bg_source", "compaction"), exc
                    )
                finally:
                    self.sst_file_manager.release_compaction(
                        compaction.input_bytes
                    )
                    self._active_compactions -= 1
                self._update_stall_state()
                # Another worker may be able to run a non-conflicting pick.
                self._maybe_schedule_compaction()

    def _maybe_schedule_compaction(self) -> None:
        if self._closed:
            return
        scores = self.picker.scores(self.versions)
        if scores and scores[0][0] >= 1.0:
            if self._compaction_tokens < self.options.max_background_compactions:
                self._compaction_tokens += 1
                self._compaction_store.put("go")

    def _release_obsolete_wals(self) -> None:
        if not self.wal.enabled:
            return
        if self.versions.manifest_dirty:
            # The manifest edit that made these logs obsolete is not
            # durable yet: a crash now would recover from the old manifest
            # and still need them for replay.  Retried after resync.
            return
        live = [
            getattr(t, "min_log_number", 0)
            for t in self.memtables.tables_newest_first()
        ]
        min_needed = min(live) if live else self.wal.current_number
        self.wal.release_up_to(min_needed - 1)

    # ----------------------------------------------------------------- stalling

    def _stall_metrics(self) -> StallMetrics:
        return StallMetrics(
            l0_files=self.versions.current.num_files(0),
            immutable_memtables=len(self.memtables.immutables),
            max_immutable_memtables=max(1, self.options.max_write_buffer_number - 1),
            pending_compaction_bytes=self.versions.pending_compaction_bytes(),
        )

    def _update_stall_state(self) -> None:
        # Degraded conditions outside Algorithm 1's metrics floor the
        # controller at DELAYED: a soft background error (resume is
        # retrying) or the filesystem running low on quota space.
        floor = NORMAL
        if (
            self.error_handler.severity == SEV_SOFT
            or self.sst_file_manager.low_on_space()
        ):
            floor = DELAYED
        if floor != self.controller.floor:
            self.controller.floor = floor
            if floor == DELAYED:
                self.stats.inc("stall.floor_raised")
        before = self.controller.state
        self.controller.update(self._stall_metrics())
        after = self.controller.state
        if before != after:
            self.stats.inc(f"stall.to_{after}")
            if after == NORMAL:
                self.controller.reset_rate()
        if after != NORMAL:
            self._maybe_schedule_compaction()

    def _backlog_bytes(self) -> int:
        v = self.versions.current
        return v.level_bytes(0) + self.versions.pending_compaction_bytes()

    # ---------------------------------------------------------------- utilities

    def _check_background_errors(self) -> None:
        """Raise instead of letting a foreground waiter poll forever.

        A background worker that died with an unhandled exception, or a
        fatal degraded state, means the condition being waited on can
        never clear — re-raise the stored error in the waiter.
        """
        for proc in self._workers:
            if proc.done and proc.exception is not None:
                raise DBError(
                    f"background worker {proc.name!r} died: {proc.exception!r}"
                ) from proc.exception
        self.error_handler.raise_stored_error()

    def flush_all(self):
        """Generator: seal the mutable memtable and wait until L0 has it."""
        self._check_open()
        if not self.memtables.mutable.is_empty():
            yield from self._switch_memtable()
        while self.memtables.immutables:
            self._check_background_errors()
            yield 100_000  # poll: background flush is draining
        return None

    def wait_idle(self, poll_ns: int = 1_000_000, timeout_ns: Optional[int] = None):
        """Generator: wait until flushes and compactions quiesce.

        With ``timeout_ns`` set, raises :class:`DBError` if background
        work has not drained after that much virtual time (bounded waits
        for tests and harnesses instead of a silent infinite poll).
        """
        deadline = None if timeout_ns is None else self.engine.now + timeout_ns
        while True:
            self._check_background_errors()
            busy = (
                self.memtables.immutables
                or self._active_flushes
                or self._active_compactions
                or (self.picker.scores(self.versions) and
                    self.picker.scores(self.versions)[0][0] >= 1.0)
            )
            if not busy:
                return None
            if deadline is not None and self.engine.now >= deadline:
                raise DBError(
                    f"wait_idle timed out after {timeout_ns}ns "
                    f"(immutables={len(self.memtables.immutables)}, "
                    f"active_flushes={self._active_flushes}, "
                    f"active_compactions={self._active_compactions}, "
                    f"severity={self.error_handler.severity or 'none'})"
                )
            yield poll_ns

    def level_shape(self) -> List[int]:
        """File count per level (diagnostics)."""
        return [len(files) for files in self.versions.current.levels]

    def approximate_size(self, start: bytes, end: bytes) -> int:
        """Approximate on-disk bytes of the key range [start, end).

        RocksDB's ``GetApproximateSizes``: sums each overlapping file's
        footprint scaled by the fraction of its key span inside the range
        (entry sizes are assumed uniform within a file).
        """
        if end <= start:
            return 0
        total = 0
        version = self.versions.current
        for level in range(self.options.num_levels):
            for meta in version.overlapping_files(level, start, end):
                sst = meta.sst
                lo = max(0, self._key_index(sst, start))
                hi = min(sst.entry_count, self._key_index(sst, end))
                if hi > lo:
                    total += sst.file_bytes * (hi - lo) // sst.entry_count
        return total

    @staticmethod
    def _key_index(sst, key: bytes) -> int:
        from bisect import bisect_left

        return bisect_left(sst.keys, key)

    def compact_range(self, start: Optional[bytes] = None, end: Optional[bytes] = None):
        """Generator: manually compact [start, end] down level by level.

        RocksDB's ``CompactRange``: flushes the memtable, then pushes every
        overlapping file toward the bottommost populated level, dropping
        shadowed entries and tombstones on the way.
        """
        self._check_open()
        lo = start if start is not None else b"\x00"
        hi = end if end is not None else b"\xff" * 32
        yield from self.flush_all()
        for level in range(self.options.num_levels - 1):
            # Let background jobs drain so their inputs are free to pick.
            yield from self.wait_idle()
            version = self.versions.current
            inputs = [
                f for f in version.overlapping_files(level, lo, hi)
                if not f.being_compacted
            ]
            if not inputs:
                continue
            smallest = min(f.smallest for f in inputs)
            largest = max(f.largest for f in inputs)
            lower = [
                f
                for f in version.overlapping_files(level + 1, smallest, largest)
                if not f.being_compacted
            ]
            compaction = CompactionJob(
                self,
                _manual_compaction(level, inputs, lower),
            )
            compaction.compaction.mark(True)
            yield from compaction.run()
        self.stats.inc("manual_compactions")

    def describe(self) -> str:
        """Multi-line status report (RocksDB's 'rocksdb.stats' analog)."""
        v = self.versions.current
        lines = [
            f"** DB status ({self.options.name}) at t={self.engine.now / 1e9:.3f}s **",
            f"levels: {v.describe()}",
            f"memtable: {self.memtables.mutable.charged_bytes >> 10} KB active, "
            f"{len(self.memtables.immutables)} immutable",
            f"stall state: {self.controller.state} "
            f"(rate {self.controller.delayed_write_rate / 2**20:.1f} MB/s)",
            f"flushes: {self.stats.get('flush.count')}  "
            f"compactions: {self.stats.get('compaction.count')}  "
            f"pending bytes: {self.versions.pending_compaction_bytes() >> 20} MB",
            f"gets: {self.stats.get('gets')}  puts: {self.stats.get('puts')}  "
            f"block cache hit rate: {self.block_cache.hit_rate():.1%}",
            f"wal bytes: {self.wal.bytes_written >> 10} KB  "
            f"delays hit: {self.stats.get('stall.delays_hit')}  "
            f"stops hit: {self.stats.get('stall.stops_hit')}",
        ]
        if self.error_handler.severity:
            err = self.error_handler.error
            lines.append(
                f"degraded: {self.error_handler.severity} "
                f"(source {err.source if err else '?'}, "
                f"resume attempts {self.error_handler.resume_attempts})"
            )
        return "\n".join(lines)

    def property_value(self, name: str) -> float:
        """A few RocksDB-style DB properties for reports."""
        v = self.versions.current
        if name == "num-files-at-level0":
            return float(v.num_files(0))
        if name == "total-sst-bytes":
            return float(sum(f.file_bytes for f in v.all_files()))
        if name == "pending-compaction-bytes":
            return float(self.versions.pending_compaction_bytes())
        if name == "num-immutable-mem-table":
            return float(len(self.memtables.immutables))
        if name == "cur-size-active-mem-table":
            return float(self.memtables.mutable.charged_bytes)
        if name == "is-read-only":
            return 1.0 if self.error_handler.is_read_only else 0.0
        if name == "background-errors":
            return float(self.stats.get("bg_error.raised"))
        raise DBError(f"unknown property {name!r}")
