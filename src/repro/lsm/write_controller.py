"""Write throttling — the paper's **Algorithm 1** (WRITE CONTROL PROCESS).

When background work falls behind (too many Level-0 files, full memtables or
compaction debt), RocksDB injects delays into the write path.  The delay
token bucket follows the paper's pseudocode exactly: refill interval
1024 us, rate multiplied by Dec = 0.8 when the backlog is not shrinking and
by Inc = 1.25 when it is, and per-write delays of ``refill_interval`` or
``num_bytes / delayed_write_rate``.

The controller is a pure policy object: the DB feeds it a
:class:`StallMetrics` snapshot whenever the LSM shape changes and asks it
for a delay before each write.  Case study A subclasses it
(:class:`~repro.core.two_stage_throttle.TwoStageWriteController`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DBError
from repro.lsm.options import Options
from repro.sim.engine import Engine, Event
from repro.sim.stats import StatsSet
from repro.sim.units import SEC

NORMAL = "normal"
DELAYED = "delayed"
STOPPED = "stopped"

_STATE_RANK = {NORMAL: 0, DELAYED: 1, STOPPED: 2}


@dataclass(frozen=True)
class StallMetrics:
    """LSM shape snapshot used to pick the stall state."""

    l0_files: int
    immutable_memtables: int
    max_immutable_memtables: int
    pending_compaction_bytes: int


class WriteController:
    """Algorithm 1: adaptive delayed-write-rate token bucket."""

    def __init__(self, engine: Engine, options: Options) -> None:
        self.engine = engine
        self.options = options
        self.state = NORMAL
        self.delayed_write_rate = float(options.delayed_write_rate)
        self._max_rate = float(options.delayed_write_rate) * 4
        self._min_rate = float(options.min_delayed_write_rate)
        # Virtual refill clock: the timestamp up to which intake credit is
        # already spoken for.  Aggregate delayed intake = delayed_write_rate.
        self._next_refill_time = 0
        self._prev_backlog: Optional[int] = None
        self._stop_event: Optional[Event] = None
        self.stats = StatsSet()
        # External state floor: degraded conditions outside Algorithm 1's
        # metrics (a soft background error, low disk space) force at least
        # this state regardless of LSM shape.  NORMAL = no floor.
        self.floor = NORMAL

    # -- state policy ----------------------------------------------------------

    def pick_state(self, metrics: StallMetrics) -> str:
        """Map LSM shape to normal/delayed/stopped (override in case studies)."""
        opts = self.options
        if (
            metrics.l0_files >= opts.level0_stop_writes_trigger
            or metrics.immutable_memtables >= metrics.max_immutable_memtables
        ):
            return STOPPED
        if (
            metrics.l0_files >= opts.level0_slowdown_writes_trigger
            or metrics.pending_compaction_bytes
            >= opts.soft_pending_compaction_bytes_limit
        ):
            return DELAYED
        return NORMAL

    def update(self, metrics: StallMetrics) -> None:
        """Re-evaluate the stall state after an LSM shape change."""
        new_state = self.pick_state(metrics)
        if _STATE_RANK[new_state] < _STATE_RANK[self.floor]:
            new_state = self.floor
        if new_state == self.state:
            return
        old_state = self.state
        self.state = new_state
        self.engine.tracer.stall_transition(
            old_state, new_state, self.delayed_write_rate
        )
        if old_state == STOPPED and self._stop_event is not None:
            self._stop_event.succeed()
            self._stop_event = None
        if new_state == STOPPED:
            self.stats.inc("stops")
        elif new_state == DELAYED:
            self.stats.inc("slowdowns")

    def stop_wait_event(self) -> Event:
        """Event that fires when the STOPPED condition clears."""
        if self.state != STOPPED:
            raise DBError("stop_wait_event() while not stopped")
        if self._stop_event is None:
            self._stop_event = self.engine.event()
        return self._stop_event

    def kick_stopped_writers(self) -> None:
        """Wake writers parked on :meth:`stop_wait_event` without a state
        change, so they can re-check conditions that bypass the stall
        machinery (the DB turning read-only under a hard background error).
        """
        if self._stop_event is not None:
            self._stop_event.succeed()
            self._stop_event = None

    # -- Algorithm 1 ----------------------------------------------------------------

    def on_delayed_write(self, backlog_bytes: int) -> None:
        """Lines 7–11: adapt the rate to the compaction backlog trend."""
        if self._prev_backlog is not None:
            if self._prev_backlog <= backlog_bytes:
                # Backlog not shrinking: compaction is behind, slow down.
                self.delayed_write_rate *= self.options.delayed_write_rate_dec
            else:
                self.delayed_write_rate *= self.options.delayed_write_rate_inc
            self.delayed_write_rate = min(
                self._max_rate, max(self._min_rate, self.delayed_write_rate)
            )
        self._prev_backlog = backlog_bytes

    def get_delay(self, num_bytes: int) -> int:
        """The DELAYWRITE function: per-write sleep in nanoseconds.

        Implemented as the virtual refill clock the pseudocode abbreviates
        (RocksDB's actual WriteController): each delayed write reserves
        ``num_bytes / delayed_write_rate`` of future intake credit and
        sleeps until its reservation starts; credit accrued while idle is
        capped at one ``refill_interval``.  Aggregate delayed intake
        therefore equals ``delayed_write_rate``, and at the minimum rate a
        1 KB write sleeps ~1024 us — exactly the per-write delay the
        paper's Equation 1 plugs in.
        """
        if self.state != DELAYED:
            self._prev_backlog = None
            # A reservation from a previous DELAYED episode must not outlive
            # it: without this reset, re-entering DELAYED shortly after (e.g.
            # via STOPPED, which skips reset_rate()) would charge the first
            # writes for credit consumed before the episode ended.
            self._next_refill_time = 0
            return 0
        now = self.engine.now
        refill = self.options.refill_interval_ns
        rate = self.delayed_write_rate  # bytes / second

        nrt = self._next_refill_time
        if nrt < now - refill:
            nrt = now - refill  # cap idle credit at one refill interval
        delay = nrt - now if nrt > now else 0
        charge = round(num_bytes * SEC / rate)
        self._next_refill_time = max(nrt, now) + charge
        if delay > 0:
            self.stats.inc("delays")
            self.stats.inc("delay_ns_total", delay)
        return delay

    def reset_rate(self) -> None:
        """Restore the user-configured rate (when leaving DELAYED)."""
        self.delayed_write_rate = float(self.options.delayed_write_rate)
        self._prev_backlog = None
        self._next_refill_time = 0
