"""Leveled compaction: picker and job.

The picker is RocksDB's classic score-based leveled picker: Level 0 scores
by file count against ``level0_file_num_compaction_trigger``; levels >= 1
score by byte size against their targets.  The job k-way-merges the input
tables, drops shadowed entries and bottommost tombstones, and writes size-
capped output files to the next level.

I/O modelling: input tables are read in ``compaction_readahead_bytes``
chunks as the merge consumes them (freshly flushed inputs usually hit the
page cache — deep-level inputs hit the device); outputs stream through
buffered appends with an fsync per file.  CPU is charged per merged entry.
Compaction therefore competes with foreground reads for device channels,
which is the read/write interference at the heart of the paper's findings.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import DBError
from repro.lsm.format import KIND_DELETE
from repro.lsm.io_retry import retry_call, retry_gen
from repro.lsm.sst import SSTBuilder
from repro.lsm.version import FileMetadata, Version, VersionEdit, VersionSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.db import DB

_MERGE_BATCH = 256


class Compaction:
    """A picked compaction: inputs at two adjacent levels."""

    def __init__(
        self,
        level: int,
        output_level: int,
        inputs_upper: List[FileMetadata],
        inputs_lower: List[FileMetadata],
    ) -> None:
        if not inputs_upper:
            raise DBError("compaction needs at least one upper-level input")
        self.level = level
        self.output_level = output_level
        self.inputs_upper = inputs_upper
        self.inputs_lower = inputs_lower

    @property
    def all_inputs(self) -> List[FileMetadata]:
        return self.inputs_upper + self.inputs_lower

    @property
    def input_bytes(self) -> int:
        return sum(f.file_bytes for f in self.all_inputs)

    def key_range(self) -> Tuple[bytes, bytes]:
        smallest = min(f.smallest for f in self.all_inputs)
        largest = max(f.largest for f in self.all_inputs)
        return smallest, largest

    def mark(self, flag: bool) -> None:
        for f in self.all_inputs:
            f.being_compacted = flag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Compaction L{self.level}->L{self.output_level} "
            f"{len(self.inputs_upper)}+{len(self.inputs_lower)} files "
            f"{self.input_bytes >> 20}MB>"
        )


class CompactionPicker:
    """Score-based leveled compaction picker."""

    def __init__(self, options) -> None:
        self.options = options
        # Round-robin cursors per level (largest-key of last compacted file).
        self._cursors: Dict[int, bytes] = {}

    def scores(self, versions: VersionSet) -> List[Tuple[float, int]]:
        """(score, level) pairs, highest first, for levels that can compact."""
        out = []
        for level in range(self.options.num_levels - 1):
            score = versions.compaction_score(level)
            if score > 0:
                out.append((score, level))
        out.sort(reverse=True)
        return out

    def pick(self, versions: VersionSet) -> Optional[Compaction]:
        """Pick the highest-score eligible compaction, or None."""
        version = versions.current
        for score, level in self.scores(versions):
            if score < 1.0:
                break
            compaction = (
                self._pick_l0(version)
                if level == 0
                else self._pick_level(version, level)
            )
            if compaction is not None:
                compaction.mark(True)
                return compaction
        return None

    def _pick_l0(self, version: Version) -> Optional[Compaction]:
        l0 = version.levels[0]
        if not l0 or any(f.being_compacted for f in l0):
            # Only one L0 compaction at a time (RocksDB's intra-L0 rule).
            return None
        smallest = min(f.smallest for f in l0)
        largest = max(f.largest for f in l0)
        lower = version.overlapping_files(1, smallest, largest)
        if any(f.being_compacted for f in lower):
            return None
        return Compaction(0, 1, list(l0), lower)

    def _pick_level(self, version: Version, level: int) -> Optional[Compaction]:
        files = version.levels[level]
        if not files:
            return None
        cursor = self._cursors.get(level, b"")
        # Start after the cursor, wrapping around (round-robin like RocksDB).
        ordered = [f for f in files if f.smallest > cursor] + [
            f for f in files if f.smallest <= cursor
        ]
        for meta in ordered:
            if meta.being_compacted:
                continue
            lower = version.overlapping_files(level + 1, meta.smallest, meta.largest)
            if any(f.being_compacted for f in lower):
                continue
            self._cursors[level] = meta.largest
            return Compaction(level, level + 1, [meta], lower)
        return None


def _tracked_items(meta: FileMetadata, chunk: int, read_requests: List):
    """Iterate a table's items, queueing chunked read requests as consumed.

    Byte progress uses the table's mean entry size — the scheduling of the
    read-ahead chunks only needs to be approximately aligned with merge
    progress, and this keeps per-entry host cost minimal.
    """
    total = meta.sst.data_bytes
    per_entry = max(1.0, total / meta.sst.entry_count)
    entries_per_chunk = max(1, int(chunk / per_entry))
    next_mark = 0
    countdown = 0
    for item in meta.sst.items():
        if countdown == 0 and next_mark < total:
            read_requests.append((meta, next_mark, min(chunk, total - next_mark)))
            next_mark += chunk
            countdown = entries_per_chunk
        countdown -= 1
        yield item


class CompactionJob:
    """Executes one picked compaction inside a background process.

    ``track`` names the trace thread the compaction span is recorded on
    (the DB passes its worker's track so concurrent jobs don't overlap).
    """

    def __init__(
        self, db: "DB", compaction: Compaction, track: str = "compact"
    ) -> None:
        self.db = db
        self.compaction = compaction
        self.track = track

    def _issue_reads(self, read_requests: List, pending_events: List):
        """Generator: submit queued input reads, retrying transient faults."""
        db = self.db
        for meta, offset, nbytes in read_requests:
            ev = yield from retry_call(
                lambda m=meta, o=offset, n=nbytes: m.file.read(o, n, sequential=True),
                db.stats,
                "compaction.io_retries",
            )
            if ev is not None:
                pending_events.append(ev)
        read_requests.clear()

    def _is_bottommost(self) -> bool:
        """True if no deeper level overlaps this compaction's key range."""
        c = self.compaction
        version = self.db.versions.current
        if c.output_level >= self.db.options.num_levels - 1:
            return True
        smallest, largest = c.key_range()
        for level in range(c.output_level + 1, self.db.options.num_levels):
            if version.overlapping_files(level, smallest, largest):
                return False
        return True

    def run(self):
        """Generator: merge inputs, write outputs, install the edit.

        On failure, partial (uninstalled) output files are deleted and the
        inputs are un-marked so the picker can retry later.  A failure
        tagged ``bg_source == "manifest"`` happened *after* the edit was
        applied: the outputs are live files then and must stay on disk.
        """
        c = self.compaction
        self._created_paths: List[str] = []
        try:
            result = yield from self._merge_and_install()
            return result
        except GeneratorExit:
            # The job was abandoned (simulation teardown), not failed: no
            # cleanup, no trace events — the world is being discarded.
            raise
        except BaseException as exc:
            db = self.db
            if getattr(exc, "bg_source", "") != "manifest":
                for path in self._created_paths:
                    if db.fs.exists(path):
                        db.fs.delete(path)
            c.mark(False)
            db.engine.tracer.span_end(self.track, {"error": type(exc).__name__})
            raise

    def _merge_and_install(self):
        db = self.db
        c = self.compaction
        opts = db.options
        chunk = opts.compaction_readahead_bytes
        drop_tombstones = self._is_bottommost()
        target_bytes = opts.target_file_size(c.output_level)
        tracer = db.engine.tracer
        tracer.span_begin(self.track, f"compact L{c.level}->L{c.output_level}")

        read_requests: List = []
        # Decorate each stream with a (key, -seq) sort key so the k-way merge
        # yields the newest entry first within one user key.
        decorated = [
            (((k, -e[0]), k, e) for k, e in _tracked_items(meta, chunk, read_requests))
            for meta in c.all_inputs
        ]
        merged = heapq.merge(*decorated)

        outputs: List[Tuple[SSTBuilder, object]] = []  # (builder, sim file)
        new_files: List[FileMetadata] = []
        builder: Optional[SSTBuilder] = None
        out_file = None
        appended = 0  # bytes already appended for the current output
        prev_key: Optional[bytes] = None
        batch = 0
        cpu_pending = 0
        entries_out = 0
        entries_in = 0
        pending_events: List = []

        def start_output():
            nonlocal builder, out_file, appended
            number = db.versions.new_file_number()
            builder = SSTBuilder(number, opts.block_size, opts.bloom_bits_per_key)
            out_file = db.fs.create(f"sst/{number:06d}.sst")
            self._created_paths.append(out_file.path)
            appended = 0

        def finish_output_steps():
            """Generator: final append + fsync + metadata for current output."""
            nonlocal builder, out_file, appended
            if builder is None or builder.empty():
                builder, out_file = None, None
                return
            sst = builder.finish()
            out_file.payload = sst
            remaining = sst.file_bytes - appended
            if remaining > 0:
                bp = out_file.append(remaining)
                if bp is not None:
                    yield bp
            yield from retry_gen(out_file.sync, db.stats, "compaction.io_retries")
            meta = FileMetadata(sst.number, sst, out_file, c.output_level)
            new_files.append(meta)
            builder, out_file = None, None

        start_output()
        for _, key, entry in merged:
            entries_in += 1
            if key == prev_key:
                continue  # shadowed by a newer entry
            prev_key = key
            if drop_tombstones and entry[1] == KIND_DELETE:
                batch += 1
                continue
            if builder is None:
                start_output()
            builder.add(key, entry)
            entries_out += 1
            batch += 1

            # Stream output in chunk-sized appends (paced by the limiter).
            if builder.estimated_bytes - appended >= chunk:
                grow = builder.estimated_bytes - appended
                appended += grow
                if db.rate_limiter is not None:
                    pace = db.rate_limiter.request(grow)
                    if pace:
                        yield pace
                bp = out_file.append(grow)
                if bp is not None:
                    pending_events.append(bp)

            if builder.estimated_bytes >= target_bytes:
                yield from finish_output_steps()

            if batch >= _MERGE_BATCH:
                cpu_pending += db.costs.compaction_entries(batch)
                batch = 0
                if cpu_pending:
                    yield cpu_pending
                    cpu_pending = 0
                yield from self._issue_reads(read_requests, pending_events)
                if pending_events:
                    if len(pending_events) == 1:
                        yield pending_events[0]
                    else:
                        yield db.engine.all_of(pending_events)
                    pending_events.clear()

        # Tail: remaining CPU, reads, and the final output file.
        if batch:
            cpu_pending += db.costs.compaction_entries(batch)
        if cpu_pending:
            yield cpu_pending
        yield from self._issue_reads(read_requests, pending_events)
        if pending_events:
            if len(pending_events) == 1:
                yield pending_events[0]
            else:
                yield db.engine.all_of(pending_events)
            pending_events.clear()
        yield from finish_output_steps()

        # Install the result.
        edit = VersionEdit()
        for meta in c.all_inputs:
            edit.delete_file(meta.level, meta.number)
        for meta in new_files:
            edit.add_file(c.output_level, meta)
        db.versions.apply(edit)
        yield db.costs.manifest_apply_ns
        yield from db.versions.log_edit(edit)
        c.mark(False)

        db.stats.inc("compaction.count")
        db.stats.inc("compaction.bytes_read", c.input_bytes)
        db.stats.inc(
            "compaction.bytes_written", sum(f.file_bytes for f in new_files)
        )
        db.stats.inc("compaction.entries_in", entries_in)
        db.stats.inc("compaction.entries_out", entries_out)
        tracer.span_end(
            self.track,
            {
                "bytes_in": c.input_bytes,
                "bytes_out": sum(f.file_bytes for f in new_files),
                "entries_in": entries_in,
                "entries_out": entries_out,
            },
        )
        return new_files
