"""CPU cost model for software operations inside the store.

The paper's central theme is that *software* overhead, negligible next to
flash latencies, dominates on 3D XPoint.  The simulator therefore charges
virtual CPU time for every software step.  Constants are calibrated against
the paper's direct measurements:

* a Level-0 file lookup costs ~8.5 us for a 32 MB file and ~9.7 us for a
  256 MB file (Section IV-B) — an ``a + b * log2(entries)`` model with
  a = 2.5 us and b = 0.4 us fits both points;
* skiplist insertion is O(log N) with comparable constants (Analysis #2:
  larger memtables lengthen WRITE latency);
* the median end-to-end write latency t is ~15 us (Analysis #1), which the
  sum of WAL append, group-commit bookkeeping and memtable insert must land
  near.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import us


def _log2(n: int) -> float:
    return max(1, n).bit_length() - 1.0


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual CPU costs (all in nanoseconds)."""

    # Skiplist / memtable
    memtable_insert_base_ns: int = us(3.0)
    memtable_insert_per_level_ns: int = us(0.5)
    memtable_lookup_base_ns: int = us(0.8)
    memtable_lookup_per_level_ns: int = us(0.25)

    # Level-0 SST search, calibrated to the paper's direct measurement
    # (8.5 us for a 32 MB file, 9.7 us for 256 MB).
    sst_search_base_ns: int = us(2.5)
    sst_search_per_level_ns: int = us(0.4)
    # Levels >= 1: plain index binary search, cheaper than the L0 walk.
    sst_index_search_base_ns: int = us(1.5)
    sst_index_search_per_level_ns: int = us(0.2)
    # Cheap rejection when a file's [smallest, largest] misses the key.
    sst_range_check_ns: int = us(0.2)
    bloom_probe_ns: int = us(0.25)
    block_decode_ns: int = us(1.0)
    block_cache_lookup_ns: int = us(0.3)

    # Write path
    wal_serialize_per_byte_ps: int = 1000  # picoseconds per byte (write() + memcpy)
    wal_compress_per_byte_ps: int = 800  # snappy-class compression CPU
    wal_append_base_ns: int = us(2.0)  # write() syscall into the page cache
    write_group_join_ns: int = us(0.4)
    write_group_leader_ns: int = us(1.0)
    write_group_per_writer_ns: int = us(0.3)

    # Background work: calibrated to real RocksDB per-thread throughput at
    # 1 KB values (flush ~0.5-1 GB/s, compaction ~150-250 MB/s per thread
    # including checksum/compare/encode work).
    flush_entry_ns: int = us(1.0)
    compaction_entry_ns: int = us(8.0)
    manifest_apply_ns: int = us(5.0)

    # Client-side overhead per db_bench operation.
    client_op_overhead_ns: int = us(1.0)

    # -- derived costs ---------------------------------------------------------

    # The O(log N) formulas below are memoized per instance, keyed by the
    # count's bit length: the cost only changes when the entry count crosses
    # a power of two, so each table holds a few dozen entries at most and
    # the dict probe is several times cheaper than the float arithmetic.
    # Memoization is exact — same bit length, same rounded result.

    def __post_init__(self) -> None:
        # frozen dataclass: caches bypass the immutability guard and are not
        # dataclass fields, so __eq__/__hash__/__repr__ are unaffected.
        object.__setattr__(self, "_memo_insert", {})
        object.__setattr__(self, "_memo_lookup", {})
        object.__setattr__(self, "_memo_search", {})
        object.__setattr__(self, "_memo_index", {})

    def memtable_insert(self, entry_count: int) -> int:
        """Skiplist insert: O(log N)."""
        level = (entry_count + 1).bit_length()  # == _log2(entry_count + 1) + 1
        memo = self._memo_insert
        cost = memo.get(level)
        if cost is None:
            cost = memo[level] = round(
                self.memtable_insert_base_ns
                + self.memtable_insert_per_level_ns * (level - 1.0)
            )
        return cost

    def memtable_lookup(self, entry_count: int) -> int:
        level = (entry_count + 1).bit_length()  # == _log2(entry_count + 1) + 1
        memo = self._memo_lookup
        cost = memo.get(level)
        if cost is None:
            cost = memo[level] = round(
                self.memtable_lookup_base_ns
                + self.memtable_lookup_per_level_ns * (level - 1.0)
            )
        return cost

    def sst_search(self, entry_count: int) -> int:
        """Level-0 in-file key search (SkipList-organized file)."""
        level = (entry_count + 1).bit_length()  # == _log2(entry_count + 1) + 1
        memo = self._memo_search
        cost = memo.get(level)
        if cost is None:
            cost = memo[level] = round(
                self.sst_search_base_ns
                + self.sst_search_per_level_ns * (level - 1.0)
            )
        return cost

    def sst_index_search(self, entry_count: int) -> int:
        """Level >= 1 key search: index binary search + block restart scan."""
        level = (entry_count + 1).bit_length()  # == _log2(entry_count + 1) + 1
        memo = self._memo_index
        cost = memo.get(level)
        if cost is None:
            cost = memo[level] = round(
                self.sst_index_search_base_ns
                + self.sst_index_search_per_level_ns * (level - 1.0)
            )
        return cost

    def wal_serialize(self, nbytes: int) -> int:
        return self.wal_append_base_ns + (nbytes * self.wal_serialize_per_byte_ps) // 1000

    def flush_entries(self, n: int) -> int:
        return self.flush_entry_ns * n

    def compaction_entries(self, n: int) -> int:
        return self.compaction_entry_ns * n


DEFAULT_COSTS = CostModel()
