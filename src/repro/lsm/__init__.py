"""From-scratch LSM-tree key-value store (RocksDB 5.17 analog).

Public surface: :class:`~repro.lsm.db.DB`, :class:`~repro.lsm.options.Options`,
:class:`~repro.lsm.write_batch.WriteBatch`, plus the building blocks
(memtable, WAL, SST, compaction, write controller) for direct use in tests
and case studies.
"""

from repro.lsm.block_cache import BlockCache
from repro.lsm.bloom import BloomFilter
from repro.lsm.costs import DEFAULT_COSTS, CostModel
from repro.lsm.db import DB
from repro.lsm.format import KIND_DELETE, KIND_PUT, Entry
from repro.lsm.memtable import MemTable, MemTableList
from repro.lsm.options import (
    HASH_REP,
    SKIPLIST_REP,
    WAL_BUFFERED,
    WAL_OFF,
    WAL_SYNC,
    Options,
)
from repro.lsm.pipelined_write import WriteQueue, Writer
from repro.lsm.skiplist import SkipList
from repro.lsm.sst import SSTable, SSTBuilder
from repro.lsm.value import Value, ValueRef, materialize, value_size
from repro.lsm.version import FileMetadata, Version, VersionEdit, VersionSet
from repro.lsm.wal import WalManager
from repro.lsm.write_batch import WriteBatch
from repro.lsm.write_buffer_manager import WriteBufferManager
from repro.lsm.write_controller import (
    DELAYED,
    NORMAL,
    STOPPED,
    StallMetrics,
    WriteController,
)

__all__ = [
    "BlockCache",
    "BloomFilter",
    "CostModel",
    "DB",
    "DEFAULT_COSTS",
    "DELAYED",
    "Entry",
    "FileMetadata",
    "HASH_REP",
    "KIND_DELETE",
    "KIND_PUT",
    "MemTable",
    "MemTableList",
    "NORMAL",
    "Options",
    "SKIPLIST_REP",
    "SSTBuilder",
    "SSTable",
    "STOPPED",
    "SkipList",
    "StallMetrics",
    "Value",
    "ValueRef",
    "Version",
    "VersionEdit",
    "VersionSet",
    "WAL_BUFFERED",
    "WAL_OFF",
    "WAL_SYNC",
    "WalManager",
    "WriteBatch",
    "WriteBufferManager",
    "WriteController",
    "WriteQueue",
    "Writer",
    "materialize",
    "value_size",
]
