"""Joint memtable byte budget across DB instances (RocksDB's
``WriteBufferManager``).

One ``DB`` caps its own memtable memory with ``write_buffer_size`` x
``max_write_buffer_number``.  When many shards or column families share a
host, that per-instance cap composes badly: N shards each sized for the
whole machine can together hold N times the intended memory.  RocksDB's
answer is the WriteBufferManager — a single byte budget charged by every
memtable of every participating DB; when the budget is exhausted, the
instance holding the largest mutable memtable flushes early.

This module mirrors that contract for the simulation:

* every registered DB's memtables (mutable + immutable, i.e. bytes not yet
  flushed to Level 0) charge the shared budget;
* :meth:`WriteBufferManager.should_flush` reproduces RocksDB's trigger —
  flush when *mutable* usage alone crosses 7/8 of the budget, or when total
  usage (flushes pending included) is over budget while mutable usage is at
  least half of it;
* the DB asking is only told to flush if it owns the largest non-empty
  mutable memtable (ties go to the earliest-registered DB), so one shard's
  burst cannot force an idle shard to churn out tiny SST files.

The manager is a pure policy object polled from the write path — it holds
no engine state and installs no processes, so sharing one across shards
keeps runs deterministic.
"""

from __future__ import annotations

from typing import List

from repro.errors import DBError
from repro.sim.stats import StatsSet


class WriteBufferManager:
    """Shared memtable byte budget across several DB instances."""

    def __init__(self, buffer_size: int) -> None:
        if buffer_size <= 0:
            raise DBError(f"write buffer budget must be positive: {buffer_size}")
        self.buffer_size = buffer_size
        # 7/8 of the budget, RocksDB's mutable_limit_.
        self.mutable_limit = buffer_size * 7 // 8
        self._dbs: List[object] = []
        self.stats = StatsSet()
        #: High-water mark of joint memtable usage (sampled on policy checks).
        self.peak_usage = 0

    # -- membership ----------------------------------------------------------

    def register(self, db) -> None:
        """Attach a DB's memtables to this budget (done by ``DB.__init__``)."""
        if db not in self._dbs:
            self._dbs.append(db)

    def unregister(self, db) -> None:
        if db in self._dbs:
            self._dbs.remove(db)

    @property
    def num_dbs(self) -> int:
        return len(self._dbs)

    # -- accounting ----------------------------------------------------------

    def mutable_usage(self) -> int:
        """Bytes held in *mutable* memtables across all registered DBs."""
        return sum(db.memtables.mutable.charged_bytes for db in self._dbs)

    def memory_usage(self) -> int:
        """Bytes held in all memtables (mutable + awaiting flush)."""
        total = 0
        for db in self._dbs:
            total += db.memtables.mutable.charged_bytes
            for imm in db.memtables.immutables:
                total += imm.charged_bytes
        return total

    # -- policy --------------------------------------------------------------

    def over_budget(self) -> bool:
        return self.memory_usage() > self.buffer_size

    def should_flush(self, db) -> bool:
        """True when ``db`` should seal its mutable memtable early.

        RocksDB's ``WriteBufferManager::ShouldFlush`` trigger, gated on
        ``db`` owning the largest non-empty mutable memtable so exactly one
        sharer reacts to budget pressure at a time.
        """
        usage = self.memory_usage()
        if usage > self.peak_usage:
            self.peak_usage = usage
        mutable = self.mutable_usage()
        if mutable <= self.mutable_limit and (
            usage < self.buffer_size or mutable < self.buffer_size // 2
        ):
            return False
        own = db.memtables.mutable.charged_bytes
        if own == 0:
            return False
        for other in self._dbs:
            if other is db:
                break
            if other.memtables.mutable.charged_bytes >= own:
                return False  # an earlier-registered DB is at least as full
        for other in self._dbs[self._dbs.index(db) + 1:]:
            if other.memtables.mutable.charged_bytes > own:
                return False
        self.stats.inc("flush_triggers")
        return True

    def describe(self) -> str:
        return (
            f"write-buffer budget {self.buffer_size >> 20} MB: "
            f"{self.memory_usage() >> 10} KB used across {len(self._dbs)} DBs "
            f"({self.stats.get('flush_triggers')} early flushes)"
        )
