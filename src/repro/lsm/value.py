"""Value representation.

Library users store real ``bytes``.  Benchmarks store :class:`ValueRef`
descriptors instead: a deterministic (seed, size) pair whose bytes can be
regenerated on demand.  This lets a simulated run carry a "100 GB" dataset
without 100 GB of Python heap — all size accounting in the store uses the
*logical* size, so the I/O and memory behaviour is identical.
"""

from __future__ import annotations

import hashlib
from typing import Union

from repro.errors import DBError


class ValueRef:
    """A deterministic synthetic value of ``size`` logical bytes.

    Semantically a frozen ``(seed, size)`` dataclass, hand-rolled with
    ``__slots__``: benchmarks construct one per write, and the dataclass
    machinery (``object.__setattr__`` per field plus ``__post_init__``)
    costs several times the two plain attribute stores.
    """

    __slots__ = ("seed", "size")

    def __init__(self, seed: int, size: int) -> None:
        if size < 0:
            raise DBError(f"value size must be >= 0: {size}")
        self.seed = seed
        self.size = size

    def __eq__(self, other: object) -> bool:
        if other.__class__ is ValueRef:
            return self.seed == other.seed and self.size == other.size
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.seed, self.size))

    def __repr__(self) -> str:
        return f"ValueRef(seed={self.seed!r}, size={self.size!r})"

    def materialize(self) -> bytes:
        """Regenerate the value bytes (deterministic in ``seed``)."""
        if self.size == 0:
            return b""
        out = bytearray()
        counter = 0
        while len(out) < self.size:
            out += hashlib.sha256(f"{self.seed}:{counter}".encode()).digest()
            counter += 1
        return bytes(out[: self.size])


Value = Union[bytes, ValueRef]


def value_size(value: Value) -> int:
    """Logical size in bytes of either representation."""
    if isinstance(value, ValueRef):
        return value.size
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    raise DBError(f"unsupported value type: {type(value).__name__}")


def materialize(value: Value) -> bytes:
    """Return the concrete bytes of either representation."""
    if isinstance(value, ValueRef):
        return value.materialize()
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    raise DBError(f"unsupported value type: {type(value).__name__}")
