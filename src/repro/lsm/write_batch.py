"""Write batches: the unit a writer hands to the write queue."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import DBError
from repro.lsm.format import KIND_DELETE, KIND_PUT
from repro.lsm.value import Value, ValueRef, value_size


class WriteBatch:
    """An ordered list of PUT/DELETE operations applied atomically."""

    __slots__ = ("ops", "_value_bytes", "_key_bytes")

    def __init__(self) -> None:
        self.ops: List[Tuple[int, bytes, Optional[Value]]] = []
        self._value_bytes = 0
        self._key_bytes = 0

    def put(self, key: bytes, value: Value) -> "WriteBatch":
        if not isinstance(key, bytes):
            raise DBError(f"keys must be bytes, got {type(key).__name__}")
        self.ops.append((KIND_PUT, key, value))
        self._key_bytes += len(key)
        # value_size() dispatch unrolled: benchmarks fill one batch per put.
        cls = value.__class__
        if cls is ValueRef:
            self._value_bytes += value.size
        elif cls is bytes:
            self._value_bytes += len(value)
        else:
            self._value_bytes += value_size(value)
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        if not isinstance(key, bytes):
            raise DBError(f"keys must be bytes, got {type(key).__name__}")
        self.ops.append((KIND_DELETE, key, None))
        self._key_bytes += len(key)
        return self

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def data_bytes(self) -> int:
        """Logical payload size (keys + values), used for throttling."""
        return self._key_bytes + self._value_bytes

    def clear(self) -> None:
        self.ops.clear()
        self._key_bytes = 0
        self._value_bytes = 0
