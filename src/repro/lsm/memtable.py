"""Memtables: the in-memory write buffer of the LSM tree.

Two representations are provided, mirroring RocksDB's pluggable memtable
reps:

* :class:`SkipListRep` — a real skiplist (default; supports cheap ordered
  iteration at any time);
* :class:`HashRep` — a dict that sorts on flush (much faster in Python;
  used by the benchmark harness).

Both charge identical *simulated* CPU costs through the
:class:`~repro.lsm.costs.CostModel`, so they are interchangeable for every
measurement; only host-Python speed differs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import DBError
from repro.lsm.format import KIND_DELETE, Entry, entry_charge
from repro.lsm.options import HASH_REP, SKIPLIST_REP
from repro.lsm.skiplist import SkipList
from repro.sim.rng import RandomStream


class MemTableRep:
    """Interface of a memtable representation."""

    __slots__ = ()

    def insert(self, key: bytes, entry: Entry) -> bool:
        raise NotImplementedError

    def lookup(self, key: bytes) -> Optional[Entry]:
        raise NotImplementedError

    def sorted_items(self) -> Iterator[Tuple[bytes, Entry]]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class SkipListRep(MemTableRep):
    __slots__ = ("_list",)

    def __init__(self, rng: Optional[RandomStream] = None) -> None:
        self._list = SkipList(rng)

    def insert(self, key: bytes, entry: Entry) -> bool:
        return self._list.insert(key, entry)

    def lookup(self, key: bytes) -> Optional[Entry]:
        return self._list.get(key)

    def sorted_items(self) -> Iterator[Tuple[bytes, Entry]]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)


class HashRep(MemTableRep):
    __slots__ = ("_map",)

    def __init__(self) -> None:
        self._map: dict = {}

    def insert(self, key: bytes, entry: Entry) -> bool:
        new = key not in self._map
        self._map[key] = entry
        return new

    def lookup(self, key: bytes) -> Optional[Entry]:
        return self._map.get(key)

    def sorted_items(self) -> Iterator[Tuple[bytes, Entry]]:
        for key in sorted(self._map):
            yield key, self._map[key]

    def __len__(self) -> int:
        return len(self._map)


def make_rep(name: str, rng: Optional[RandomStream] = None) -> MemTableRep:
    if name == SKIPLIST_REP:
        return SkipListRep(rng)
    if name == HASH_REP:
        return HashRep()
    raise DBError(f"unknown memtable rep {name!r}")


class MemTable:
    """One write buffer; becomes immutable when full, then flushes to L0."""

    __slots__ = (
        "id",
        "_rep",
        "_entry_overhead",
        "charged_bytes",
        "immutable",
        "first_seq",
        "last_seq",
        "flush_in_progress",
        "min_log_number",
    )

    _ids = 0

    def __init__(
        self,
        rep: str = SKIPLIST_REP,
        entry_overhead: int = 64,
        rng: Optional[RandomStream] = None,
    ) -> None:
        MemTable._ids += 1
        self.id = MemTable._ids
        self._rep = make_rep(rep, rng)
        self._entry_overhead = entry_overhead
        self.charged_bytes = 0
        self.immutable = False
        self.first_seq: Optional[int] = None
        self.last_seq: Optional[int] = None
        # True while a FlushJob is writing this memtable out — the error
        # handler's resume pass skips those to avoid double flushes.
        self.flush_in_progress = False
        # Oldest WAL number whose records this memtable holds (set by DB).
        self.min_log_number = 0

    def __len__(self) -> int:
        return len(self._rep)

    @property
    def entry_count(self) -> int:
        return len(self._rep)

    def add(self, key: bytes, entry: Entry) -> None:
        """Insert an entry; latest (seq, kind, value) per key wins."""
        if self.immutable:
            raise DBError("insert into an immutable memtable")
        if not isinstance(key, bytes):
            raise DBError(f"keys must be bytes, got {type(key).__name__}")
        seq = entry[0]
        if self._rep.insert(key, entry):
            self.charged_bytes += entry_charge(key, entry, self._entry_overhead)
        # Overwrites charge nothing: the slot is reused in place.
        if self.first_seq is None:
            self.first_seq = seq
        self.last_seq = seq

    def get(self, key: bytes) -> Optional[Entry]:
        """Latest entry for ``key`` (including tombstones) or None."""
        return self._rep.lookup(key)

    def mark_immutable(self) -> None:
        self.immutable = True

    def is_empty(self) -> bool:
        return len(self._rep) == 0

    def sorted_items(self) -> Iterator[Tuple[bytes, Entry]]:
        """All (key, entry) pairs in key order (used by flush and scans)."""
        return self._rep.sorted_items()

    def live_entry_estimate(self) -> int:
        return len(self._rep)

    def tombstone_count(self) -> int:
        return sum(1 for _, e in self._rep.sorted_items() if e[1] == KIND_DELETE)


class MemTableList:
    """The mutable memtable plus the queue of immutables awaiting flush."""

    __slots__ = ("_factory", "mutable", "immutables")

    def __init__(self, factory) -> None:
        self._factory = factory
        self.mutable: MemTable = factory()
        self.immutables: List[MemTable] = []  # oldest first

    @property
    def count(self) -> int:
        return 1 + len(self.immutables)

    def switch(self) -> MemTable:
        """Seal the mutable memtable and allocate a fresh one."""
        sealed = self.mutable
        sealed.mark_immutable()
        self.immutables.append(sealed)
        self.mutable = self._factory()
        return sealed

    def pop_oldest_immutable(self) -> MemTable:
        if not self.immutables:
            raise DBError("no immutable memtable to flush")
        return self.immutables.pop(0)

    def lookup(self, key: bytes) -> Optional[Entry]:
        """Check mutable first, then immutables newest-first."""
        entry = self.mutable.get(key)
        if entry is not None:
            return entry
        for table in reversed(self.immutables):
            entry = table.get(key)
            if entry is not None:
                return entry
        return None

    def tables_newest_first(self) -> List[MemTable]:
        return [self.mutable] + list(reversed(self.immutables))
