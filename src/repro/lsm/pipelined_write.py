"""The writer queue — the paper's **Algorithm 2** (PIPELINED WRITE PROCESS).

RocksDB keeps one queue of writer threads.  The thread at the head becomes
the *leader* of a write batch group: it drains waiting writers into its
group (bounded by ``max_write_batch_group_size``), appends one combined WAL
record, and then every group member applies its own batch to the memtable.
With pipelined writes (the default here, matching the paper's analysis) the
next leader is promoted as soon as the previous group finishes its WAL
phase, so WAL writing of group N+1 overlaps memtable insertion of group N.

The queue also measures the paper's Figure 16 metric: the time-averaged
number of writers waiting in the queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.errors import DBError
from repro.lsm.format import Entry
from repro.sim.engine import Engine, Event
from repro.sim.stats import TimeWeightedGauge

ROLE_LEADER = "leader"
ROLE_MEMBER = "member"


class Writer:
    """One queued write (a batch plus its wakeup event)."""

    __slots__ = ("records", "nbytes", "event", "group", "wal_number", "queue")

    def __init__(
        self,
        records: List[Tuple[bytes, Entry]],
        nbytes: int,
        event: Optional[Event] = None,
    ):
        self.records = records
        self.nbytes = nbytes
        # Allocated lazily by WriteQueue.join(): a writer that becomes leader
        # at join time (the common case at low queue depth) never parks on an
        # event, and event construction is observable to nothing else.
        self.event = event
        self.group: Optional["WriteGroup"] = None
        # WAL file number this writer's records were logged in (set by the
        # group leader; used to keep WAL lifetimes crash-safe).
        self.wal_number = 0
        # The (possibly sharded) queue this writer joined.
        self.queue: Optional["WriteQueue"] = None


class WriteGroup:
    """The set of writers committed together by one leader."""

    __slots__ = ("writers", "total_bytes", "pending")

    def __init__(self, leader: Writer) -> None:
        self.writers: List[Writer] = [leader]
        self.total_bytes = leader.nbytes
        self.pending = 0  # memtable inserts still running

    def add(self, writer: Writer) -> None:
        self.writers.append(writer)
        self.total_bytes += writer.nbytes

    def all_records(self) -> List[Tuple[bytes, Entry]]:
        out: List[Tuple[bytes, Entry]] = []
        for w in self.writers:
            out.extend(w.records)
        return out

    def __len__(self) -> int:
        return len(self.writers)


class WriteQueue:
    """Single writer queue with leader election and group formation."""

    def __init__(self, engine: Engine, max_group_bytes: int, pipelined: bool) -> None:
        if max_group_bytes <= 0:
            raise DBError(f"max_group_bytes must be positive: {max_group_bytes}")
        self.engine = engine
        self.max_group_bytes = max_group_bytes
        self.pipelined = pipelined
        self._waiting: Deque[Writer] = deque()
        self._has_leader = False
        self.waiting_gauge = TimeWeightedGauge("write-queue")
        self.groups_formed = 0
        self.writers_grouped = 0

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)

    def _touch_gauge(self) -> None:
        gauge = self.waiting_gauge
        n = len(self._waiting)
        now = self.engine._now
        last_t = gauge._last_t
        if last_t is None:
            gauge.update(now, n)
            return
        value = gauge._value
        # Zero-to-zero touches (the solo-leader steady state) contribute
        # exactly +0.0 area; skipping the full update keeps the gauge state
        # bit-identical while halving its cost on write-heavy benchmarks.
        if n == 0 and value == 0.0:
            gauge._last_t = now
            return
        # TimeWeightedGauge.update() inlined — the queue touches the gauge on
        # every writer transition, and the engine clock is monotonic so the
        # update's past-timestamp guard cannot fire from here.
        gauge._area += value * (now - last_t)
        gauge._last_t = now
        gauge._value = n
        if n > gauge.max_value:
            gauge.max_value = n

    # -- join / leave -----------------------------------------------------------

    def join(self, writer: Writer) -> bool:
        """Add a writer; True if it becomes leader immediately."""
        if not self._has_leader:
            self._has_leader = True
            return True
        if writer.event is None:
            writer.event = self.engine.event()
        self._waiting.append(writer)
        self._touch_gauge()
        return False

    def form_group(self, leader: Writer) -> WriteGroup:
        """Leader drains waiting writers into its group (size-capped)."""
        group = WriteGroup(leader)
        leader.group = group
        # Like RocksDB, the size cap is checked before adding, so one group
        # may exceed it by at most one batch.
        drained = False
        while self._waiting and group.total_bytes < self.max_group_bytes:
            writer = self._waiting.popleft()
            writer.group = group
            group.add(writer)
            drained = True
        if drained:
            self._touch_gauge()
        # No drain leaves the queue length unchanged, and a gauge touch at
        # an unchanged value adds exactly the area the next real update
        # accrues anyway — skipping it is exact, not an approximation.
        group.pending = len(group)
        self.groups_formed += 1
        self.writers_grouped += len(group)
        return group

    def wal_phase_done(self, group: WriteGroup) -> None:
        """Wake group members for the memtable phase; maybe promote a leader.

        In pipelined mode leadership transfers now (the next group's WAL
        write overlaps this group's memtable inserts).
        """
        for member in group.writers[1:]:
            member.event.succeed(ROLE_MEMBER)
        if self.pipelined:
            self._promote_next()

    def fail_group(self, group: WriteGroup, exc: BaseException) -> None:
        """The leader's write failed before the memtable phase: propagate.

        Members are parked on their role events; without this they would
        wait forever (the silent-hang the background-error work removes).
        Each still-waiting member's event fails with ``exc`` — the member
        raises it from its own ``write()`` — and leadership moves on.
        Never called after :meth:`wal_phase_done` for the same group, so
        leadership is handed off exactly once either way.
        """
        for member in group.writers[1:]:
            if not member.event.triggered:
                member.event.fail(exc)
        group.pending = 0
        self._promote_next()

    def member_done(self, group: WriteGroup) -> None:
        """A member finished its memtable insert."""
        group.pending -= 1
        if group.pending < 0:
            raise DBError("write group finished more members than it has")
        if group.pending == 0 and not self.pipelined:
            self._promote_next()

    def _promote_next(self) -> None:
        if self._waiting:
            nxt = self._waiting.popleft()
            self._touch_gauge()
            nxt.event.succeed(ROLE_LEADER)
        else:
            self._has_leader = False

    def mean_waiting(self) -> float:
        """Time-averaged queue length (Figure 16's metric)."""
        return self.waiting_gauge.mean(self.engine.now)
