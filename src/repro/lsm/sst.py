"""Sorted String Tables.

An SST holds a sorted run of (key, entry) pairs divided into fixed-size data
blocks, with a block index and an optional bloom filter.  Following RocksDB
practice for a 5.17-era setup, the index and filter are resident in memory
once the table is open; only **data blocks** cost I/O — which is precisely
the read path the paper's Level-0 experiments measure (index binary search is
CPU, then one data-block read to confirm or reject the key).

Content is kept as parallel Python arrays (``keys`` / ``entries``) attached
to the simulated file as its payload; byte offsets are modelled so block
reads hit the right device ranges.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Tuple

from repro.errors import CorruptionError, DBError
from repro.lsm.bloom import BloomFilter
from repro.lsm.format import Entry, entry_checksum, entry_file_bytes


class SSTable:
    """An immutable, sorted, block-structured table."""

    def __init__(
        self,
        number: int,
        keys: List[bytes],
        entries: List[Entry],
        block_size: int,
        bloom_bits_per_key: int = 0,
    ) -> None:
        if len(keys) != len(entries):
            raise DBError("keys/entries length mismatch")
        if not keys:
            raise DBError("SSTable cannot be empty")
        if block_size <= 0:
            raise DBError(f"block_size must be positive: {block_size}")
        self.number = number
        self.keys = keys
        self.entries = entries
        self.block_size = block_size
        self.smallest = keys[0]
        self.largest = keys[-1]

        # Block layout: cut a new block whenever block_size logical bytes
        # accumulate.  _block_first[i] is the index of block i's first entry;
        # _block_offset[i] is its byte offset in the file (blocks are usually
        # slightly smaller than block_size since entries do not split).
        block_first: List[int] = [0]
        block_offset: List[int] = [0]
        acc = 0
        total = 0
        for idx in range(len(keys)):
            nbytes = entry_file_bytes(keys[idx], entries[idx])
            if acc + nbytes > block_size and acc > 0:
                block_first.append(idx)
                block_offset.append(total)
                acc = 0
            acc += nbytes
            total += nbytes
        self._block_first = block_first
        self._block_offset = block_offset
        # Per-block CRC32 of the logical content, computed lazily (the build
        # path stays checksum-free; verification is a recovery/read-time
        # concern).  ``_block_crc_tamper`` models on-media damage to the
        # block metadata itself (fault injection XORs into it).
        self._block_crcs: List[Optional[int]] = [None] * len(block_first)
        self._block_crc_tamper: Optional[dict] = None
        self.data_bytes = total
        # Index/footer overhead: one handle per block plus per-key restarts.
        self.index_bytes = len(block_first) * 24 + len(keys) * 2
        self.bloom: Optional[BloomFilter] = None
        if bloom_bits_per_key > 0:
            self.bloom = BloomFilter(keys, bloom_bits_per_key)
        self.file_bytes = self.data_bytes + self.index_bytes + (
            self.bloom.approximate_bytes if self.bloom else 0
        )

    # -- metadata -----------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return len(self.keys)

    @property
    def block_count(self) -> int:
        return len(self._block_first)

    def key_in_range(self, key: bytes) -> bool:
        return self.smallest <= key <= self.largest

    def overlaps(self, smallest: bytes, largest: bytes) -> bool:
        return not (self.largest < smallest or largest < self.smallest)

    def may_contain(self, key: bytes) -> bool:
        """Bloom check (always True without a filter)."""
        if self.bloom is None:
            return True
        return self.bloom.may_contain(key)

    # -- lookup ---------------------------------------------------------------

    def block_for_key(self, key: bytes) -> int:
        """Index binary search: which data block could hold ``key``."""
        entry_idx = bisect_left(self.keys, key)
        if entry_idx >= len(self.keys):
            entry_idx = len(self.keys) - 1
        block = bisect_right(self._block_first, entry_idx) - 1
        return max(0, block)

    def block_span(self, block_idx: int) -> Tuple[int, int]:
        """(file_offset, nbytes) of one data block."""
        if not 0 <= block_idx < len(self._block_first):
            raise DBError(f"block index out of range: {block_idx}")
        offset = self._block_offset[block_idx]
        if block_idx == len(self._block_first) - 1:
            nbytes = self.data_bytes - offset
        else:
            nbytes = self._block_offset[block_idx + 1] - offset
        return offset, max(1, nbytes)

    # -- integrity ---------------------------------------------------------------

    def _block_entry_range(self, block_idx: int) -> Tuple[int, int]:
        first = self._block_first[block_idx]
        if block_idx == len(self._block_first) - 1:
            return first, len(self.keys)
        return first, self._block_first[block_idx + 1]

    def block_checksum(self, block_idx: int) -> int:
        """Stored CRC32 of one data block's logical content (lazy)."""
        if not 0 <= block_idx < len(self._block_first):
            raise DBError(f"block index out of range: {block_idx}")
        crc = self._block_crcs[block_idx]
        if crc is None:
            lo, hi = self._block_entry_range(block_idx)
            crc = 0
            for i in range(lo, hi):
                crc = entry_checksum(self.keys[i], self.entries[i], crc)
            self._block_crcs[block_idx] = crc
        if self._block_crc_tamper:
            crc ^= self._block_crc_tamper.get(block_idx, 0)
        return crc

    def corrupt_block_checksum(self, block_idx: int) -> None:
        """Fault hook: damage the stored CRC of one block on 'media'."""
        self.block_checksum(block_idx)  # materialize the true value first
        if self._block_crc_tamper is None:
            self._block_crc_tamper = {}
        self._block_crc_tamper[block_idx] = self._block_crc_tamper.get(block_idx, 0) ^ 0x1

    def verify_block(self, block_idx: int, file=None) -> None:
        """Verify one data block after a read; raises :class:`CorruptionError`.

        Two failure modes: the block's bytes overlap a device-mangled range
        of the backing ``file``, or the stored block CRC no longer matches
        the recomputed content checksum.
        """
        offset, nbytes = self.block_span(block_idx)
        if file is not None and file.corrupt_ranges and file.is_corrupt(offset, nbytes):
            raise CorruptionError(
                f"SST #{self.number} block {block_idx} "
                f"[{offset}, {offset + nbytes}) overlaps corrupted media"
            )
        lo, hi = self._block_entry_range(block_idx)
        crc = 0
        for i in range(lo, hi):
            crc = entry_checksum(self.keys[i], self.entries[i], crc)
        if crc != self.block_checksum(block_idx):
            raise CorruptionError(
                f"SST #{self.number} block {block_idx} checksum mismatch"
            )

    def find(self, key: bytes) -> Optional[Entry]:
        """Exact-match lookup in the in-memory arrays (after block 'read')."""
        idx = bisect_left(self.keys, key)
        if idx < len(self.keys) and self.keys[idx] == key:
            return self.entries[idx]
        return None

    # -- iteration ---------------------------------------------------------------

    def items(self) -> Iterator[Tuple[bytes, Entry]]:
        return zip(self.keys, self.entries)

    def items_from(self, start: bytes) -> Iterator[Tuple[bytes, Entry]]:
        idx = bisect_left(self.keys, start)
        for i in range(idx, len(self.keys)):
            yield self.keys[i], self.entries[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SSTable #{self.number} n={self.entry_count} "
            f"[{self.smallest!r}..{self.largest!r}]>"
        )


class SSTBuilder:
    """Accumulates sorted (key, entry) pairs and produces an :class:`SSTable`."""

    def __init__(
        self,
        number: int,
        block_size: int,
        bloom_bits_per_key: int = 0,
    ) -> None:
        self.number = number
        self.block_size = block_size
        self.bloom_bits_per_key = bloom_bits_per_key
        self._keys: List[bytes] = []
        self._entries: List[Entry] = []
        self._bytes = 0

    def add(self, key: bytes, entry: Entry) -> None:
        if self._keys and key <= self._keys[-1]:
            raise DBError(
                f"keys must be added in strictly increasing order: "
                f"{key!r} after {self._keys[-1]!r}"
            )
        self._keys.append(key)
        self._entries.append(entry)
        self._bytes += entry_file_bytes(key, entry)

    @property
    def entry_count(self) -> int:
        return len(self._keys)

    @property
    def estimated_bytes(self) -> int:
        return self._bytes

    def empty(self) -> bool:
        return not self._keys

    def finish(self) -> SSTable:
        if not self._keys:
            raise DBError("cannot finish an empty SSTable")
        return SSTable(
            self.number,
            self._keys,
            self._entries,
            self.block_size,
            self.bloom_bits_per_key,
        )
