"""LRU block cache (RocksDB's in-process cache of decoded data blocks).

Kept deliberately small by default (8 MB, the RocksDB default) — the paper's
setup leans on the OS page cache for bulk caching, and the block cache only
short-circuits the block *decode* cost plus the page-cache round trip for
very hot blocks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.errors import DBError
from repro.sim.stats import StatsSet

BlockKey = Tuple[int, ...]  # (sst number, block index) or (ns, sst, block)


class BlockCache:
    """Byte-budgeted LRU over (sst, block) keys.

    A cache can be shared by several DB instances (shards / column
    families): each sharer prefixes its keys with a distinct integer
    namespace — ``(namespace, sst, block)`` — so per-DB SST numbering
    never collides while all sharers draw on one joint byte budget.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise DBError(f"block cache capacity must be >= 0: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[BlockKey, int]" = OrderedDict()
        self._used = 0
        self.stats = StatsSet()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    def lookup(self, key: BlockKey) -> bool:
        """True on hit (promotes to MRU)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.inc("hits")
            return True
        self.stats.inc("misses")
        return False

    def insert(self, key: BlockKey, charge: int) -> None:
        """Insert/refresh a block, evicting LRU entries over budget."""
        if charge <= 0:
            raise DBError(f"block charge must be positive: {charge}")
        old = self._entries.pop(key, None)
        if old is not None:
            self._used -= old
        if charge > self.capacity_bytes:
            self.stats.inc("rejected")
            if old is not None:
                # The refresh dropped a previously cached block: account for
                # it instead of letting the entry vanish silently.
                self.stats.inc("refresh_drops")
            return
        self._entries[key] = charge
        self._used += charge
        while self._used > self.capacity_bytes:
            _oldest, old_charge = self._entries.popitem(last=False)
            self._used -= old_charge
            self.stats.inc("evictions")

    def erase_file(self, sst_number: int, namespace: int | None = None) -> None:
        """Drop all blocks of a deleted SST.

        With ``namespace`` set, only that sharer's ``(namespace, sst, block)``
        keys are matched; without it, legacy ``(sst, block)`` keys.
        """
        if namespace is None:
            stale = [k for k in self._entries if k[0] == sst_number]
        else:
            stale = [
                k
                for k in self._entries
                if k[0] == namespace and k[1] == sst_number
            ]
        for k in stale:
            self._used -= self._entries.pop(k)
        if stale:
            self.stats.inc("files_erased")

    def hit_rate(self) -> float:
        hits = self.stats.get("hits")
        total = hits + self.stats.get("misses")
        return hits / total if total else 0.0
