"""Background-error handling: classify, degrade gracefully, auto-resume.

RocksDB treats errors surfaced by background work (flush, compaction, WAL
sync, MANIFEST writes) very differently from foreground read errors: a
failed flush means the write pipeline is broken, so the DB enters a
*degraded mode* whose depth depends on how recoverable the error looks.
This module reproduces that state machine (RocksDB's ``ErrorHandler``):

``soft``
    Recoverable and contained (out of space, a transient flush/compaction
    I/O error).  Writes keep working but are throttled: the
    :class:`~repro.lsm.write_controller.WriteController` is floored at
    DELAYED so the backlog cannot grow unboundedly while the resume
    process retries in the background.

``hard``
    The durability path itself failed (WAL sync, MANIFEST write) or a soft
    error kept failing to resume.  The DB turns read-only: foreground
    writes raise :class:`~repro.errors.DBReadOnlyError`, reads keep
    working, and auto-resume keeps retrying.

``fatal``
    Unrecoverable in-process (data corruption, a permanent media error).
    Read-only permanently; the only way back is close + reopen, which
    re-runs recovery from the durable state.

Auto-resume retries the failed background work with exponential backoff in
*virtual* time: it re-probes the failing component (WAL sync, MANIFEST
sync, the stranded memtable flushes, a compaction), and on full success
clears the severity and re-admits writes.  A soft error that exhausts
``max_bg_error_resume_count`` attempts escalates to hard (RocksDB's
``Resume()`` giving up); hard errors keep retrying at the capped interval,
mirroring ``bg_error_resume_count`` semantics.

The zero-fault path costs one falsy ``severity`` check per hook: no
events, processes, or RNG draws are created while the DB is healthy, so
fault-free runs are bit-identical to a build without this module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import (
    CorruptionError,
    DBReadOnlyError,
    IOFaultError,
    OutOfSpaceError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.db import DB

# Severity levels.  Healthy is the empty string so hot paths can gate on
# plain truthiness (``if db.error_handler.severity:``) at zero cost.
SEV_NONE = ""
SEV_SOFT = "soft"
SEV_HARD = "hard"
SEV_FATAL = "fatal"

_SEV_RANK = {SEV_NONE: 0, SEV_SOFT: 1, SEV_HARD: 2, SEV_FATAL: 3}

# Background error sources (RocksDB's BackgroundErrorReason).
SOURCE_FLUSH = "flush"
SOURCE_COMPACTION = "compaction"
SOURCE_WAL = "wal"
SOURCE_MANIFEST = "manifest"


def classify(source: str, exc: BaseException) -> str:
    """Map a background failure to its severity (RocksDB's mapping).

    * Corruption is always fatal: retrying cannot un-corrupt data.
    * Out of space is always soft: space can come back (deletes, quota
      raise), and the SstFileManager throttles writes meanwhile.
    * A transient I/O error is soft when it hit redoable work (flush,
      compaction output — the inputs still exist) but hard when it hit the
      durability path (WAL, MANIFEST), where acked state is at risk.
    * A permanent I/O error is fatal: the media will not heal in-process.
    """
    if isinstance(exc, CorruptionError):
        return SEV_FATAL
    if isinstance(exc, OutOfSpaceError):
        return SEV_SOFT
    if isinstance(exc, IOFaultError):
        if not exc.transient:
            return SEV_FATAL
        return SEV_HARD if source in (SOURCE_WAL, SOURCE_MANIFEST) else SEV_SOFT
    return SEV_HARD


class BackgroundError:
    """The recorded failure driving the current degraded episode."""

    __slots__ = ("exc", "source", "at_ns")

    def __init__(self, exc: BaseException, source: str, at_ns: int) -> None:
        self.exc = exc
        self.source = source
        self.at_ns = at_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BackgroundError {self.source} at t={self.at_ns}: {self.exc!r}>"


class ErrorHandler:
    """The DB's background-error state machine plus its resume process."""

    def __init__(self, db: "DB") -> None:
        self.db = db
        self.engine = db.engine
        self.options = db.options
        self.stats = db.stats
        self.severity = SEV_NONE
        self.error: Optional[BackgroundError] = None
        self.resume_attempts = 0  # failed attempts in the current episode
        self.degraded_since: Optional[int] = None
        self._resume_proc = None

    # -- foreground gates ---------------------------------------------------

    @property
    def is_read_only(self) -> bool:
        return _SEV_RANK[self.severity] >= _SEV_RANK[SEV_HARD]

    def check_writable(self) -> None:
        """Raise :class:`DBReadOnlyError` when writes are rejected."""
        if _SEV_RANK[self.severity] >= _SEV_RANK[SEV_HARD]:
            self.stats.inc("bg_error.writes_rejected")
            err = self.error
            raise DBReadOnlyError(
                f"DB is read-only after a {self.severity} background error"
                + (f" ({err.source}: {err.exc})" if err is not None else ""),
                severity=self.severity,
                source=err.source if err is not None else "",
            )

    def raise_stored_error(self) -> None:
        """Re-raise the stored error when the DB cannot make progress.

        Called by foreground waiters (``wait_idle``, ``flush_all``) so a
        fatally degraded DB fails their wait instead of spinning forever.
        """
        if self.severity == SEV_FATAL and self.error is not None:
            raise self.error.exc

    # -- reporting ----------------------------------------------------------

    def on_background_error(self, source: str, exc: BaseException) -> None:
        """Record a background failure; escalate severity monotonically."""
        sev = classify(source, exc)
        self.stats.inc("bg_error.raised")
        self.stats.inc(f"bg_error.source.{source}")
        self.engine.tracer.bg_error(source, sev)
        if _SEV_RANK[sev] > _SEV_RANK[self.severity]:
            self._set_severity(sev, BackgroundError(exc, source, self.engine.now))
        elif self.error is None:
            self.error = BackgroundError(exc, source, self.engine.now)
        if self.severity in (SEV_SOFT, SEV_HARD):
            self._ensure_resume_process()

    def _set_severity(self, sev: str, error: Optional[BackgroundError] = None) -> None:
        old = self.severity
        if error is not None:
            self.error = error
        self.severity = sev
        self.engine.tracer.degraded_transition(old or "normal", sev or "normal")
        if not old and sev:
            self.degraded_since = self.engine.now
            self.stats.inc("bg_error.degraded_entries")
        if sev:
            self.stats.inc(f"bg_error.to_{sev}")
        if _SEV_RANK[sev] >= _SEV_RANK[SEV_HARD]:
            # Writers parked on a write stop must wake and observe
            # read-only mode instead of sleeping through it.
            self.db.controller.kick_stopped_writers()
        if not sev:
            total = self.engine.now - (self.degraded_since or self.engine.now)
            self.stats.inc("bg_error.degraded_ns", total)
            self.degraded_since = None
            self.resume_attempts = 0
            self.error = None
        # Soft severity floors the controller at DELAYED (and clearing
        # lifts the floor) — recompute the stall state either way.
        self.db._update_stall_state()

    # -- auto-resume --------------------------------------------------------

    def backoff_ns(self, attempt: int) -> int:
        """Resume delay before attempt ``attempt`` (0-based), capped."""
        opts = self.options
        delay = opts.bg_error_resume_interval_ns * (
            opts.bg_error_resume_backoff ** attempt
        )
        return min(int(delay), opts.bg_error_resume_max_interval_ns)

    def _ensure_resume_process(self) -> None:
        if self._resume_proc is None or self._resume_proc.done:
            self._resume_proc = self.engine.process(
                self._resume_loop(), name="bg-error-resume"
            )

    def _resume_loop(self):
        db = self.db
        while self.severity in (SEV_SOFT, SEV_HARD) and not db._closed:
            yield self.backoff_ns(self.resume_attempts)
            if db._closed or self.severity not in (SEV_SOFT, SEV_HARD):
                return
            err = self.error
            if (
                err is not None
                and isinstance(err.exc, OutOfSpaceError)
                and db.fs.free_bytes() <= 0
            ):
                # The disk is still full.  Waiting for space (quota raise,
                # deletes) is not a *failing* recovery attempt: keep
                # polling without escalating to read-only.
                self.stats.inc("bg_error.space_waits")
                continue
            attempt = self.resume_attempts + 1
            self.stats.inc("bg_error.resume_attempts")
            self.engine.tracer.resume_attempt(
                attempt, self.error.source if self.error is not None else ""
            )
            ok = yield from self._try_resume()
            if ok:
                self.stats.inc("bg_error.resume_successes")
                degraded_ns = self.engine.now - (self.degraded_since or self.engine.now)
                self.engine.tracer.resume_success(attempt, degraded_ns)
                self._set_severity(SEV_NONE)
                db._maybe_schedule_compaction()
                return
            self.resume_attempts = attempt
            if (
                self.severity == SEV_SOFT
                and self.resume_attempts >= self.options.max_bg_error_resume_count
            ):
                # Soft recovery gave up: stop admitting writes (read-only)
                # but keep retrying at the capped interval.
                self.stats.inc("bg_error.escalations")
                self._set_severity(SEV_HARD)

    def _note_failure(self, source: str, exc: BaseException) -> None:
        """A resume probe failed: escalate if it classifies higher."""
        sev = classify(source, exc)
        self.stats.inc(f"bg_error.source.{source}")
        self.engine.tracer.bg_error(source, sev)
        if _SEV_RANK[sev] > _SEV_RANK[self.severity]:
            self._set_severity(sev, BackgroundError(exc, source, self.engine.now))

    def note_flush_failure(self, memtable, exc: BaseException) -> None:
        """Bookkeeping + report for one failed :class:`FlushJob`.

        A failure tagged ``bg_source == "manifest"`` happened *after* the
        SST was installed and the edit applied in memory: the memtable's
        data is safe in L0 (and still replayable from its WAL, which
        stays retained while the manifest is dirty), so it is done
        flushing and must not be retried — only the manifest record's
        durability is pending.
        """
        if getattr(exc, "bg_source", "") == SOURCE_MANIFEST:
            immutables = self.db.memtables.immutables
            if memtable in immutables:
                immutables.remove(memtable)
        self.on_background_error(getattr(exc, "bg_source", SOURCE_FLUSH), exc)

    def _try_resume(self):
        """Generator: retry the failed background work; True on success.

        Probes in dependency order — space, WAL durability, MANIFEST
        durability, stranded memtable flushes, then one compaction if the
        episode started there.  Any probe failing keeps the DB degraded
        (possibly escalated) and the loop backs off.
        """
        from repro.lsm.compaction import CompactionJob
        from repro.lsm.flush import FlushJob

        db = self.db
        err = self.error

        # Out-of-space episodes: do not hammer a full disk — wait until
        # free space reappears (quota raised or files deleted).
        if err is not None and isinstance(err.exc, OutOfSpaceError):
            if db.fs.free_bytes() <= 0:
                return False

        # WAL probe: the failed group sync left the tail questionable.
        if err is not None and err.source == SOURCE_WAL and db.wal.enabled:
            try:
                yield from db.wal.sync()
            except (IOFaultError, OutOfSpaceError) as exc:
                self._note_failure(SOURCE_WAL, exc)
                return False

        # MANIFEST probe: re-append queued edits and re-sync pending
        # records; success also releases deferred file deletions.
        if db.versions.manifest_dirty:
            try:
                yield from db.versions.sync_manifest()
            except (IOFaultError, OutOfSpaceError) as exc:
                self._note_failure(SOURCE_MANIFEST, exc)
                return False

        # Re-flush memtables stranded by failed flush jobs.
        for mt in list(db.memtables.immutables):
            if mt.flush_in_progress:
                continue
            if mt not in db.memtables.immutables:
                continue
            db._active_flushes += 1
            job = FlushJob(db, mt, track="resume")
            try:
                yield from job.run()
            except (IOFaultError, OutOfSpaceError, CorruptionError) as exc:
                self.note_flush_failure(mt, exc)
                return False
            finally:
                db._active_flushes -= 1
            if mt in db.memtables.immutables:
                db.memtables.immutables.remove(mt)
            db._release_obsolete_wals()
            db._update_stall_state()

        # Compaction probe: if the episode started in a compaction, run
        # one to prove the path works before re-admitting writes.
        if err is not None and err.source == SOURCE_COMPACTION:
            compaction = db.picker.pick(db.versions)
            if compaction is not None:
                if not db.sst_file_manager.try_reserve_compaction(
                    compaction.input_bytes
                ):
                    compaction.mark(False)
                    return False
                db._active_compactions += 1
                job = CompactionJob(db, compaction, track="resume")
                try:
                    yield from job.run()
                except (IOFaultError, OutOfSpaceError, CorruptionError) as exc:
                    self._note_failure(
                        getattr(exc, "bg_source", SOURCE_COMPACTION), exc
                    )
                    return False
                finally:
                    db.sst_file_manager.release_compaction(compaction.input_bytes)
                    db._active_compactions -= 1
                    db._update_stall_state()
        return True
