"""Background I/O rate limiter (RocksDB's ``rate_limiter`` analog).

The paper's Findings #2/#3 show compaction and flush I/O inflating
foreground read tails — the deployment-side mitigation RocksDB offers is a
token-bucket limiter on background writes.  The limiter paces flush and
compaction output with the same virtual-refill-clock scheme as the write
controller: each request reserves ``nbytes / rate`` of future credit and
waits until its reservation starts.

Enable with ``Options.rate_limit_bytes_per_sec > 0``.
"""

from __future__ import annotations

from repro.errors import DBError
from repro.sim.engine import Engine
from repro.sim.units import MS, SEC


class RateLimiter:
    """Token-bucket pacing for background bytes."""

    def __init__(
        self,
        engine: Engine,
        bytes_per_sec: int,
        burst_ns: int = 100 * MS,
    ) -> None:
        if bytes_per_sec <= 0:
            raise DBError(f"rate must be positive: {bytes_per_sec}")
        self.engine = engine
        self.bytes_per_sec = bytes_per_sec
        self.burst_ns = burst_ns
        self._next_refill_time = 0
        self.total_bytes = 0
        self.total_delay_ns = 0

    def request(self, nbytes: int) -> int:
        """Reserve ``nbytes`` of credit; returns the ns to sleep first."""
        if nbytes <= 0:
            raise DBError(f"request must be positive: {nbytes}")
        now = self.engine.now
        nrt = self._next_refill_time
        if nrt < now - self.burst_ns:
            nrt = now - self.burst_ns  # cap idle credit at one burst window
        delay = nrt - now if nrt > now else 0
        self._next_refill_time = max(nrt, now) + nbytes * SEC // self.bytes_per_sec
        self.total_bytes += nbytes
        self.total_delay_ns += delay
        return delay

    def effective_rate(self, elapsed_ns: int) -> float:
        """Observed bytes/second over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.total_bytes * SEC / elapsed_ns
