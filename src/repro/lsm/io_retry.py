"""Bounded retry policy for transient device faults on store I/O paths.

The fault-injection layer (:mod:`repro.faults`) surfaces device errors as
:class:`~repro.errors.IOFaultError` with a ``transient`` flag.  RocksDB
treats such background-I/O errors as retryable; these helpers give every
store path (reads, flush fsyncs, compaction output syncs, manifest syncs)
the same policy: exponential backoff in *simulated* time, a bounded number
of attempts, and immediate propagation of permanent faults.

Both helpers are generators meant to be driven with ``yield from`` inside a
simulated process.  On the fault-free path they yield nothing, so they add
no simulated time and no event-ordering change — experiment results without
a fault schedule are bit-identical to a build without this module.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import IOFaultError
from repro.sim.stats import StatsSet

IO_RETRIES = 3
IO_RETRY_BACKOFF_NS = 200_000  # first backoff; doubles per attempt


def retry_call(
    fn: Callable,
    stats: Optional[StatsSet] = None,
    counter: str = "io.retries",
    attempts: int = IO_RETRIES,
    backoff_ns: int = IO_RETRY_BACKOFF_NS,
):
    """Generator: call ``fn()``, retrying transient :class:`IOFaultError`.

    Returns ``fn()``'s result.  Used for plain calls that may raise at
    submit time (e.g. ``SimFile.read``).
    """
    attempt = 0
    while True:
        try:
            return fn()
        except IOFaultError as exc:
            if not exc.transient:
                raise  # permanent: never retried, never counted
            if attempt >= attempts:
                if stats is not None:
                    stats.inc(counter + "_exhausted")
                raise
            if stats is not None:
                stats.inc(counter)
            yield backoff_ns << attempt
            attempt += 1


def retry_gen(
    factory: Callable,
    stats: Optional[StatsSet] = None,
    counter: str = "io.retries",
    attempts: int = IO_RETRIES,
    backoff_ns: int = IO_RETRY_BACKOFF_NS,
):
    """Generator: drive ``factory()`` (a generator factory, e.g. ``f.sync``),
    re-invoking it after transient :class:`IOFaultError` failures.
    """
    attempt = 0
    while True:
        try:
            result = yield from factory()
            return result
        except IOFaultError as exc:
            if not exc.transient:
                raise  # permanent: never retried, never counted
            if attempt >= attempts:
                if stats is not None:
                    stats.inc(counter + "_exhausted")
                raise
            if stats is not None:
                stats.inc(counter)
            yield backoff_ns << attempt
            attempt += 1
