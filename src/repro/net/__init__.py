"""Deterministic simulated network for cluster experiments.

A :class:`Network` connects N node inboxes over point-to-point links with
configurable latency/bandwidth distributions, probabilistic message loss and
duplication, and reordering (jittered latencies let a later message overtake
an earlier one).  Partitions, delay storms, and drop windows are driven by
the net-level :class:`~repro.faults.schedule.FaultSpec` kinds and evaluated
lazily against the virtual clock at send time — no polling processes, so a
fault-free network adds nothing to the event heap beyond its own messages.

Determinism: every link draws from its own named RNG substream
(``net/link/{src}->{dst}``) forked from the experiment seed, so adding a
consumer or reordering link creation never perturbs the draws of existing
links, and cluster runs replay bit-identically serial vs ``--jobs N``.
"""

from repro.net.network import Link, NetConfig, Network

__all__ = ["Link", "NetConfig", "Network"]
