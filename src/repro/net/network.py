"""Simulated point-to-point links between cluster nodes.

The model is intentionally message-level (no TCP): each ``send`` draws a
one-way latency from the link's named RNG substream, serializes the payload
through the link's bandwidth (back-to-back sends queue behind each other's
serialization time), and schedules delivery into the destination inbox via a
single engine timeout.  Loss, duplication, partitions, delay storms, and
drop windows all decide at send time from the virtual clock, which keeps a
run a pure function of (seed, schedule, workload).

Fault windows come from :class:`~repro.faults.schedule.FaultSpec`:

* ``partition`` — messages crossing the ``nodes`` group boundary are
  dropped while the window is open (``at_time`` .. ``until_time`` or until
  an explicit ``heal``);
* ``heal`` — closes every partition window still open at its ``at_time``
  (applied at install time: windows are static data);
* ``net_delay`` — adds ``extra_ns`` to the drawn latency inside a window;
* ``net_drop`` — drops messages with probability ``drop_p`` inside a window.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.faults.schedule import HEAL, NET_DELAY, NET_DROP, PARTITION, FaultSpec
from repro.sim.engine import Engine, Event
from repro.sim.resources import Store
from repro.sim.rng import RandomStream
from repro.sim.stats import StatsSet
from repro.sim.units import SEC, us

#: Sentinel end for a partition that stays open until healed.
_OPEN = (1 << 62)


class NetConfig:
    """Link parameters shared by every link of a :class:`Network`."""

    __slots__ = (
        "latency_ns",
        "jitter",
        "bandwidth_bytes_per_sec",
        "loss_p",
        "dup_p",
    )

    def __init__(
        self,
        latency_ns: int = us(50),
        jitter: float = 0.1,
        bandwidth_bytes_per_sec: int = 1_250_000_000,  # ~10 Gbit/s
        loss_p: float = 0.0,
        dup_p: float = 0.0,
    ) -> None:
        if latency_ns < 0:
            raise SimulationError(f"latency_ns must be >= 0, got {latency_ns}")
        if bandwidth_bytes_per_sec <= 0:
            raise SimulationError(
                f"bandwidth must be > 0 bytes/s, got {bandwidth_bytes_per_sec}"
            )
        if not 0.0 <= loss_p < 1.0:
            raise SimulationError(f"loss_p must be in [0, 1), got {loss_p}")
        if not 0.0 <= dup_p < 1.0:
            raise SimulationError(f"dup_p must be in [0, 1), got {dup_p}")
        self.latency_ns = latency_ns
        self.jitter = jitter
        self.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec
        self.loss_p = loss_p
        self.dup_p = dup_p


class Link:
    """One directed link: its RNG substream and bandwidth occupancy."""

    __slots__ = ("rng", "busy_until")

    def __init__(self, rng: RandomStream) -> None:
        self.rng = rng
        self.busy_until = 0


class _Window:
    """One active fault window (partition / delay / drop)."""

    __slots__ = ("kind", "start", "end", "group", "extra_ns", "drop_p")

    def __init__(self, spec: FaultSpec) -> None:
        self.kind = spec.kind
        self.start = spec.at_time
        self.end = spec.until_time if spec.until_time is not None else _OPEN
        self.group = frozenset(spec.nodes) if spec.nodes else frozenset()
        self.extra_ns = spec.extra_ns
        self.drop_p = spec.drop_p

    def active(self, now: int) -> bool:
        return self.start <= now < self.end


class Network:
    """N node inboxes joined by deterministic point-to-point links."""

    def __init__(
        self,
        engine: Engine,
        n_nodes: int,
        rng: RandomStream,
        config: Optional[NetConfig] = None,
    ) -> None:
        if n_nodes < 1:
            raise SimulationError(f"network needs >= 1 node, got {n_nodes}")
        self.engine = engine
        self.n_nodes = n_nodes
        self.config = config if config is not None else NetConfig()
        self.rng = rng
        self.inboxes: List[Store] = [Store(engine) for _ in range(n_nodes)]
        self.down: List[bool] = [False] * n_nodes
        self.stats = StatsSet()
        self.log: List[str] = []
        self._links: Dict[Tuple[int, int], Link] = {}
        self._windows: List[_Window] = []

    # -- topology state ----------------------------------------------------

    def link(self, src: int, dst: int) -> Link:
        """The directed (src, dst) link, created on first use.

        Lazy creation is safe because the RNG substream is derived from the
        link *name*, not from creation order.
        """
        key = (src, dst)
        lk = self._links.get(key)
        if lk is None:
            lk = Link(self.rng.fork(f"link/{src}->{dst}"))
            self._links[key] = lk
        return lk

    def set_down(self, node: int) -> None:
        """Mark a node crashed: no messages flow to or from it."""
        self.down[node] = True
        self._record(f"node {node} down")

    def set_up(self, node: int) -> None:
        self.down[node] = False
        self._record(f"node {node} up")

    # -- fault windows -----------------------------------------------------

    def install_schedule(self, specs: List[FaultSpec]) -> None:
        """Install the net-level specs of a schedule as static windows.

        ``heal`` events are resolved here: each one closes every partition
        window still open at its ``at_time``.  Spec order is the tie-break,
        matching the injector's convention.
        """
        for spec in specs:
            if spec.kind == HEAL:
                for w in self._windows:
                    if w.kind == PARTITION and w.start < spec.at_time < w.end:
                        w.end = spec.at_time
                continue
            if spec.kind in (PARTITION, NET_DELAY, NET_DROP):
                self._windows.append(_Window(spec))

    def partition(self, nodes) -> None:
        """Manually isolate ``nodes`` from the rest, starting now."""
        spec = FaultSpec(PARTITION, at_time=self.engine.now, nodes=tuple(nodes))
        self._windows.append(_Window(spec))
        self._record(f"partition {sorted(spec.nodes)}")

    def heal(self) -> None:
        """Close every partition window still open now."""
        now = self.engine.now
        for w in self._windows:
            if w.kind == PARTITION and w.active(now):
                w.end = now
        self._record("heal")

    def partitioned(self, src: int, dst: int, now: Optional[int] = None) -> bool:
        """True when a partition window separates src and dst right now."""
        if now is None:
            now = self.engine.now
        for w in self._windows:
            if w.kind != PARTITION or not w.active(now):
                continue
            if (src in w.group) != (dst in w.group):
                return True
        return False

    # -- the data path -----------------------------------------------------

    def send(self, src: int, dst: int, msg: Any, nbytes: int = 0) -> None:
        """Ship one message; delivery (if any) is scheduled and returns.

        Fire-and-forget like UDP: callers needing acknowledgement build it
        in the protocol above (the cluster layer's retry/timeout loop).
        """
        now = self.engine.now
        self.stats.inc("net.sends")
        if self.down[src] or self.down[dst]:
            self.stats.inc("net.dropped_down")
            return
        if self.partitioned(src, dst, now):
            self.stats.inc("net.dropped_partition")
            self._record(f"drop(partition) {src}->{dst}")
            return
        cfg = self.config
        lk = self.link(src, dst)
        drop_p = cfg.loss_p
        extra_ns = 0
        for w in self._windows:
            if not w.active(now):
                continue
            if w.kind == NET_DROP:
                drop_p = min(1.0, drop_p + w.drop_p)
            elif w.kind == NET_DELAY:
                extra_ns += w.extra_ns
        if drop_p > 0.0 and lk.rng.chance(drop_p):
            self.stats.inc("net.dropped_loss")
            self._record(f"drop(loss) {src}->{dst}")
            return
        serialize = (nbytes * SEC) // cfg.bandwidth_bytes_per_sec
        depart = max(now, lk.busy_until) + serialize
        lk.busy_until = depart
        latency = round(lk.rng.jittered(cfg.latency_ns + extra_ns, cfg.jitter))
        self._deliver(dst, msg, (depart - now) + latency)
        if cfg.dup_p > 0.0 and lk.rng.chance(cfg.dup_p):
            # The duplicate draws its own latency: it can arrive before or
            # after the original (reordering).
            dup_latency = round(lk.rng.jittered(cfg.latency_ns + extra_ns, cfg.jitter))
            self.stats.inc("net.duplicated")
            self._deliver(dst, msg, (depart - now) + dup_latency)

    def _deliver(self, dst: int, msg: Any, delay: int) -> None:
        ev = self.engine.timeout(max(0, delay))

        def _arrive(_ev: Event, dst: int = dst, msg: Any = msg) -> None:
            if self.down[dst]:
                self.stats.inc("net.dropped_down")
                return
            self.stats.inc("net.delivered")
            self.inboxes[dst].put(msg)

        ev.callbacks.append(_arrive)

    # -- bookkeeping -------------------------------------------------------

    def _record(self, line: str) -> None:
        self.log.append(f"t={self.engine.now} {line}")
