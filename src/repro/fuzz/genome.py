"""The fuzzer's genome: one executable scenario.

A :class:`Genome` is everything needed to deterministically re-run one
scenario through an existing harness: which harness (``mode``), the
workload knobs (seed, op/key counts, node count, storm kind) and the
full :class:`~repro.faults.FaultSchedule` (schema v2) to inject.  It
serialises to a small JSON envelope embedding the schedule in its native
schema, so corpus artifacts under ``tests/corpus/`` are plain replayable
schedule files with a workload header.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import FaultConfigError
from repro.faults import FaultSchedule
from repro.faults.mutate import (
    CLUSTER_MUTATION_KINDS,
    DST_MUTATION_KINDS,
    SERVING_MUTATION_KINDS,
    STORM_MUTATION_KINDS,
    MutationContext,
)
from repro.sim.units import us

MODE_DST = "dst"
MODE_STORM = "storm"
MODE_CLUSTER = "cluster"
MODE_SERVING = "serving"
MODES: Tuple[str, ...] = (MODE_DST, MODE_STORM, MODE_CLUSTER, MODE_SERVING)

#: Virtual time granted per op, per mode — mirrors each harness's default
#: (``DstConfig.horizon_per_op_ns``, ``StormConfig.pace_ns``,
#: ``ClusterDstConfig.horizon_per_op_ns``).  Serving mode has no op
#: count of its own (the fleet is open-loop over a duration), so
#: ``num_ops`` is an abstract size knob: duration = num_ops × 250us,
#: making the 400-op genome exactly the harness's 100ms default.
HORIZON_PER_OP_NS = {
    MODE_DST: us(30),
    MODE_STORM: us(30),
    MODE_CLUSTER: us(300),
    MODE_SERVING: us(250),
}

#: Workload-size bounds per mode (keeps mutated runs affordable).
OPS_BOUNDS = {
    MODE_DST: (60, 600),
    MODE_STORM: (120, 800),
    MODE_CLUSTER: (40, 320),
    MODE_SERVING: (120, 400),
}
KEYS_BOUNDS = {
    MODE_DST: (8, 96),
    MODE_STORM: (8, 96),
    MODE_CLUSTER: (8, 48),
    MODE_SERVING: (8, 32),
}

#: Storm window fractions (matches ``StormConfig`` defaults): storm-mode
#: schedule triggers are clamped into this window so mutations explore
#: the storm, not the bounded out-of-window auto-resume budget.
STORM_WINDOW_FRACS = (0.25, 0.55)

STORM_KINDS = ("io", "space", "mixed")

GENOME_SCHEMA = 1


@dataclass(frozen=True)
class Genome:
    """One scenario: harness mode + workload knobs + fault schedule."""

    mode: str
    workload_seed: int
    num_ops: int
    num_keys: int
    schedule: FaultSchedule = field(default_factory=FaultSchedule)
    n_nodes: int = 0  # cluster: cluster size; serving: replicas per shard
    storm_kind: str = ""  # storm mode only; always resolved (never "auto")
    shards: int = 0  # serving mode only

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise FaultConfigError(f"unknown genome mode {self.mode!r}")
        lo, hi = OPS_BOUNDS[self.mode]
        if not lo <= self.num_ops <= hi:
            raise FaultConfigError(
                f"{self.mode} num_ops {self.num_ops} outside [{lo}, {hi}]"
            )
        klo, khi = KEYS_BOUNDS[self.mode]
        if not klo <= self.num_keys <= khi:
            raise FaultConfigError(
                f"{self.mode} num_keys {self.num_keys} outside [{klo}, {khi}]"
            )
        if self.mode == MODE_CLUSTER:
            if self.n_nodes < 2:
                raise FaultConfigError("cluster genomes need n_nodes >= 2")
        elif self.mode == MODE_SERVING:
            if self.n_nodes < 2:
                raise FaultConfigError("serving genomes need n_nodes (replicas) >= 2")
            if self.shards < 1:
                raise FaultConfigError("serving genomes need shards >= 1")
        elif self.n_nodes:
            raise FaultConfigError(
                f"n_nodes is cluster/serving-only, not {self.mode}"
            )
        if self.mode != MODE_SERVING and self.shards:
            raise FaultConfigError(f"shards is serving-only, not {self.mode}")
        if self.mode == MODE_STORM:
            if self.storm_kind not in STORM_KINDS:
                raise FaultConfigError(
                    f"storm genomes need a resolved kind, got {self.storm_kind!r}"
                )
        elif self.storm_kind:
            raise FaultConfigError(f"storm_kind is storm-only, not {self.mode}")

    @property
    def horizon_ns(self) -> int:
        return self.num_ops * HORIZON_PER_OP_NS[self.mode]

    def mutation_context(self) -> MutationContext:
        """The bounds any mutation of this genome's schedule must respect."""
        if self.mode == MODE_STORM:
            h = self.horizon_ns
            w0, w1 = (int(h * f) for f in STORM_WINDOW_FRACS)
            return MutationContext(
                horizon_ns=h,
                kinds=STORM_MUTATION_KINDS,
                window=(w0, w1),
                transient_only=True,
            )
        if self.mode == MODE_CLUSTER:
            return MutationContext(
                horizon_ns=self.horizon_ns,
                kinds=CLUSTER_MUTATION_KINDS,
                n_nodes=self.n_nodes,
            )
        if self.mode == MODE_SERVING:
            # Serving chaos addresses the *global* node space: node
            # g*replicas+r of shard group g.
            return MutationContext(
                horizon_ns=self.horizon_ns,
                kinds=SERVING_MUTATION_KINDS,
                n_nodes=self.shards * self.n_nodes,
                transient_only=True,
            )
        return MutationContext(horizon_ns=self.horizon_ns, kinds=DST_MUTATION_KINDS)

    def with_schedule(self, schedule: FaultSchedule) -> "Genome":
        return replace(self, schedule=schedule)

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> str:
        """Stable JSON: fixed key order, schedule in its native schema."""
        head = {
            "fuzz_genome": GENOME_SCHEMA,
            "mode": self.mode,
            "workload_seed": self.workload_seed,
            "num_ops": self.num_ops,
            "num_keys": self.num_keys,
        }
        if self.mode in (MODE_CLUSTER, MODE_SERVING):
            head["n_nodes"] = self.n_nodes
        if self.mode == MODE_SERVING:
            head["shards"] = self.shards
        if self.mode == MODE_STORM:
            head["storm_kind"] = self.storm_kind
        head["schedule"] = json.loads(self.schedule.to_json())
        return json.dumps(head, indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "Genome":
        if data.get("fuzz_genome") != GENOME_SCHEMA:
            raise FaultConfigError(
                f"not a fuzz genome (fuzz_genome={data.get('fuzz_genome')!r})"
            )
        schedule = FaultSchedule.from_json(json.dumps(data.get("schedule", [])))
        try:
            return cls(
                mode=data["mode"],
                workload_seed=data["workload_seed"],
                num_ops=data["num_ops"],
                num_keys=data["num_keys"],
                schedule=schedule,
                n_nodes=data.get("n_nodes", 0),
                storm_kind=data.get("storm_kind", ""),
                shards=data.get("shards", 0),
            )
        except KeyError as exc:
            raise FaultConfigError(f"genome missing field {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "Genome":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultConfigError(f"unparseable genome: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultConfigError("genome JSON must be an object")
        return cls.from_dict(data)


__all__ = [
    "GENOME_SCHEMA",
    "HORIZON_PER_OP_NS",
    "KEYS_BOUNDS",
    "MODE_CLUSTER",
    "MODE_DST",
    "MODE_SERVING",
    "MODE_STORM",
    "MODES",
    "OPS_BOUNDS",
    "STORM_KINDS",
    "STORM_WINDOW_FRACS",
    "Genome",
]
