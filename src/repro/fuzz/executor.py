"""Run one genome through its harness, under a tracer, into an Outcome.

The executor is the fuzzer's oracle boundary: a genome goes in, the
matching DST harness runs it with a fresh :class:`~repro.obs.Tracer`
bound, and what comes out is (a) the harness's own invariant verdict and
(b) the run's coverage vocabulary (trace items + event-log shapes +
outcome tokens).  A harness that *raises* instead of returning a verdict
is itself a finding — the exception becomes a failing outcome rather
than killing the fuzz loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

from repro.dst.cluster import ClusterDstConfig, ClusterDstRun
from repro.dst.harness import DstConfig, DstRun
from repro.dst.serving import ServingDstConfig, ServingDstRun
from repro.dst.storm import StormConfig, StormRun
from repro.fuzz.genome import MODE_CLUSTER, MODE_DST, MODE_SERVING, MODE_STORM, Genome
from repro.obs import Tracer, set_active_tracer
from repro.obs.vocab import log_vocabulary, normalize_log_line, trace_vocabulary


@dataclass(frozen=True)
class Outcome:
    """What one genome execution produced."""

    ok: bool
    verdict: str  # "PASS" | "FAIL(<reason>)" | "EXCEPTION(<type: msg>)"
    reason: str  # "" when ok
    vocab: FrozenSet[str]
    faults_fired: int
    trace_events: int

    @property
    def signature(self) -> str:
        """Normalised failure class (for crasher dedup); "" when ok."""
        if self.ok:
            return ""
        return normalize_log_line(self.reason)


def build_run(genome: Genome):
    """Instantiate the harness run a genome describes (not yet executed)."""
    if genome.mode == MODE_DST:
        return DstRun(
            genome.workload_seed,
            DstConfig(
                num_ops=genome.num_ops,
                num_keys=genome.num_keys,
                schedule=genome.schedule,
            ),
        )
    if genome.mode == MODE_STORM:
        return StormRun(
            genome.workload_seed,
            StormConfig(
                kind=genome.storm_kind,
                num_ops=genome.num_ops,
                num_keys=genome.num_keys,
                schedule=genome.schedule,
            ),
        )
    if genome.mode == MODE_SERVING:
        return ServingDstRun(
            genome.workload_seed,
            ServingDstConfig(
                shards=genome.shards,
                replicas=genome.n_nodes,
                key_count=genome.num_keys,
                duration_ns=genome.horizon_ns,
                schedule=genome.schedule,
            ),
        )
    return ClusterDstRun(
        genome.workload_seed,
        ClusterDstConfig(
            num_ops=genome.num_ops,
            num_keys=genome.num_keys,
            n_nodes=genome.n_nodes,
            schedule=genome.schedule,
        ),
    )


def execute(genome: Genome, max_trace_events: int = 200_000) -> Outcome:
    """Run ``genome`` deterministically; never raises for harness failures."""
    tracer = Tracer(max_events=max_trace_events)
    set_active_tracer(tracer)
    events: List[str] = []
    faults_fired = 0
    run = None
    try:
        run = build_run(genome)
        result = run.run()
        ok = result.ok
        reason = result.reason
        verdict = result.verdict
        events = result.events
        faults_fired = getattr(result, "faults_fired", 0)
    except Exception as exc:  # noqa: BLE001 — an escaping exception IS the finding
        ok = False
        reason = f"{type(exc).__name__}: {exc}"
        verdict = f"EXCEPTION({reason})"
        events = list(getattr(run, "events", []) or [])
    finally:
        set_active_tracer(None)

    vocab = set(trace_vocabulary(tracer))
    vocab |= log_vocabulary(events)
    vocab.add(f"outcome|{genome.mode}|{'pass' if ok else 'fail'}")
    if not ok:
        vocab.add(f"outcome|{genome.mode}|{normalize_log_line(reason)}")
    return Outcome(
        ok=ok,
        verdict=verdict,
        reason=reason,
        vocab=frozenset(vocab),
        faults_fired=faults_fired,
        trace_events=tracer.num_events,
    )


__all__ = ["Outcome", "build_run", "execute"]
