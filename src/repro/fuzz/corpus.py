"""The fuzzer's corpus: bootstrap seeds + persisted crashers.

A corpus entry under ``tests/corpus/`` is one replayable JSON artifact:
a :class:`~repro.fuzz.genome.Genome` plus the verdict its replay must
produce.  The regression tier (``tests/fuzz/test_corpus.py``) collects
every ``*.json`` in that directory into parametrized pytest cases, so a
fuzzer find — once minimized, fixed and flipped to ``expect.ok: true``
— can never silently regress.

Bootstrap genomes mirror the schedules the existing DST / storm /
cluster harnesses would draw for their first few seeds, so the fuzzer
starts from scenarios that are known-meaningful rather than from noise.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Sequence

from repro.dst.cluster import ClusterDstConfig
from repro.dst.harness import DstConfig
from repro.dst.serving import ServingDstConfig, draw_serving_chaos
from repro.dst.storm import StormConfig, StormRun
from repro.errors import FaultConfigError
from repro.faults import CRASH, FaultSchedule, FaultSpec
from repro.fuzz.genome import (
    HORIZON_PER_OP_NS,
    MODE_CLUSTER,
    MODE_DST,
    MODE_SERVING,
    MODE_STORM,
    MODES,
    Genome,
)
from repro.sim.rng import RandomStream

CORPUS_SCHEMA = 1
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")


@dataclass(frozen=True)
class CorpusEntry:
    """One persisted scenario and the verdict its replay must produce."""

    name: str
    origin: str  # "bootstrap" | "fuzzer"
    note: str
    genome: Genome
    expect_ok: bool
    #: Normalised failure class (``Outcome.signature``); "" when expect_ok.
    expect_signature: str = ""

    def to_json(self) -> str:
        data = {
            "fuzz_corpus": CORPUS_SCHEMA,
            "name": self.name,
            "origin": self.origin,
            "note": self.note,
            "expect": {"ok": self.expect_ok, "signature": self.expect_signature},
            "genome": json.loads(self.genome.to_json()),
        }
        return json.dumps(data, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CorpusEntry":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultConfigError(f"unparseable corpus entry: {exc}") from exc
        if not isinstance(data, dict) or data.get("fuzz_corpus") != CORPUS_SCHEMA:
            raise FaultConfigError("not a fuzz corpus entry")
        expect = data.get("expect", {})
        return cls(
            name=data["name"],
            origin=data.get("origin", "fuzzer"),
            note=data.get("note", ""),
            genome=Genome.from_dict(data["genome"]),
            expect_ok=bool(expect.get("ok", True)),
            expect_signature=expect.get("signature", ""),
        )

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def from_file(cls, path: str) -> "CorpusEntry":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def corpus_files(dirpath: str) -> List[str]:
    """Sorted ``*.json`` paths under ``dirpath`` ([] when absent)."""
    if not os.path.isdir(dirpath):
        return []
    return [
        os.path.join(dirpath, name)
        for name in sorted(os.listdir(dirpath))
        if name.endswith(".json")
    ]


def load_corpus(dirpath: str) -> List[CorpusEntry]:
    return [CorpusEntry.from_file(path) for path in corpus_files(dirpath)]


def bootstrap_genomes(modes: Sequence[str] = MODES) -> List[Genome]:
    """Deterministic seed scenarios mirroring the existing harnesses.

    Each genome reproduces exactly what ``python -m repro.dst`` (or
    ``--storm`` / ``--cluster``) would run for that seed: the harnesses
    draw their schedules from named RNG forks, so pre-drawing the same
    schedule and passing it back via the config override is
    byte-identical to letting the harness draw it.
    """
    genomes: List[Genome] = []
    if MODE_DST in modes:
        for seed in (0, 1, 2, 3):
            cfg = DstConfig()
            rng = RandomStream(seed, "dst")
            schedule = FaultSchedule.random(
                rng.fork("faults"), cfg.horizon_ns, max_faults=cfg.max_faults
            )
            crash_at = rng.fork("crash").randint(cfg.horizon_ns // 8, cfg.horizon_ns)
            schedule.add(FaultSpec(CRASH, at_time=crash_at))
            genomes.append(
                Genome(
                    MODE_DST,
                    workload_seed=seed,
                    num_ops=cfg.num_ops,
                    num_keys=cfg.num_keys,
                    schedule=schedule,
                )
            )
    if MODE_STORM in modes:
        for seed in (0, 1, 2):
            # Let the harness resolve kind/schedule for this seed, then
            # freeze both into the genome.
            run = StormRun(seed, StormConfig())
            genomes.append(
                Genome(
                    MODE_STORM,
                    workload_seed=seed,
                    num_ops=run.config.num_ops,
                    num_keys=run.config.num_keys,
                    schedule=run.schedule,
                    storm_kind=run.kind,
                )
            )
    if MODE_CLUSTER in modes:
        for seed in (0, 1):
            cfg = ClusterDstConfig()
            rng = RandomStream(seed, "cluster-dst")
            schedule = FaultSchedule.random_cluster(
                rng.fork("faults"),
                cfg.horizon_ns,
                cfg.n_nodes,
                max_faults=cfg.max_faults,
            )
            genomes.append(
                Genome(
                    MODE_CLUSTER,
                    workload_seed=seed,
                    num_ops=cfg.num_ops,
                    num_keys=cfg.num_keys,
                    schedule=schedule,
                    n_nodes=cfg.n_nodes,
                )
            )
    if MODE_SERVING in modes:
        for seed in (0, 1):
            cfg = ServingDstConfig()
            rng = RandomStream(seed, "serving-dst")
            schedule = draw_serving_chaos(
                rng.fork("chaos"), cfg.horizon_ns, cfg.shards, cfg.replicas
            )
            genomes.append(
                Genome(
                    MODE_SERVING,
                    workload_seed=seed,
                    num_ops=cfg.duration_ns // HORIZON_PER_OP_NS[MODE_SERVING],
                    num_keys=cfg.key_count,
                    schedule=schedule,
                    n_nodes=cfg.replicas,
                    shards=cfg.shards,
                )
            )
    return genomes


__all__ = [
    "CORPUS_SCHEMA",
    "CorpusEntry",
    "DEFAULT_CORPUS_DIR",
    "bootstrap_genomes",
    "corpus_files",
    "load_corpus",
]
