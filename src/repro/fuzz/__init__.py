"""Coverage-guided scenario fuzzing over the deterministic harnesses.

``repro.fuzz`` turns the repo's invariant checkers (crash DST, storm
DST, cluster DST) from spot-checks into a search process:

* the **genome** (:mod:`repro.fuzz.genome`) is a harness mode, workload
  knobs and a schema-v2 :class:`~repro.faults.FaultSchedule`;
* **mutation** (:mod:`repro.fuzz.mutators` over
  :mod:`repro.faults.mutate`) perturbs schedules and workloads inside
  validity bounds;
* the **coverage signal** (:mod:`repro.obs.vocab`) is the run's
  trace-event vocabulary — distinct state transitions, error paths and
  log shapes — so a mutant is kept iff the system said something new;
* **crashers** are deduplicated by failure class, minimized
  (:mod:`repro.fuzz.minimize`) and persisted under ``tests/corpus/`` as
  replayable JSON (:mod:`repro.fuzz.corpus`), which the regression test
  tier replays forever after.

Entry point: ``python -m repro.fuzz --seed N --iters K [--jobs J]`` —
deterministic for any jobs value.
"""

from repro.fuzz.corpus import (
    CORPUS_SCHEMA,
    CorpusEntry,
    DEFAULT_CORPUS_DIR,
    bootstrap_genomes,
    corpus_files,
    load_corpus,
)
from repro.fuzz.executor import Outcome, build_run, execute
from repro.fuzz.fuzzer import Crasher, FuzzConfig, FuzzReport, run_fuzz
from repro.fuzz.genome import (
    MODE_CLUSTER,
    MODE_DST,
    MODE_SERVING,
    MODE_STORM,
    MODES,
    Genome,
)
from repro.fuzz.minimize import minimize
from repro.fuzz.mutators import mutate_genome

__all__ = [
    "CORPUS_SCHEMA",
    "Crasher",
    "CorpusEntry",
    "DEFAULT_CORPUS_DIR",
    "FuzzConfig",
    "FuzzReport",
    "Genome",
    "MODE_CLUSTER",
    "MODE_DST",
    "MODE_SERVING",
    "MODE_STORM",
    "MODES",
    "Outcome",
    "bootstrap_genomes",
    "build_run",
    "corpus_files",
    "execute",
    "load_corpus",
    "minimize",
    "mutate_genome",
    "run_fuzz",
]
