"""Crasher minimization (ddmin-lite over the genome).

A raw crasher usually carries specs that have nothing to do with the
failure.  Minimization greedily (a) drops schedule specs and (b) halves
the op count, keeping each candidate only if it still fails with the
*same normalised failure class* — so the persisted corpus artifact is
the smallest scenario that tells the same story.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Tuple

from repro.faults import FaultSchedule
from repro.faults.mutate import clamp_schedule
from repro.fuzz.executor import Outcome, execute
from repro.fuzz.genome import OPS_BOUNDS, Genome


def minimize(
    genome: Genome,
    outcome: Outcome,
    executor: Callable[[Genome], Outcome] = execute,
    max_executions: int = 64,
) -> Tuple[Genome, int]:
    """Shrink a failing genome; returns (minimized, executions spent).

    ``outcome`` must be the failing outcome of ``genome``.  The result
    is guaranteed to still fail with the same signature (candidates that
    pass or fail differently are discarded).
    """
    if outcome.ok:
        raise ValueError("minimize() wants a failing genome")
    target = outcome.signature
    current = genome
    spent = 0

    def still_fails(candidate: Genome) -> bool:
        nonlocal spent
        if spent >= max_executions:
            return False
        spent += 1
        out = executor(candidate)
        return (not out.ok) and out.signature == target

    # Pass 1: drop specs one at a time, back to front, to a fixpoint.
    changed = True
    while changed and spent < max_executions:
        changed = False
        for i in reversed(range(len(current.schedule.specs))):
            specs = list(current.schedule.specs)
            del specs[i]
            candidate = current.with_schedule(FaultSchedule(specs))
            if still_fails(candidate):
                current = candidate
                changed = True

    # Pass 2: halve the op count while the failure survives.
    lo = OPS_BOUNDS[current.mode][0]
    while current.num_ops > lo and spent < max_executions:
        ops = max(lo, current.num_ops // 2)
        if ops == current.num_ops:
            break
        candidate = replace(current, num_ops=ops)
        candidate = candidate.with_schedule(
            clamp_schedule(candidate.schedule, candidate.mutation_context())
        )
        if still_fails(candidate):
            current = candidate
        else:
            break

    return current, spent


__all__ = ["minimize"]
