"""Genome-level mutation: workload knobs + the embedded fault schedule.

Schedule genetics live in :mod:`repro.faults.mutate`; this module adds
the workload axis (op/key counts, workload seed) and keeps the schedule
consistent with the resized horizon via :func:`clamp_schedule`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.faults.mutate import clamp_schedule, mutate_schedule
from repro.fuzz.genome import KEYS_BOUNDS, OPS_BOUNDS, Genome
from repro.sim.rng import RandomStream


def _clamp(value: int, lo: int, hi: int) -> int:
    return max(lo, min(hi, value))


def mutate_genome(genome: Genome, rng: RandomStream) -> Genome:
    """One mutation step: maybe nudge the workload, always mutate faults."""
    g = genome
    roll = rng.random()
    if roll < 0.10:
        lo, hi = OPS_BOUNDS[g.mode]
        ops = _clamp(int(g.num_ops * rng.uniform(0.6, 1.6)), lo, hi)
        g = replace(g, num_ops=ops)
        # The horizon moved: fold existing triggers back inside it.
        g = g.with_schedule(clamp_schedule(g.schedule, g.mutation_context()))
    elif roll < 0.18:
        lo, hi = KEYS_BOUNDS[g.mode]
        keys = _clamp(int(g.num_keys * rng.uniform(0.5, 2.0)), lo, hi)
        g = replace(g, num_keys=keys)
    elif roll < 0.25:
        g = replace(g, workload_seed=rng.randint(0, 2**31 - 1))
    return g.with_schedule(mutate_schedule(g.schedule, rng, g.mutation_context()))


__all__ = ["mutate_genome"]
