"""The coverage-guided fuzz loop.

The loop is batch-synchronous so it parallelises without losing
determinism: every RNG draw (parent selection, mutation) happens in the
parent process *before* a batch executes, the batch composition is a
pure function of the seed, and results are merged in batch order.  The
worker count only decides how many harness runs are in flight at once —
``--jobs 1`` and ``--jobs N`` produce identical coverage sets,
fingerprints and crashers.

Guidance works as in any coverage-guided fuzzer: a genome whose run
emits vocabulary items never seen before joins the mutation pool; every
distinct failure class is recorded once, minimized, and reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import hashlib

from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    CorpusEntry,
    bootstrap_genomes,
    load_corpus,
)
from repro.fuzz.executor import Outcome, execute
from repro.fuzz.genome import MODES, Genome
from repro.fuzz.minimize import minimize
from repro.fuzz.mutators import mutate_genome
from repro.obs.vocab import vocabulary_fingerprint
from repro.perf.parallel import map_points
from repro.sim.rng import RandomStream


@dataclass
class FuzzConfig:
    seed: int = 0
    iters: int = 64
    batch: int = 8
    jobs: int = 1
    modes: Tuple[str, ...] = MODES
    #: Directory of extra seed scenarios (None/"" = bootstrap only).
    corpus_dir: Optional[str] = DEFAULT_CORPUS_DIR
    minimize_crashers: bool = True
    max_minimize_executions: int = 48


@dataclass
class Crasher:
    """One distinct failure class found during a fuzz session."""

    genome: Genome  # as found
    minimized: Genome
    outcome: Outcome
    signature: str

    @property
    def artifact_name(self) -> str:
        """Deterministic corpus filename stem for this failure class."""
        digest = hashlib.md5(self.signature.encode("utf-8")).hexdigest()[:10]
        return f"crasher-{self.genome.mode}-{digest}"

    def to_entry(self) -> CorpusEntry:
        return CorpusEntry(
            name=self.artifact_name,
            origin="fuzzer",
            note=f"found by repro.fuzz; verdict: {self.outcome.verdict}",
            genome=self.minimized,
            expect_ok=False,
            expect_signature=self.signature,
        )


@dataclass
class FuzzReport:
    seed: int
    executed: int
    coverage: Tuple[str, ...]  # sorted vocabulary
    crashers: List[Crasher]
    pool_size: int
    lines: List[str] = field(default_factory=list)

    @property
    def coverage_count(self) -> int:
        return len(self.coverage)

    @property
    def fingerprint(self) -> str:
        return vocabulary_fingerprint(self.coverage)


def _execute_worker(genome: Genome) -> Outcome:
    return execute(genome)


def run_fuzz(
    config: FuzzConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one deterministic fuzz session."""
    rng = RandomStream(config.seed, "fuzz")
    seeds = bootstrap_genomes(config.modes)
    if config.corpus_dir:
        for entry in load_corpus(config.corpus_dir):
            if entry.genome.mode in config.modes:
                seeds.append(entry.genome)
    if not seeds:
        raise ValueError(f"no seed genomes for modes {config.modes!r}")

    coverage: set = set()
    pool: List[Genome] = []
    crashers: List[Crasher] = []
    seen_signatures: set = set()
    lines: List[str] = []
    executed = 0
    round_no = 0
    pending = list(seeds)

    while executed < config.iters:
        take = min(config.batch, config.iters - executed)
        if pending:
            batch = pending[:take]
            pending = pending[take:]
            origin = "seed"
        else:
            parents = pool if pool else seeds
            batch = [
                mutate_genome(parents[rng.randint(0, len(parents) - 1)], rng)
                for _ in range(take)
            ]
            origin = "mutate"
        outcomes = map_points(_execute_worker, batch, jobs=config.jobs)

        fresh_items = 0
        for genome, outcome in zip(batch, outcomes):
            executed += 1
            fresh = outcome.vocab - coverage
            if fresh:
                coverage |= fresh
                fresh_items += len(fresh)
                pool.append(genome)
            if not outcome.ok and outcome.signature not in seen_signatures:
                seen_signatures.add(outcome.signature)
                if config.minimize_crashers:
                    minimized, _spent = minimize(
                        genome,
                        outcome,
                        max_executions=config.max_minimize_executions,
                    )
                else:
                    minimized = genome
                crashers.append(
                    Crasher(
                        genome=genome,
                        minimized=minimized,
                        outcome=outcome,
                        signature=outcome.signature,
                    )
                )
        round_no += 1
        line = (
            f"round {round_no:3d} [{origin:6s}] executed={executed:4d} "
            f"coverage={len(coverage):4d} (+{fresh_items}) "
            f"pool={len(pool)} crashers={len(crashers)}"
        )
        lines.append(line)
        if progress is not None:
            progress(line)

    return FuzzReport(
        seed=config.seed,
        executed=executed,
        coverage=tuple(sorted(coverage)),
        crashers=crashers,
        pool_size=len(pool),
        lines=lines,
    )


__all__ = ["Crasher", "FuzzConfig", "FuzzReport", "run_fuzz"]
