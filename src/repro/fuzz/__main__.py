"""CLI: ``python -m repro.fuzz --seed N --iters K``.

A fuzz session is fully deterministic: the same seed and iteration
budget produce the same batches, the same coverage set/fingerprint and
the same crashers for *any* ``--jobs`` value.  ``--replay FILE`` re-runs
one corpus entry (or bare genome JSON) and checks its expected verdict;
``--save-crashers DIR`` persists every minimized crasher as a replayable
corpus artifact.

Exit codes: 0 clean, 1 crashers found (or replay mismatch), 2 coverage
below ``--min-coverage``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.errors import FaultConfigError
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, CorpusEntry
from repro.fuzz.executor import execute
from repro.fuzz.fuzzer import FuzzConfig, run_fuzz
from repro.fuzz.genome import MODES, Genome
from repro.obs.vocab import vocabulary_fingerprint
from repro.perf.parallel import default_jobs


def _replay(path: str) -> int:
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    entry: Optional[CorpusEntry] = None
    try:
        entry = CorpusEntry.from_json(text)
        genome = entry.genome
    except FaultConfigError:
        genome = Genome.from_json(text)
    outcome = execute(genome)
    print(
        f"replay {os.path.basename(path)}: {outcome.verdict} "
        f"mode={genome.mode} seed={genome.workload_seed} "
        f"faults_fired={outcome.faults_fired} "
        f"vocab={len(outcome.vocab)} "
        f"fingerprint={vocabulary_fingerprint(outcome.vocab)}"
    )
    if entry is None:
        return 0 if outcome.ok else 1
    if outcome.ok != entry.expect_ok or (
        not entry.expect_ok and outcome.signature != entry.expect_signature
    ):
        print(
            f"  MISMATCH: expected ok={entry.expect_ok} "
            f"signature={entry.expect_signature!r}, "
            f"got ok={outcome.ok} signature={outcome.signature!r}"
        )
        return 1
    print("  verdict matches the corpus expectation")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Coverage-guided fuzzing of workload + fault + storm + net "
        "schedules over the deterministic DST harnesses.",
    )
    parser.add_argument("--seed", type=int, default=0, help="fuzz session seed")
    parser.add_argument(
        "--iters", type=int, default=64, help="harness executions to spend"
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=8,
        help="mutations drawn per round (fixed: batch composition never "
        "depends on --jobs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=default_jobs(),
        metavar="N",
        help="worker processes (default: $REPRO_JOBS or 1); results are "
        "identical for any value",
    )
    parser.add_argument(
        "--modes",
        default=",".join(MODES),
        help=f"comma-separated harness modes to fuzz (default: {','.join(MODES)})",
    )
    parser.add_argument(
        "--corpus-dir",
        default=DEFAULT_CORPUS_DIR,
        help=f"seed-corpus directory (default: {DEFAULT_CORPUS_DIR})",
    )
    parser.add_argument(
        "--no-corpus",
        action="store_true",
        help="bootstrap seeds only; ignore --corpus-dir",
    )
    parser.add_argument(
        "--save-crashers",
        metavar="DIR",
        help="write each minimized crasher to DIR as a corpus JSON artifact",
    )
    parser.add_argument(
        "--no-minimize", action="store_true", help="keep crashers as found"
    )
    parser.add_argument(
        "--min-coverage",
        type=int,
        default=0,
        metavar="N",
        help="fail (exit 2) when the final coverage count is below N",
    )
    parser.add_argument(
        "--replay", metavar="FILE", help="re-run one corpus entry / genome JSON"
    )
    parser.add_argument(
        "--dump-coverage",
        metavar="FILE",
        help="write the sorted coverage vocabulary as JSON",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-round progress"
    )
    args = parser.parse_args(argv)

    if args.replay:
        return _replay(args.replay)

    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    for mode in modes:
        if mode not in MODES:
            raise SystemExit(f"unknown mode {mode!r} (choose from {','.join(MODES)})")
    config = FuzzConfig(
        seed=args.seed,
        iters=args.iters,
        batch=args.batch,
        jobs=args.jobs,
        modes=modes,
        corpus_dir=None if args.no_corpus else args.corpus_dir,
        minimize_crashers=not args.no_minimize,
    )
    progress = None if args.quiet else print
    report = run_fuzz(config, progress=progress)

    for crasher in report.crashers:
        mini = crasher.minimized
        print(
            f"crasher [{crasher.signature}]\n"
            f"  found : {crasher.outcome.verdict}\n"
            f"  mini  : mode={mini.mode} seed={mini.workload_seed} "
            f"ops={mini.num_ops} specs={len(mini.schedule)}"
        )
        if args.save_crashers:
            os.makedirs(args.save_crashers, exist_ok=True)
            path = os.path.join(
                args.save_crashers, f"{crasher.artifact_name}.json"
            )
            crasher.to_entry().to_file(path)
            print(f"  saved : {path}")

    if args.dump_coverage:
        with open(args.dump_coverage, "w", encoding="utf-8") as fh:
            json.dump(list(report.coverage), fh, indent=2)
            fh.write("\n")

    print(
        f"fuzz: seed={report.seed} executed={report.executed} "
        f"coverage={report.coverage_count} "
        f"fingerprint={report.fingerprint} "
        f"crashers={len(report.crashers)}"
    )
    if report.crashers:
        return 1
    if args.min_coverage and report.coverage_count < args.min_coverage:
        print(
            f"fuzz: coverage {report.coverage_count} below the "
            f"--min-coverage floor {args.min_coverage}"
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
