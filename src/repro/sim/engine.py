"""Discrete-event simulation kernel.

The kernel is a classic event-heap simulator in the style of SimPy, rebuilt
from scratch and tuned for the access patterns of this project (millions of
short-lived key-value operations per run).

Concepts
--------

``Engine``
    Owns the virtual clock and the event heap.  ``Engine.run()`` drives the
    simulation until the heap drains or a deadline is reached.

``Process``
    A generator wrapped as a simulated thread of control.  Inside a process
    generator you may ``yield``:

    * an ``int``/``float`` — sleep for that many nanoseconds;
    * an :class:`Event` — suspend until the event fires (the ``yield``
      expression evaluates to the event's value, or raises its failure);
    * another :class:`Process` — suspend until that process finishes
      (evaluates to its return value; re-raises its unhandled error).

``Event``
    A one-shot occurrence that processes can wait on.  ``succeed(value)``
    and ``fail(exc)`` fire it.  Composite helpers :class:`AllOf` and
    :class:`AnyOf` combine events.

Determinism
-----------
Two events scheduled for the same timestamp fire in scheduling order (a
monotonically increasing sequence number breaks ties), so a run with a fixed
seed replays identically.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.tracer import active_tracer

ProcessGen = Generator[Any, Any, Any]

_PENDING = object()


class Event:
    """A one-shot occurrence that simulated processes can wait on."""

    __slots__ = ("engine", "_value", "_exc", "triggered", "_waiters", "callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self.triggered = False
        # Processes blocked on this event, resumed in FIFO order.
        self._waiters: list["Process"] = []
        # Plain callables invoked on trigger: callback(event).
        self.callbacks: list[Callable[["Event"], None]] = []

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, waking all waiters."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._value = value
        self._fire()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event as a failure; waiters see ``exc`` raised."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exc!r}")
        self.triggered = True
        self._exc = exc
        self._fire()
        return self

    def _fire(self) -> None:
        engine = self.engine
        for proc in self._waiters:
            engine._schedule(proc, self._value, self._exc, 0)
        self._waiters.clear()
        for cb in self.callbacks:
            cb(self)
        self.callbacks.clear()

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)


class Timeout(Event):
    """An event that fires automatically after a delay.

    Prefer ``yield <int>`` inside processes (it avoids allocating an event);
    ``Timeout`` exists for composing with :class:`AnyOf` (e.g. waits with a
    deadline).
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: int, value: Any = None) -> None:
        super().__init__(engine)
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        engine._schedule_event(self, value, int(delay))


class AllOf(Event):
    """Fires once every child event has succeeded.

    Its value is the list of child values in construction order.  If any
    child fails, ``AllOf`` fails with the first failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self._children = list(events)
        self._remaining = 0
        for ev in self._children:
            if ev.triggered:
                if ev._exc is not None and not self.triggered:
                    self.fail(ev._exc)
                continue
            self._remaining += 1
            ev.callbacks.append(self._on_child)
        if not self.triggered and self._remaining == 0:
            self.succeed([ev._value for ev in self._children])

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._children])


class AnyOf(Event):
    """Fires as soon as any child event triggers; value is ``(event, value)``."""

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self._children:
            if ev.triggered:
                if ev._exc is not None:
                    self.fail(ev._exc)
                else:
                    self.succeed((ev, ev._value))
                return
        for ev in self._children:
            ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
        else:
            self.succeed((ev, ev._value))


class Process(Event):
    """A simulated thread of control wrapping a generator.

    A ``Process`` is itself an :class:`Event` that triggers when the
    generator returns (value = the generator's return value) or raises
    (failure).  ``yield some_process`` therefore joins it.
    """

    __slots__ = ("gen", "name")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = "") -> None:
        super().__init__(engine)
        if not hasattr(gen, "send"):
            raise SimulationError(f"Process requires a generator, got {type(gen).__name__}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        engine._schedule(self, None, None, 0)
        engine.tracer.process_spawn(self.name)

    @property
    def done(self) -> bool:
        return self.triggered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "active"
        return f"<Process {self.name} {state}>"

    # -- kernel internals ---------------------------------------------------

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        """Advance the generator until it blocks again."""
        gen = self.gen
        engine = self.engine
        while True:
            try:
                if exc is not None:
                    pending_exc, exc = exc, None
                    target = gen.throw(pending_exc)
                else:
                    target = gen.send(value)
            except StopIteration as stop:
                self.triggered = True
                self._value = stop.value
                self._fire()
                engine.tracer.process_finish(self.name, True)
                return
            except BaseException as err:  # noqa: BLE001 - process crashed
                self.triggered = True
                self._exc = err
                if not self._waiters and not self.callbacks:
                    # Nobody is joining this process: surface the crash.
                    engine._crashed.append(self)
                self._fire()
                engine.tracer.process_finish(self.name, False)
                return

            cls = target.__class__
            if cls is int or cls is float:
                if target < 0:
                    exc = SimulationError(f"negative sleep: {target}")
                    continue
                if target == 0:
                    value = engine.now
                    continue
                engine._schedule(self, None, None, int(target))
                return
            if isinstance(target, Event):
                if target.triggered:
                    if target._exc is not None:
                        exc = target._exc
                        continue
                    value = target._value
                    continue
                target._add_waiter(self)
                return
            exc = SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}"
            )


class Engine:
    """The simulation event loop and virtual clock.

    ``tracer`` is a :class:`repro.obs.Tracer` to record this engine's runs
    into; by default the globally active tracer is used (the shared no-op
    tracer unless :func:`repro.obs.set_active_tracer` installed a real one).
    """

    def __init__(self, tracer: Optional[Any] = None) -> None:
        self._now = 0
        self._heap: list[tuple[int, int, Any, Any, Optional[BaseException]]] = []
        self._seq = 0
        self._running = False
        self._crashed: list[Process] = []
        self.tracer = (tracer if tracer is not None else active_tracer()).bind(self)

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    # -- public API -------------------------------------------------------

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Register a generator as a new simulated process."""
        return Process(self, gen, name)

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` nanoseconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[int] = None) -> int:
        """Run until the heap drains or the clock reaches ``until``.

        Returns the clock value at exit.  Unhandled exceptions in processes
        that nothing joined are re-raised here (errors never pass silently).
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        heap = self._heap
        try:
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                _, _, target, value, exc = heapq.heappop(heap)
                self._now = when
                if target.__class__ is Process or isinstance(target, Process):
                    target._step(value, exc)
                else:  # a plain Event scheduled via _schedule_event
                    if not target.triggered:
                        if exc is not None:
                            target.fail(exc)
                        else:
                            target.succeed(value)
                if self._crashed:
                    crashed = self._crashed[0]
                    raise SimulationError(
                        f"process {crashed.name!r} crashed"
                    ) from crashed._exc
            else:
                if until is not None and self._now < until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def peek(self) -> Optional[int]:
        """Timestamp of the next scheduled occurrence, or None if idle."""
        return self._heap[0][0] if self._heap else None

    def clear_pending(self) -> int:
        """Drop every scheduled occurrence (simulated power loss).

        Suspended processes are never resumed — exactly what happens to
        in-flight work when the machine dies.  Returns the number of
        cancelled occurrences.
        """
        if self._running:
            raise SimulationError("clear_pending() during run() is not supported")
        dropped = len(self._heap)
        self._heap.clear()
        return dropped

    # -- kernel internals ---------------------------------------------------

    def _schedule(
        self,
        proc: Process,
        value: Any,
        exc: Optional[BaseException],
        delay: int,
    ) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, proc, value, exc))

    def _schedule_event(self, event: Event, value: Any, delay: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event, value, None))
