"""Discrete-event simulation kernel.

The kernel is a classic event-heap simulator in the style of SimPy, rebuilt
from scratch and tuned for the access patterns of this project (millions of
short-lived key-value operations per run).

Concepts
--------

``Engine``
    Owns the virtual clock and the event heap.  ``Engine.run()`` drives the
    simulation until the heap drains or a deadline is reached.

``Process``
    A generator wrapped as a simulated thread of control.  Inside a process
    generator you may ``yield``:

    * an ``int``/``float`` — sleep for that many nanoseconds;
    * an :class:`Event` — suspend until the event fires (the ``yield``
      expression evaluates to the event's value, or raises its failure);
    * another :class:`Process` — suspend until that process finishes
      (evaluates to its return value; re-raises its unhandled error).

``Event``
    A one-shot occurrence that processes can wait on.  ``succeed(value)``
    and ``fail(exc)`` fire it.  Composite helpers :class:`AllOf` and
    :class:`AnyOf` combine events.

Determinism
-----------
Two events scheduled for the same timestamp fire in scheduling order (a
monotonically increasing sequence number breaks ties), so a run with a fixed
seed replays identically.
"""

from __future__ import annotations

import heapq
from collections import deque
from types import GeneratorType as _GeneratorType
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.tracer import active_tracer

ProcessGen = Generator[Any, Any, Any]

_PENDING = object()

# Hot-path bindings: module-level names resolve faster than attribute
# lookups on ``heapq`` inside the kernel loops.
_heappush = heapq.heappush
_heappop = heapq.heappop

# Heap entries are ``(when, seq, is_process, target, value, exc)``.  The
# boolean type tag is precomputed at push time so the pop path never runs
# ``isinstance``; it can never participate in tuple comparison because the
# sequence number in slot 1 is unique.
#
# Delay-zero occurrences (process spawns, event-fire wakeups) skip the heap
# entirely: they go to ``Engine._nowq``, a FIFO deque of
# ``(is_process, target, value, exc)`` entries all due at the current clock
# value.  Ordering stays exactly the heap's: a heap entry at ``when == now``
# was pushed with a positive delay from an *earlier* time, i.e. before any
# delay-zero entry enqueued at ``now``, so draining heap ties first replays
# the old seq order while the common spawn/wakeup path costs one deque
# append instead of a heappush + heappop.
_PROC = True
_EVENT = False

_INF = float("inf")


class Event:
    """A one-shot occurrence that simulated processes can wait on."""

    __slots__ = ("engine", "_value", "_exc", "triggered", "_waiters", "callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self.triggered = False
        # Processes blocked on this event, resumed in FIFO order.  Allocated
        # lazily (None until the first waiter): most events are waited on by
        # at most one process, and many by none.
        self._waiters: Optional[list["Process"]] = None
        # Plain callables invoked on trigger: callback(event).
        self.callbacks: list[Callable[["Event"], None]] = []

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, waking all waiters."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._value = value
        # _fire() inlined (succeed is the hot trigger path): wake waiters
        # with a deque append each, then run callbacks if any.
        waiters = self._waiters
        if waiters:
            nowq = self.engine._nowq
            for proc in waiters:
                nowq.append((_PROC, proc, value, None))
            self._waiters = None
        if self.callbacks:
            self._run_callbacks()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event as a failure; waiters see ``exc`` raised."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exc!r}")
        self.triggered = True
        self._exc = exc
        self._fire()
        return self

    def _fire(self) -> None:
        waiters = self._waiters
        if waiters:
            nowq = self.engine._nowq
            value = self._value
            exc = self._exc
            for proc in waiters:
                nowq.append((_PROC, proc, value, exc))
            self._waiters = None
        if self.callbacks:
            self._run_callbacks()

    def _run_callbacks(self) -> None:
        # Snapshot the callback list before iterating: a callback that
        # registers another callback on this event must see it run exactly
        # once (appending to the list being iterated would double-run it;
        # clearing afterwards would silently drop it).  Loop until no new
        # callbacks appear.
        while True:
            callbacks = self.callbacks
            if not callbacks:
                return
            self.callbacks = []
            for cb in callbacks:
                cb(self)

    def _add_waiter(self, proc: "Process") -> None:
        waiters = self._waiters
        if waiters is None:
            self._waiters = [proc]
        else:
            waiters.append(proc)


class Timeout(Event):
    """An event that fires automatically after a delay.

    Prefer ``yield <int>`` inside processes (it avoids allocating an event);
    ``Timeout`` exists for composing with :class:`AnyOf` (e.g. waits with a
    deadline).
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: int, value: Any = None) -> None:
        super().__init__(engine)
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        engine._schedule_event(self, value, int(delay))


class AllOf(Event):
    """Fires once every child event has succeeded.

    Its value is the list of child values in construction order.  If any
    child fails, ``AllOf`` fails with the first failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self._children = list(events)
        self._remaining = 0
        for ev in self._children:
            if self.triggered:
                # An earlier child already failed the composite: attaching
                # callbacks to the remaining children would leak them and
                # re-enter fail() paths when those children trigger.
                break
            if ev.triggered:
                if ev._exc is not None:
                    self.fail(ev._exc)
                continue
            self._remaining += 1
            ev.callbacks.append(self._on_child)
        if not self.triggered and self._remaining == 0:
            self.succeed([ev._value for ev in self._children])

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._children])


class AnyOf(Event):
    """Fires as soon as any child event triggers; value is ``(event, value)``."""

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self._children:
            if ev.triggered:
                if ev._exc is not None:
                    self.fail(ev._exc)
                else:
                    self.succeed((ev, ev._value))
                return
        for ev in self._children:
            ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
        else:
            self.succeed((ev, ev._value))


class Process(Event):
    """A simulated thread of control wrapping a generator.

    A ``Process`` is itself an :class:`Event` that triggers when the
    generator returns (value = the generator's return value) or raises
    (failure).  ``yield some_process`` therefore joins it.
    """

    __slots__ = ("gen", "name")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = "") -> None:
        # Event.__init__ inlined: spawning is hot (one Process per simulated
        # operation in the write path) and the extra call shows in profiles.
        self.engine = engine
        self._value = _PENDING
        self._exc = None
        self.triggered = False
        self._waiters = None
        self.callbacks = []
        if gen.__class__ is not _GeneratorType and not hasattr(gen, "send"):
            raise SimulationError(f"Process requires a generator, got {type(gen).__name__}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        engine._nowq.append((_PROC, self, None, None))
        if engine._trace:
            engine.tracer.process_spawn(self.name)

    @property
    def done(self) -> bool:
        return self.triggered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "active"
        return f"<Process {self.name} {state}>"


class Engine:
    """The simulation event loop and virtual clock.

    ``tracer`` is a :class:`repro.obs.Tracer` to record this engine's runs
    into; by default the globally active tracer is used (the shared no-op
    tracer unless :func:`repro.obs.set_active_tracer` installed a real one).
    """

    __slots__ = (
        "_now",
        "_heap",
        "_nowq",
        "_seq",
        "_running",
        "_crashed",
        "run_limit",
        "tracer",
        "_trace",
    )

    def __init__(self, tracer: Optional[Any] = None) -> None:
        self._now = 0
        self._heap: list[tuple[int, int, bool, Any, Any, Optional[BaseException]]] = []
        # Delay-zero occurrences due at the current clock value (FIFO).
        self._nowq: deque = deque()
        self._seq = 0
        self._running = False
        self._crashed: list[Process] = []
        # The active run()'s deadline (inf when open-ended), -1 outside
        # run(): the ceiling :func:`drive` may warp the clock up to.
        self.run_limit: Any = -1
        self.tracer = (tracer if tracer is not None else active_tracer()).bind(self)
        # Cached so hot paths skip even the no-op tracer calls when tracing
        # is off (NullTracer.enabled is False; EngineTracer.enabled True).
        self._trace = bool(self.tracer.enabled)

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    # -- public API -------------------------------------------------------

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Register a generator as a new simulated process."""
        return Process(self, gen, name)

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` nanoseconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[int] = None) -> int:
        """Run until the heap drains or the clock reaches ``until``.

        Returns the clock value at exit.  Unhandled exceptions in processes
        that nothing joined are re-raised here (errors never pass silently).
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        heap = self._heap
        nowq = self._nowq
        heappop = _heappop
        heappush = _heappush
        popleft = nowq.popleft
        crashed_box = self._crashed
        trace = self._trace
        limit = _INF if until is None else until
        self.run_limit = limit
        now = self._now
        try:
            while True:
                if nowq:
                    # Re-read the clock: a drive()-warped process may have
                    # advanced it past this loop's local copy, and both the
                    # tie check and sleep bases below must use warped time.
                    now = self._now
                    # Heap entries tied at the current clock value predate
                    # every queued delay-zero entry; drain them first.
                    if heap and heap[0][0] <= now:
                        when, _, is_proc, target, value, exc = heappop(heap)
                        self._now = now = when
                    else:
                        is_proc, target, value, exc = popleft()
                elif heap:
                    when = heap[0][0]
                    if when > limit:
                        self._now = until
                        break
                    when, _, is_proc, target, value, exc = heappop(heap)
                    self._now = now = when
                else:
                    if until is not None and self._now < until:
                        self._now = until
                    break
                if is_proc:
                    # Process stepping inlined: advancing a generator is the
                    # single hottest operation in the simulator, and a method
                    # call per resume plus re-binding the engine state it
                    # needs measurably slows every experiment.  Integer
                    # sleeps push a heap entry directly (no allocation beyond
                    # the entry tuple itself) with a precomputed type tag so
                    # this loop never runs ``isinstance`` on the pop path.
                    gen = target.gen
                    send = gen.send
                    while True:
                        try:
                            if exc is not None:
                                pending_exc, exc = exc, None
                                yielded = gen.throw(pending_exc)
                            else:
                                yielded = send(value)
                        except StopIteration as stop:
                            target.triggered = True
                            target._value = stop.value
                            if target._waiters is not None or target.callbacks:
                                target._fire()
                            if trace:
                                self.tracer.process_finish(target.name, True)
                            break
                        except BaseException as err:  # noqa: BLE001 - crashed
                            target.triggered = True
                            target._exc = err
                            if not target._waiters and not target.callbacks:
                                # Nobody is joining this process: surface it.
                                crashed_box.append(target)
                            target._fire()
                            if trace:
                                self.tracer.process_finish(target.name, False)
                            break

                        cls = yielded.__class__
                        if cls is int:
                            # Zero-allocation sleep fast path (the most
                            # common yield).
                            if yielded > 0:
                                self._seq = seq = self._seq + 1
                                heappush(
                                    heap,
                                    (now + yielded, seq, True, target, None, None),
                                )
                                break
                            if yielded == 0:
                                value = now
                                continue
                            exc = SimulationError(f"negative sleep: {yielded}")
                            continue
                        if cls is float:
                            if yielded < 0:
                                exc = SimulationError(f"negative sleep: {yielded}")
                                continue
                            if yielded == 0:
                                value = now
                                continue
                            self._seq = seq = self._seq + 1
                            heappush(
                                heap,
                                (now + int(yielded), seq, True, target, None, None),
                            )
                            break
                        if cls is Event or isinstance(yielded, Event):
                            if yielded.triggered:
                                if yielded._exc is not None:
                                    exc = yielded._exc
                                    continue
                                value = yielded._value
                                continue
                            waiters = yielded._waiters
                            if waiters is None:
                                yielded._waiters = [target]
                            else:
                                waiters.append(target)
                            break
                        exc = SimulationError(
                            f"process {target.name!r} yielded unsupported "
                            f"value {yielded!r}"
                        )
                elif not target.triggered:
                    # a plain Event scheduled via _schedule_event
                    if exc is not None:
                        target.fail(exc)
                    else:
                        target.succeed(value)
                if crashed_box:
                    crashed = crashed_box[0]
                    raise SimulationError(
                        f"process {crashed.name!r} crashed"
                    ) from crashed._exc
        finally:
            self._running = False
            self.run_limit = -1
        return self._now

    def peek(self) -> Optional[int]:
        """Timestamp of the next scheduled occurrence, or None if idle."""
        if self._nowq:
            return self._now
        return self._heap[0][0] if self._heap else None

    def clear_pending(self) -> int:
        """Drop every scheduled occurrence (simulated power loss).

        Suspended processes are never resumed — exactly what happens to
        in-flight work when the machine dies.  Returns the number of
        cancelled occurrences.
        """
        if self._running:
            raise SimulationError("clear_pending() during run() is not supported")
        dropped = len(self._heap) + len(self._nowq)
        self._heap.clear()
        self._nowq.clear()
        return dropped

    # -- kernel internals ---------------------------------------------------

    def _schedule(
        self,
        proc: Process,
        value: Any,
        exc: Optional[BaseException],
        delay: int,
    ) -> None:
        if delay:
            self._seq += 1
            _heappush(self._heap, (self._now + delay, self._seq, _PROC, proc, value, exc))
        else:
            self._nowq.append((_PROC, proc, value, exc))

    def _schedule_event(self, event: Event, value: Any, delay: int) -> None:
        if delay:
            self._seq += 1
            _heappush(self._heap, (self._now + delay, self._seq, _EVENT, event, value, None))
        else:
            self._nowq.append((_EVENT, event, value, None))


def drive(engine: Engine, gen: ProcessGen) -> ProcessGen:
    """Wrap a process generator, warping the clock past lonely sleeps.

    When the wrapped generator sleeps and *nothing else in the simulated
    world can run before that sleep expires* — the now-queue is empty and
    the next heap entry lies strictly beyond the wakeup (strictly: a heap
    tie was pushed earlier and must fire first) — the kernel round-trip is
    pure overhead: ``drive`` advances ``engine._now`` directly and resumes
    the generator inline.  Any other yield falls through to the kernel
    unchanged, so event waits, joins, and contended sleeps behave exactly
    as if the generator were spawned bare.

    Dispatch order is provably identical to the unwrapped run: the warp
    guard fails in precisely the cases where another occurrence would run
    first, and a warped sleep only removes a (pop, resume) pair that no
    other process could observe.  Sleeps that do reach the kernel are
    rebased by the time warped since the kernel last resumed us, because
    ``run()`` computes wakeups from its pop-time clock.

    Use ``engine.process(drive(engine, gen), name)`` inside ``run()`` only
    (outside a run ``engine.run_limit`` is -1 and nothing warps).
    """
    nowq = engine._nowq
    heap = engine._heap
    resume_t = engine._now  # kernel's view of our last resume time
    value: Any = None
    exc: Optional[BaseException] = None
    while True:
        try:
            if exc is not None:
                pending, exc = exc, None
                yielded = gen.throw(pending)
            else:
                yielded = gen.send(value)
        except StopIteration as stop:
            return stop.value
        cls = yielded.__class__
        if cls is int or cls is float:
            if yielded < 0:
                exc = SimulationError(f"negative sleep: {yielded}")
                continue
            if yielded == 0:
                value = engine._now
                continue
            wake = engine._now + int(yielded)
            if (
                not nowq
                and (not heap or heap[0][0] > wake)
                and wake <= engine.run_limit
            ):
                engine._now = wake
                value = None  # kernel resumes heap sleeps with send(None)
                continue
            try:
                value = yield (engine._now - resume_t) + int(yielded)
            except BaseException as err:  # noqa: BLE001 - forward to gen
                exc = err
            resume_t = engine._now
            continue
        if isinstance(yielded, Event):
            if yielded.triggered:
                if yielded._exc is not None:
                    exc = yielded._exc
                else:
                    value = yielded._value
                continue
            try:
                value = yield yielded
            except BaseException as err:  # noqa: BLE001 - forward to gen
                exc = err
            resume_t = engine._now
            continue
        exc = SimulationError(
            f"process yielded unsupported value {yielded!r}"
        )
