"""Synchronization primitives for simulated processes.

All primitives are strictly FIFO: waiters are granted in arrival order, which
both matches RocksDB's writer queue semantics and keeps runs deterministic.

Usage pattern inside a process generator::

    yield lock.acquire()
    try:
        ...critical section...
    finally:
        lock.release()

``acquire()`` returns an :class:`~repro.sim.engine.Event` that is already
triggered when the resource is free, so the fast path does not deschedule the
process.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event


class Semaphore:
    """Counting semaphore with FIFO waiters."""

    def __init__(self, engine: Engine, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"semaphore capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._available

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a unit is held by the caller."""
        ev = Event(self.engine)
        if self._available > 0 and not self._waiters:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._available > 0 and not self._waiters:
            self._available -= 1
            return True
        return False

    def release(self) -> None:
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            if self._available >= self.capacity:
                raise SimulationError("semaphore released more times than acquired")
            self._available += 1


class Lock(Semaphore):
    """A mutex: a semaphore of capacity one."""

    def __init__(self, engine: Engine) -> None:
        super().__init__(engine, 1)

    @property
    def locked(self) -> bool:
        return self._available == 0


class Condition:
    """Condition variable bound to a :class:`Lock`.

    ``wait()`` must be yielded while holding the lock; it atomically releases
    the lock, suspends, and re-acquires before resuming.  ``notify()`` /
    ``notify_all()`` must be called while holding the lock.
    """

    def __init__(self, engine: Engine, lock: Optional[Lock] = None) -> None:
        self.engine = engine
        self.lock = lock if lock is not None else Lock(engine)
        self._waiters: Deque[Event] = deque()

    def wait(self):
        """Generator helper: ``yield from cond.wait()``."""
        if not self.lock.locked:
            raise SimulationError("Condition.wait() without holding the lock")
        ev = Event(self.engine)
        self._waiters.append(ev)
        self.lock.release()
        yield ev
        yield self.lock.acquire()

    def notify(self, n: int = 1) -> None:
        if not self.lock.locked:
            raise SimulationError("Condition.notify() without holding the lock")
        for _ in range(min(n, len(self._waiters))):
            self._waiters.popleft().succeed()

    def notify_all(self) -> None:
        self.notify(len(self._waiters))


class Store:
    """Unbounded FIFO channel between processes (a work queue)."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue an item, waking one blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event whose value is the next item."""
        ev = Event(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None
