"""Time and size units used throughout the simulator.

The simulation clock counts integer **nanoseconds**: integer arithmetic keeps
event ordering exact and runs reproducible across platforms.  Sizes are plain
integer **bytes**.  The helpers below exist so that call sites read like the
paper ("8.5 us per Level-0 file", "64 MB memtable") instead of raw powers of
ten.
"""

from __future__ import annotations

# --- time (nanoseconds) ----------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * US)


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MS)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * SEC)


def to_us(ns: int) -> float:
    """Convert integer nanoseconds to fractional microseconds."""
    return ns / US


def to_ms(ns: int) -> float:
    """Convert integer nanoseconds to fractional milliseconds."""
    return ns / MS


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to fractional seconds."""
    return ns / SEC


# --- sizes (bytes) ----------------------------------------------------------

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def kb(value: float) -> int:
    """Convert kibibytes to integer bytes."""
    return round(value * KB)


def mb(value: float) -> int:
    """Convert mebibytes to integer bytes."""
    return round(value * MB)


def gb(value: float) -> int:
    """Convert gibibytes to integer bytes."""
    return round(value * GB)


def fmt_bytes(n: int) -> str:
    """Render a byte count in a human-readable unit (e.g. ``'64.0 MB'``)."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(ns: int) -> str:
    """Render a duration in the most natural unit (ns/us/ms/s)."""
    if ns < US:
        return f"{ns} ns"
    if ns < MS:
        return f"{ns / US:.1f} us"
    if ns < SEC:
        return f"{ns / MS:.2f} ms"
    return f"{ns / SEC:.2f} s"
