"""Discrete-event simulation kernel used by every subsystem in this repo.

Public surface:

- :class:`~repro.sim.engine.Engine` — event loop + virtual clock (ns).
- :class:`~repro.sim.engine.Process`, :class:`~repro.sim.engine.Event`,
  :class:`~repro.sim.engine.Timeout`, :class:`~repro.sim.engine.AllOf`,
  :class:`~repro.sim.engine.AnyOf` — process/event model.
- :mod:`~repro.sim.resources` — FIFO ``Lock``/``Semaphore``/``Condition``/``Store``.
- :mod:`~repro.sim.rng` — named deterministic random streams.
- :mod:`~repro.sim.stats` — latency histograms, timelines, gauges.
- :mod:`~repro.sim.units` — ns/us/ms/s and KB/MB/GB helpers.
"""

from repro.sim.engine import AllOf, AnyOf, Engine, Event, Process, Timeout
from repro.sim.resources import Condition, Lock, Semaphore, Store
from repro.sim.rng import RandomStream
from repro.sim.stats import LatencyHistogram, StatsSet, TimeSeries, TimeWeightedGauge
from repro.sim.units import (
    GB,
    KB,
    MB,
    MS,
    NS,
    SEC,
    US,
    fmt_bytes,
    fmt_time,
    gb,
    kb,
    mb,
    ms,
    seconds,
    to_ms,
    to_seconds,
    to_us,
    us,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Engine",
    "Event",
    "GB",
    "KB",
    "LatencyHistogram",
    "Lock",
    "MB",
    "MS",
    "NS",
    "Process",
    "RandomStream",
    "SEC",
    "Semaphore",
    "StatsSet",
    "Store",
    "TimeSeries",
    "TimeWeightedGauge",
    "Timeout",
    "US",
    "fmt_bytes",
    "fmt_time",
    "gb",
    "kb",
    "mb",
    "ms",
    "seconds",
    "to_ms",
    "to_seconds",
    "to_us",
    "us",
]
