"""Deterministic random-number streams.

Every stochastic component (each device channel, each workload client, the
flash garbage collector, ...) draws from its own named stream, forked from a
single experiment seed.  Adding a new consumer therefore never perturbs the
draws seen by existing ones, which keeps experiments comparable across code
changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class RandomStream:
    """A named, seedable wrapper around :class:`random.Random`."""

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self._rng = random.Random(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "RandomStream":
        """Create an independent child stream identified by ``name``."""
        return RandomStream(self.seed, f"{self.name}/{name}")

    # -- draws ---------------------------------------------------------------

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def lognormal(self, mean: float, sigma: float) -> float:
        return self._rng.lognormvariate(mean, sigma)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def chance(self, p: float) -> bool:
        """True with probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._rng.random() < p

    def jittered(self, base: float, jitter: float) -> float:
        """``base`` scaled by a uniform factor in [1-jitter, 1+jitter]."""
        if jitter <= 0.0:
            return base
        return base * self._rng.uniform(1.0 - jitter, 1.0 + jitter)

    def getstate(self):
        return self._rng.getstate()

    def setstate(self, state) -> None:
        self._rng.setstate(state)
