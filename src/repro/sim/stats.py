"""Measurement utilities: latency histograms, throughput time series, gauges.

The paper reports median / 90th-percentile tail latencies, per-second
throughput timelines (Figs. 4, 5, 18) and the time-averaged number of waiting
writer threads (Fig. 16).  The classes here collect exactly those statistics
with bounded memory, no matter how many operations a run executes.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.units import SEC

# numpy is an optional accelerator (pyproject extra ``[perf]``): every bulk
# path below has a pure-python fallback producing bit-identical state.  Set
# REPRO_NO_NUMPY=1 to force the fallback (CI proves it passes the suite).
if os.environ.get("REPRO_NO_NUMPY"):
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - the image ships numpy
        _np = None

# Below this many samples the ndarray conversion costs more than it saves.
_BULK_MIN = 32

# np.frexp exponents equal int.bit_length() only while the float64 mantissa
# is exact; route larger samples through the scalar path.
_FLOAT_EXACT = 1 << 53

_SUBBUCKETS = 32  # per power of two; worst-case relative error ~3%


class LatencyHistogram:
    """HDR-style logarithmic histogram of non-negative integer samples.

    Buckets grow exponentially with :data:`_SUBBUCKETS` linear sub-buckets
    per octave, giving a bounded relative error at any magnitude while using
    O(log(max)) memory.  Percentile queries interpolate inside the bucket.
    """

    __slots__ = ("name", "_buckets", "count", "total", "min", "max", "_sorted")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        # Sorted bucket-index cache for percentile(); invalidated whenever a
        # *new* bucket appears (record into an existing bucket keeps it).
        self._sorted: Optional[List[int]] = None

    @staticmethod
    def _index(value: int) -> int:
        if value < _SUBBUCKETS:
            return value
        shift = value.bit_length() - 6  # lands value >> shift in [32, 64)
        if shift < 0:
            shift = 0
        return (shift + 1) * _SUBBUCKETS + ((value >> shift) - _SUBBUCKETS)

    @staticmethod
    def _bucket_bounds(index: int) -> Tuple[int, int]:
        """Inclusive low / exclusive high value range of a bucket."""
        if index < _SUBBUCKETS:
            return index, index + 1
        octave, sub = divmod(index, _SUBBUCKETS)
        shift = octave - 1
        low = (_SUBBUCKETS + sub) << shift
        return low, low + (1 << shift)

    def record(self, value: int, n: int = 1) -> None:
        """Record ``n`` occurrences of ``value`` (nanoseconds, typically)."""
        if value < 0:
            raise SimulationError(f"negative sample: {value}")
        # _index() inlined: one call per sample adds up at millions of ops.
        if value < _SUBBUCKETS:
            idx = value
        else:
            shift = value.bit_length() - 6  # lands value >> shift in [32, 64)
            if shift < 0:
                shift = 0
            idx = (shift + 1) * _SUBBUCKETS + ((value >> shift) - _SUBBUCKETS)
        buckets = self._buckets
        if idx in buckets:
            buckets[idx] += n
        else:
            buckets[idx] = n
            self._sorted = None
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: Sequence[int]) -> None:
        """Record a batch of samples, bit-identical to a ``record`` loop.

        With numpy available the bucket indices are computed vectorized
        (``frexp`` exponents equal ``int.bit_length()`` for exact float64
        values) and the percentile cache is invalidated at most once per
        batch.  Batches containing negatives (which must raise exactly like
        the scalar path, prefix included) or samples at/above 2**53 (where
        float exponents stop being trustworthy) fall back to the scalar
        loop, as does any batch when numpy is unavailable.
        """
        n = len(values)
        if n == 0:
            return
        if _np is not None and n >= _BULK_MIN:
            arr = _np.asarray(values, dtype=_np.int64)
            lo = int(arr.min())
            hi = int(arr.max())
            if lo >= 0 and hi < _FLOAT_EXACT and hi * n < (1 << 62):
                # bit_length via frexp: value in [2**(e-1), 2**e) => exp e.
                exp = _np.frexp(arr)[1].astype(_np.int64)
                shift = exp - 6
                _np.clip(shift, 0, None, out=shift)
                idx = (shift + 1) * _SUBBUCKETS + (arr >> shift) - _SUBBUCKETS
                uniq, counts = _np.unique(idx, return_counts=True)
                buckets = self._buckets
                dirty = False
                for i, c in zip(uniq.tolist(), counts.tolist()):
                    if i in buckets:
                        buckets[i] += c
                    else:
                        buckets[i] = c
                        dirty = True
                if dirty:
                    self._sorted = None
                self.count += n
                self.total += int(arr.sum())
                if self.min is None or lo < self.min:
                    self.min = lo
                if self.max is None or hi > self.max:
                    self.max = hi
                return
        record = self.record
        for value in values:
            record(value)

    def reset(self) -> None:
        """Discard all samples in place; held references stay valid."""
        self._buckets.clear()
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._sorted = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100] (linear interpolation)."""
        if not 0.0 <= p <= 100.0:
            raise SimulationError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0.0
        target = p / 100.0 * self.count
        seen = 0
        sorted_idx = self._sorted
        if sorted_idx is None:
            self._sorted = sorted_idx = sorted(self._buckets)
        for idx in sorted_idx:
            n = self._buckets[idx]
            if seen + n >= target:
                low, high = self._bucket_bounds(idx)
                frac = (target - seen) / n
                value = low + frac * (high - low)
                # Clamp to the observed extremes for tighter tails.
                if self.max is not None:
                    value = min(value, float(self.max))
                if self.min is not None:
                    value = max(value, float(self.min))
                return value
            seen += n
        return float(self.max if self.max is not None else 0)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        buckets = self._buckets
        for idx, n in other._buckets.items():
            if idx in buckets:
                buckets[idx] += n
            else:
                buckets[idx] = n
                self._sorted = None
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def summary(self) -> Dict[str, float]:
        """Count/mean/median/p90/p99/max in one dict (times in ns)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": float(self.max or 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LatencyHistogram {self.name} n={self.count} mean={self.mean:.0f}ns>"


class TimeSeries:
    """Per-bucket event counter over virtual time (throughput timelines)."""

    __slots__ = ("bucket_ns", "name", "_buckets", "count")

    def __init__(self, bucket_ns: int = SEC, name: str = "") -> None:
        if bucket_ns <= 0:
            raise SimulationError(f"bucket width must be positive: {bucket_ns}")
        self.bucket_ns = bucket_ns
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.count = 0

    def record(self, now: int, n: int = 1) -> None:
        idx = now // self.bucket_ns
        buckets = self._buckets
        if idx in buckets:
            buckets[idx] += n
        else:
            buckets[idx] = n
        self.count += n

    def record_many(
        self, times: Sequence[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Record a batch of events, bit-identical to a ``record`` loop.

        ``counts`` (optional, parallel to ``times``) weights each event —
        the vector analogue of ``record(now, n)``.  The numpy path keeps
        all arithmetic in int64 (a stable argsort + ``reduceat`` instead of
        ``bincount``, whose weighted form returns floats), so bucket totals
        match the scalar loop exactly.
        """
        n = len(times)
        if n == 0:
            return
        if _np is not None and n >= _BULK_MIN:
            arr = _np.asarray(times, dtype=_np.int64)
            idx = arr // self.bucket_ns
            buckets = self._buckets
            if counts is None:
                uniq, cnt = _np.unique(idx, return_counts=True)
                self.count += n
            else:
                weights = _np.asarray(counts, dtype=_np.int64)
                order = _np.argsort(idx, kind="stable")
                sorted_idx = idx[order]
                sorted_w = weights[order]
                starts = _np.concatenate(
                    ([0], _np.flatnonzero(sorted_idx[1:] != sorted_idx[:-1]) + 1)
                )
                uniq = sorted_idx[starts]
                cnt = _np.add.reduceat(sorted_w, starts)
                self.count += int(sorted_w.sum())
            for i, c in zip(uniq.tolist(), cnt.tolist()):
                if i in buckets:
                    buckets[i] += c
                else:
                    buckets[i] = c
            return
        record = self.record
        if counts is None:
            for now in times:
                record(now)
        else:
            for now, c in zip(times, counts):
                record(now, c)

    def series(self, start: int = 0, end: Optional[int] = None) -> List[Tuple[float, float]]:
        """Return ``(bucket_start_seconds, events_per_second)`` pairs.

        Buckets with zero events inside [start, end) are included so
        near-stop periods are visible in timelines.  When ``end`` is not
        bucket-aligned the trailing partial bucket is included — the final
        instants of a run must not vanish from timeline figures.
        """
        if not self._buckets and end is None:
            return []
        last = max(self._buckets) if self._buckets else 0
        end_idx = -(-end // self.bucket_ns) if end is not None else last + 1
        start_idx = start // self.bucket_ns
        per_sec = SEC / self.bucket_ns
        return [
            (idx * self.bucket_ns / SEC, self._buckets.get(idx, 0) * per_sec)
            for idx in range(start_idx, max(end_idx, start_idx))
        ]

    def rate_between(self, start: int, end: int) -> float:
        """Average events/second over the half-open interval [start, end).

        Counts buckets whose start timestamp lies in [start, end).  Only
        the ``[start, end)`` index range is visited (a full scan of every
        bucket ever recorded made this O(total run length) per call); when
        the histogram is sparser than the queried range, the smaller bucket
        dict is walked instead — both paths count exactly the same buckets.
        """
        if end <= start:
            return 0.0
        bucket_ns = self.bucket_ns
        buckets = self._buckets
        start_idx = -(-start // bucket_ns)  # first idx with idx*bucket >= start
        end_idx = -(-end // bucket_ns)  # first idx with idx*bucket >= end
        if end_idx - start_idx <= len(buckets):
            get = buckets.get
            total = sum(get(idx, 0) for idx in range(start_idx, end_idx))
        else:
            total = sum(
                n for idx, n in buckets.items() if start_idx <= idx < end_idx
            )
        return total * SEC / (end - start)


class TimeWeightedGauge:
    """Time-weighted average of a stepwise value (e.g. queue length)."""

    __slots__ = ("name", "_value", "_last_t", "_area", "_start", "max_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0.0
        self._last_t: Optional[int] = None
        self._area = 0.0
        self._start: Optional[int] = None
        self.max_value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def update(self, now: int, value: float) -> None:
        """Record that the gauge changed to ``value`` at time ``now``."""
        if self._last_t is None:
            self._start = now
        else:
            if now < self._last_t:
                raise SimulationError("gauge updated with a past timestamp")
            self._area += self._value * (now - self._last_t)
        self._last_t = now
        self._value = value
        if value > self.max_value:
            self.max_value = value

    def update_many(self, updates: Sequence[Tuple[int, float]]) -> None:
        """Apply ``(now, value)`` updates in order.

        Deliberately a plain sequential loop: the running ``_area`` float
        accumulates in update order, and any vectorized (pairwise) summation
        would round differently — bit-identity beats vectorizing here, and
        gauge updates are orders of magnitude rarer than histogram samples.
        """
        update = self.update
        for now, value in updates:
            update(now, value)

    def mean(self, now: Optional[int] = None) -> float:
        """Time-weighted mean from first update to ``now`` (or last update)."""
        if self._last_t is None or self._start is None:
            return 0.0
        end = self._last_t if now is None else max(now, self._last_t)
        elapsed = end - self._start
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (end - self._last_t)
        return area / elapsed


class StatsSet:
    """A named bag of counters and histograms (RocksDB 'Statistics' analog)."""

    __slots__ = ("_tickers", "_histograms")

    def __init__(self) -> None:
        self._tickers: Dict[str, int] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        tickers = self._tickers
        if name in tickers:
            tickers[name] += n
        else:
            tickers[name] = n

    def get(self, name: str) -> int:
        return self._tickers.get(name, 0)

    def histogram(self, name: str) -> LatencyHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = LatencyHistogram(name)
            self._histograms[name] = hist
        return hist

    def tickers(self) -> Dict[str, int]:
        return dict(self._tickers)

    def histogram_names(self) -> Iterable[str]:
        return self._histograms.keys()

    def reset(self) -> None:
        """Zero all counters and histograms.

        Histograms are cleared *in place* so callers holding a
        :meth:`histogram` reference keep recording into the registered
        object rather than an orphan invisible to :meth:`histogram_names`.
        """
        self._tickers.clear()
        for hist in self._histograms.values():
            hist.reset()
