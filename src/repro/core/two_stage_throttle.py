"""Case study A: two-stage throttling (Section V-A).

The stock throttling mechanism (Algorithm 1) pulls throughput to a near-stop
(~3 kop/s) whenever a write burst pushes Level 0 past the slowdown trigger.
The paper's fix splits throttling into two stages:

* **Stage 1 — slight throttling.**  Between ``slowdown_threshold`` and the
  midpoint ``(slowdown + stop) / 2``, writes are paced at no less than the
  user-configured ``delayed_write_rate`` — the adaptive rate decay that
  causes the collapse is disabled.
* **Stage 2 — aggressive throttling.**  Past the midpoint, the original
  Algorithm 1 (with Dec/Inc rate adaptation) takes over.

Use :func:`make_two_stage_controller` and pass it to
:meth:`repro.harness.machine.Machine.open_db` (or ``DB(controller=...)``).
"""

from __future__ import annotations

from repro.lsm.options import Options
from repro.lsm.write_controller import (
    DELAYED,
    STOPPED,
    StallMetrics,
    WriteController,
)
from repro.sim.engine import Engine

STAGE_NONE = 0
STAGE_SLIGHT = 1
STAGE_AGGRESSIVE = 2


class TwoStageWriteController(WriteController):
    """Algorithm 1 extended with the paper's slight-throttling first stage."""

    def __init__(self, engine: Engine, options: Options) -> None:
        super().__init__(engine, options)
        self.stage = STAGE_NONE
        self.midpoint = (
            options.level0_slowdown_writes_trigger
            + options.level0_stop_writes_trigger
        ) // 2

    def pick_state(self, metrics: StallMetrics) -> str:
        state = super().pick_state(metrics)
        if state == STOPPED:
            self.stage = STAGE_AGGRESSIVE
            return state
        if state == DELAYED:
            if metrics.l0_files >= self.midpoint:
                self.stage = STAGE_AGGRESSIVE
            else:
                self.stage = STAGE_SLIGHT
        else:
            self.stage = STAGE_NONE
        return state

    def on_delayed_write(self, backlog_bytes: int) -> None:
        if self.stage == STAGE_SLIGHT:
            # Stage 1: pace at the user-configured floor; no adaptive decay
            # below the maximum acceptable delayed_write_rate.
            self.delayed_write_rate = float(self.options.delayed_write_rate)
            self._prev_backlog = backlog_bytes
            self.stats.inc("stage1_writes")
            return
        self.stats.inc("stage2_writes")
        super().on_delayed_write(backlog_bytes)


def make_two_stage_controller(engine: Engine, options: Options) -> TwoStageWriteController:
    """Factory matching the signature DB expects for controllers."""
    return TwoStageWriteController(engine, options)
