"""Case study C: reducing logging overhead with an NVM-resident WAL
(Section V-C).

The paper relocates the write-ahead log to emulated byte-addressable NVM
(tmpfs in DRAM): the log is small and append-only, so a small fast device
absorbs it.  In this reproduction the WAL simply lives on a second
filesystem backed by the ``nvm`` device profile
(:func:`repro.storage.profiles.nvm_dimm`).

Figure 20 compares three logging configurations at a 50 % insertion ratio;
:func:`logging_configurations` enumerates them for the harness and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lsm.options import WAL_BUFFERED, WAL_OFF, Options


@dataclass(frozen=True)
class LoggingConfig:
    """One bar group of Figure 20."""

    label: str
    wal_mode: str
    wal_on_nvm: bool

    def apply(self, options: Options) -> Options:
        return options.copy(wal_mode=self.wal_mode, name=f"{options.name}+{self.label}")


def logging_configurations() -> list[LoggingConfig]:
    """The three setups of Figure 20, slowest first."""
    return [
        LoggingConfig("wal-ssd", WAL_BUFFERED, wal_on_nvm=False),
        LoggingConfig("wal-nvm", WAL_BUFFERED, wal_on_nvm=True),
        LoggingConfig("wal-off", WAL_OFF, wal_on_nvm=False),
    ]
