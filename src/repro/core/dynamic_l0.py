"""Case study B: dynamic Level-0 management (Section V-B).

Finding #2 showed the tension: fewer/larger Level-0 files shorten READ
latency (fewer files to search), smaller files shorten WRITE latency
(smaller skiplists to insert into).  Holding the aggregate Level-0 volume
constant, the paper adapts the file size to the observed read/write ratio:

* WRITE-intensive (writes > 25 %): many small files (24 in the paper);
* READ-intensive: few large files (6 in the paper).

The manager is a background process that samples the DB's read/write
counters and retunes ``write_buffer_size`` (which directly sets the size of
future memtables and hence L0 files).  Per the paper, the DB is initialized
to throttle when Level 0 reaches 24 files.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DBError
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.sim.engine import Process
from repro.sim.units import ms


def dynamic_l0_options(base: Options) -> Options:
    """The paper's case-study initialization: slowdown at 24 L0 files."""
    return base.copy(
        level0_slowdown_writes_trigger=24,
        level0_stop_writes_trigger=max(36, base.level0_stop_writes_trigger),
        name=f"{base.name}+dynamic-l0",
    )


class DynamicL0Manager:
    """Online R/W-ratio-driven Level-0 file-size adaptation."""

    def __init__(
        self,
        db: DB,
        l0_volume_bytes: int,
        read_intensive_files: int = 6,
        write_intensive_files: int = 24,
        write_intensive_threshold: float = 0.25,
        sample_interval_ns: int = ms(250),
    ) -> None:
        if l0_volume_bytes <= 0:
            raise DBError(f"L0 volume must be positive: {l0_volume_bytes}")
        if not 1 <= read_intensive_files <= write_intensive_files:
            raise DBError(
                "need 1 <= read_intensive_files <= write_intensive_files, got "
                f"{read_intensive_files} / {write_intensive_files}"
            )
        if not 0.0 < write_intensive_threshold < 1.0:
            raise DBError(
                f"threshold out of (0,1): {write_intensive_threshold}"
            )
        self.db = db
        self.l0_volume_bytes = l0_volume_bytes
        self.read_intensive_files = read_intensive_files
        self.write_intensive_files = write_intensive_files
        self.write_intensive_threshold = write_intensive_threshold
        self.sample_interval_ns = sample_interval_ns
        self._last_gets = 0
        self._last_puts = 0
        self._proc: Optional[Process] = None
        self.mode = "write-intensive"
        self.mode_switches = 0
        self._apply_mode()

    def start(self) -> Process:
        """Launch the background sampling process."""
        if self._proc is not None:
            raise DBError("DynamicL0Manager already started")
        self._proc = self.db.engine.process(self._run(), name="dynamic-l0")
        return self._proc

    def observed_write_fraction(self) -> Optional[float]:
        """Write fraction since the previous sample (None if no traffic)."""
        gets = self.db.stats.get("gets")
        puts = self.db.stats.get("puts")
        d_gets = gets - self._last_gets
        d_puts = puts - self._last_puts
        self._last_gets = gets
        self._last_puts = puts
        total = d_gets + d_puts
        if total == 0:
            return None
        return d_puts / total

    def _target_files(self, write_fraction: float) -> int:
        if write_fraction > self.write_intensive_threshold:
            return self.write_intensive_files
        return self.read_intensive_files

    def _apply_mode(self) -> None:
        files = (
            self.write_intensive_files
            if self.mode == "write-intensive"
            else self.read_intensive_files
        )
        self.db.options.write_buffer_size = max(1, self.l0_volume_bytes // files)

    def step(self, write_fraction: Optional[float]) -> None:
        """One adaptation decision (factored out for unit testing)."""
        if write_fraction is None:
            return
        new_mode = (
            "write-intensive"
            if self._target_files(write_fraction) == self.write_intensive_files
            else "read-intensive"
        )
        if new_mode != self.mode:
            self.mode = new_mode
            self.mode_switches += 1
            self._apply_mode()
            self.db.stats.inc("dynamic_l0.mode_switches")

    def _run(self):
        while True:
            yield self.sample_interval_ns
            self.step(self.observed_write_fraction())
