"""Analysis #1: the analytic throttling model (Equations 1 and 2).

The paper models the application-level throughput during a throttling
episode.  With ``refill_interval`` the minimum injected delay and ``t`` the
median write latency, a writer completes one operation per
``refill_interval + t`` while the system could complete one per ``t``:

    lambda_a * (refill_interval + t) = lambda_s * t          (Eq. 1)
    lambda_a = t / (refill_interval + t) * lambda_s          (Eq. 2)

With the paper's measured numbers (lambda_s = 190 kop/s on 3D XPoint /
130 kop/s on SATA flash, t = 15 us, refill_interval = 1024 us) this predicts
2.74 and 1.88 kop/s — matching the near-stop floors of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.sim.units import us


@dataclass(frozen=True)
class ThrottleScenario:
    """Inputs to the Eq. 2 model for one device."""

    name: str
    system_kops: float  # lambda_s: processing capacity during compaction
    median_write_latency_ns: int  # t
    refill_interval_ns: int = us(1024)

    def __post_init__(self) -> None:
        if self.system_kops <= 0:
            raise ReproError(f"system throughput must be positive: {self.system_kops}")
        if self.median_write_latency_ns <= 0:
            raise ReproError("median write latency must be positive")
        if self.refill_interval_ns <= 0:
            raise ReproError("refill interval must be positive")


def application_kops(scenario: ThrottleScenario) -> float:
    """Equation 2: the application-level throughput under throttling."""
    t = scenario.median_write_latency_ns
    return t / (scenario.refill_interval_ns + t) * scenario.system_kops


def paper_scenarios() -> list[ThrottleScenario]:
    """The two calculations from Analysis #1."""
    return [
        ThrottleScenario("xpoint", system_kops=190.0, median_write_latency_ns=us(15)),
        ThrottleScenario(
            "sata-flash", system_kops=130.0, median_write_latency_ns=us(15)
        ),
    ]


def model_table() -> list[dict]:
    """Paper's computed values next to this implementation's (identical)."""
    expected = {"xpoint": 2.74, "sata-flash": 1.88}
    rows = []
    for scenario in paper_scenarios():
        rows.append(
            {
                "device": scenario.name,
                "lambda_s_kops": scenario.system_kops,
                "t_us": scenario.median_write_latency_ns / 1e3,
                "lambda_a_kops": round(application_kops(scenario), 2),
                "paper_kops": expected[scenario.name],
            }
        )
    return rows
