"""Bottleneck analyzers: the measurements behind the paper's findings.

These helpers turn raw run artifacts (timelines, DB tickers, device
counters) into the quantities the paper reports: near-stop periods
(Finding #1 / Figure 18), throughput variation (Figures 4–5), read
amplification (Finding #2), and stall summaries (Algorithm 1's impact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.lsm.db import DB
from repro.sim.stats import TimeSeries


@dataclass(frozen=True)
class NearStopPeriod:
    """A contiguous stretch of near-zero throughput."""

    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def near_stop_periods(
    series: Sequence[Tuple[float, float]], threshold_ops: float = 10_000.0
) -> List[NearStopPeriod]:
    """Find periods where throughput drops under ``threshold_ops`` op/s.

    The paper calls a system under 10 kop/s "near-stop" (Section V-A).
    ``series`` is a list of (bucket_start_seconds, ops_per_second) as
    produced by :meth:`repro.sim.stats.TimeSeries.series`.
    """
    periods: List[NearStopPeriod] = []
    start = None
    prev_t = None
    for t, rate in series:
        if rate < threshold_ops:
            if start is None:
                start = t
        else:
            if start is not None:
                periods.append(NearStopPeriod(start, t))
                start = None
        prev_t = t
    if start is not None and prev_t is not None:
        periods.append(NearStopPeriod(start, prev_t + 1.0))
    return periods


def near_stop_fraction(
    series: Sequence[Tuple[float, float]], threshold_ops: float = 10_000.0
) -> float:
    """Fraction of buckets spent in near-stop state."""
    if not series:
        return 0.0
    low = sum(1 for _, rate in series if rate < threshold_ops)
    return low / len(series)


def throughput_variation(series: Sequence[Tuple[float, float]]) -> Dict[str, float]:
    """Min/max/mean/coefficient-of-variation of a throughput timeline."""
    rates = [rate for _, rate in series]
    if not rates:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "cov": 0.0}
    mean = sum(rates) / len(rates)
    if mean == 0:
        return {"min": min(rates), "max": max(rates), "mean": 0.0, "cov": 0.0}
    var = sum((r - mean) ** 2 for r in rates) / len(rates)
    return {
        "min": min(rates),
        "max": max(rates),
        "mean": mean,
        "cov": (var ** 0.5) / mean,
    }


def read_amplification(db: DB) -> float:
    """Device block reads per GET (Finding #2's read amplification)."""
    gets = db.stats.get("gets")
    if gets == 0:
        return 0.0
    return db.stats.get("get.block_device_reads") / gets


def l0_probe_rate(db: DB) -> float:
    """Level-0 table probes per GET (files actually searched)."""
    gets = db.stats.get("gets")
    if gets == 0:
        return 0.0
    return db.stats.get("get.l0_probes") / gets


def stall_summary(db: DB) -> Dict[str, float]:
    """How hard Algorithm 1 bit during a run."""
    tickers = db.stats.tickers()
    return {
        "delayed_writes": float(tickers.get("stall.delays_hit", 0)),
        "delay_seconds": tickers.get("stall.delay_ns", 0) / 1e9,
        "stop_waits": float(tickers.get("stall.stops_hit", 0)),
        "slowdown_transitions": float(tickers.get("stall.to_delayed", 0)),
        "stop_transitions": float(tickers.get("stall.to_stopped", 0)),
    }


def write_amplification(db: DB) -> float:
    """Bytes written by flush+compaction per byte of user data flushed."""
    flushed = db.stats.get("flush.bytes")
    if flushed == 0:
        return 0.0
    compacted = db.stats.get("compaction.bytes_written")
    return (flushed + compacted) / flushed


def timeline_of(result) -> List[Tuple[float, float]]:
    """Timeline series of a BenchResult (helper for analyzers)."""
    timeline: TimeSeries = result.timeline
    cfg = result.config
    return timeline.series(start=cfg.warmup_ns, end=cfg.duration_ns)
