"""The paper's contribution: bottleneck analyses and the three case studies.

* :mod:`~repro.core.throttle_model` — Analysis #1 (Equations 1–2);
* :mod:`~repro.core.two_stage_throttle` — case study A (removing near-stop);
* :mod:`~repro.core.dynamic_l0` — case study B (dynamic Level-0 management);
* :mod:`~repro.core.nvm_wal` — case study C (NVM logging);
* :mod:`~repro.core.bottlenecks` — analyzers for the measured phenomena.
"""

from repro.core.bottlenecks import (
    NearStopPeriod,
    l0_probe_rate,
    near_stop_fraction,
    near_stop_periods,
    read_amplification,
    stall_summary,
    throughput_variation,
    timeline_of,
    write_amplification,
)
from repro.core.dynamic_l0 import DynamicL0Manager, dynamic_l0_options
from repro.core.nvm_wal import LoggingConfig, logging_configurations
from repro.core.throttle_model import (
    ThrottleScenario,
    application_kops,
    model_table,
    paper_scenarios,
)
from repro.core.two_stage_throttle import (
    STAGE_AGGRESSIVE,
    STAGE_NONE,
    STAGE_SLIGHT,
    TwoStageWriteController,
    make_two_stage_controller,
)

__all__ = [
    "DynamicL0Manager",
    "LoggingConfig",
    "NearStopPeriod",
    "STAGE_AGGRESSIVE",
    "STAGE_NONE",
    "STAGE_SLIGHT",
    "ThrottleScenario",
    "TwoStageWriteController",
    "application_kops",
    "dynamic_l0_options",
    "l0_probe_rate",
    "logging_configurations",
    "make_two_stage_controller",
    "model_table",
    "near_stop_fraction",
    "near_stop_periods",
    "paper_scenarios",
    "read_amplification",
    "stall_summary",
    "throughput_variation",
    "timeline_of",
    "write_amplification",
]
