"""Textual trace digests: longest write stalls, busiest device intervals.

These are the questions the paper's timeline figures answer at a glance —
"when did writes stall, for how long, and what was the device doing?" — but
computed from the event trace so they work on any traced run without
re-plotting.  The heavy lifting (span collection) reuses the raw event
tuples; nothing here touches simulation state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.stats import TimeSeries
from repro.sim.units import fmt_time

_NORMAL = "normal"


def stall_episodes(tracer) -> List[Tuple[str, int, Optional[int], List[str]]]:
    """Non-normal write-controller episodes from stall-transition instants.

    Returns ``(track, start_ns, end_ns, states)`` tuples, one per contiguous
    period spent outside NORMAL; ``end_ns`` is None for an episode still open
    when the trace ended.  ``states`` lists the stall states visited
    (e.g. ``["delayed", "stopped", "delayed"]``).
    """
    episodes: List[Tuple[str, int, Optional[int], List[str]]] = []
    open_eps: Dict[str, Tuple[int, List[str]]] = {}
    for track, ph, name, ts, _dur, _args in tracer.iter_events():
        if ph != "i" or not track.endswith("write_controller") or "->" not in name:
            continue
        _old, _, new = name.partition("->")
        if new == _NORMAL:
            if track in open_eps:
                start, states = open_eps.pop(track)
                episodes.append((track, start, ts, states))
        elif track in open_eps:
            open_eps[track][1].append(new)
        else:
            open_eps[track] = (ts, [new])
    for track, (start, states) in open_eps.items():
        episodes.append((track, start, None, states))
    return episodes


def degraded_episodes(tracer) -> List[Tuple[str, int, Optional[int], List[str]]]:
    """Degraded-mode episodes from error-handler severity transitions.

    Same shape as :func:`stall_episodes`, but parsed from the
    ``error_handler`` track's ``old->new`` instants (healthy = "normal"):
    ``(track, start_ns, end_ns, severities)`` per contiguous degraded
    period, ``end_ns`` None when the DB never resumed before trace end.
    """
    episodes: List[Tuple[str, int, Optional[int], List[str]]] = []
    open_eps: Dict[str, Tuple[int, List[str]]] = {}
    for track, ph, name, ts, _dur, _args in tracer.iter_events():
        if ph != "i" or not track.endswith("error_handler") or "->" not in name:
            continue
        _old, _, new = name.partition("->")
        if new == _NORMAL:
            if track in open_eps:
                start, states = open_eps.pop(track)
                episodes.append((track, start, ts, states))
        elif track in open_eps:
            open_eps[track][1].append(new)
        else:
            open_eps[track] = (ts, [new])
    for track, (start, states) in open_eps.items():
        episodes.append((track, start, None, states))
    return episodes


def busiest_device_windows(
    tracer, window_ns: Optional[int] = None
) -> List[Tuple[str, int, int, float]]:
    """Per-device time windows ranked by service time, busiest first.

    Returns ``(track, window_start_ns, busy_ns, busy_fraction)`` tuples.
    A request's whole service span is attributed to the window containing
    its start — exact enough for "where was the device hammered?" and O(1)
    per span.  The busy fraction can exceed 1.0 on multi-channel devices.
    """
    spans: List[Tuple[str, int, int]] = []
    horizon = 0
    for track, ph, name, ts, dur, _args in tracer.iter_events():
        if ph != "X" or "device/" not in track or name.endswith(".wait"):
            continue
        spans.append((track, ts, dur))
        horizon = max(horizon, ts + dur)
    if not spans:
        return []
    if window_ns is None:
        window_ns = max(1, horizon // 20)
    # Bulk-sum service time per (track, window) through TimeSeries — one
    # record_many per track instead of a dict update per span.  Output
    # order must not shift: ties in busy_ns keep the old dict-insertion
    # (first-occurrence) order, so that order is tracked separately.
    per_track: Dict[str, Tuple[List[int], List[int]]] = {}
    order: List[Tuple[str, int]] = []
    seen: set = set()
    for track, ts, dur in spans:
        lists = per_track.get(track)
        if lists is None:
            lists = per_track[track] = ([], [])
        lists[0].append(ts)
        lists[1].append(dur)
        key = (track, ts // window_ns)
        if key not in seen:
            seen.add(key)
            order.append(key)
    busy_by_track: Dict[str, Dict[int, int]] = {}
    for track, (times, durs) in per_track.items():
        series = TimeSeries(bucket_ns=window_ns)
        series.record_many(times, durs)
        busy_by_track[track] = series._buckets
    out = [
        (track, idx * window_ns, busy_by_track[track][idx],
         busy_by_track[track][idx] / window_ns)
        for track, idx in order
    ]
    out.sort(key=lambda w: w[2], reverse=True)
    return out


def tenant_slo_digest(rows, top_n: Optional[int] = None) -> str:
    """Per-tenant SLO digest for multi-tenant serving runs.

    ``rows`` are plain dicts (one per tenant, the shape produced by
    ``repro.serving``'s ``TenantStats.row()``): tenant, users, ops, kops,
    p50_us, p99_us, slo_p99_us, slo_violation_frac, throttled_frac.  Rows
    are ranked worst-first by SLO violation fraction so the digest leads
    with the tenants in trouble — the serving twin of
    :func:`stall_episodes`' "longest stalls first" ordering.

    Resilient-serving rows may carry extra keys (``shed``, ``errors``,
    ``fault_ops``, ``fault_p99_us``, ``steady_p99_us``); these print only
    when nonzero, so zero-fault digests are byte-identical to the legacy
    format.  A tenant with zero completed ops (e.g. fully shed during a
    brownout) does not vanish and cannot divide by zero: it is excluded
    from the SLO headline (no completed op to judge) and rendered with an
    explicit shed/error line instead.
    """
    if not rows:
        return "tenant-slo digest: no tenants recorded"
    ranked = sorted(
        rows,
        key=lambda r: (-float(r["slo_violation_frac"]), str(r["tenant"])),
    )
    if top_n is not None:
        ranked = ranked[:top_n]
    active = [r for r in rows if int(r["ops"]) > 0]
    met = sum(
        1 for r in active if float(r["p99_us"]) <= float(r["slo_p99_us"])
    )
    header = f"tenant-slo digest: {met}/{len(active)} tenants meeting p99 SLO"
    starved = len(rows) - len(active)
    if starved:
        header += f" ({starved} with no completed ops)"
    lines = [header]
    for r in ranked:
        shed = int(r.get("shed", 0) or 0)
        errors = int(r.get("errors", 0) or 0)
        if int(r["ops"]) == 0:
            lines.append(
                f"  {r['tenant']}: no completed ops | "
                f"shed {shed} | errors {errors}"
            )
            continue
        verdict = "ok" if float(r["p99_us"]) <= float(r["slo_p99_us"]) else "MISS"
        line = (
            f"  {r['tenant']}: p99 {r['p99_us']}us vs SLO {r['slo_p99_us']}us "
            f"[{verdict}] | {r['ops']} ops ({r['kops']} kops) | "
            f"{float(r['slo_violation_frac']):.2%} over-SLO | "
            f"{float(r['throttled_frac']):.2%} throttled"
        )
        if shed or errors:
            line += f" | shed {shed} | errors {errors}"
        if int(r.get("fault_ops", 0) or 0) > 0:
            line += (
                f" | fault-window p99 {r['fault_p99_us']}us "
                f"vs steady {r['steady_p99_us']}us"
            )
        lines.append(line)
    return "\n".join(lines)


def summarize(tracer, top_n: int = 5) -> str:
    """Multi-line digest of a trace: stall and device-busyness highlights."""
    lines = [f"trace summary: {tracer.num_events} events"]
    if tracer.dropped:
        lines[0] += f" (+{tracer.dropped} dropped at the max_events cap)"

    episodes = stall_episodes(tracer)
    if episodes:
        ranked = sorted(
            episodes,
            key=lambda ep: (ep[2] if ep[2] is not None else ep[1]) - ep[1],
            reverse=True,
        )
        lines.append(f"write stalls: {len(episodes)} episode(s); longest:")
        for track, start, end, states in ranked[:top_n]:
            dur = "unfinished" if end is None else fmt_time(end - start)
            path = "->".join(states)
            lines.append(
                f"  {track}: {path} at t={start / 1e9:.3f}s for {dur}"
            )
    else:
        lines.append("write stalls: none recorded")

    # Degraded-mode digest only when a background error actually occurred,
    # keeping fault-free summaries byte-identical to pre-error-handler runs.
    degraded = degraded_episodes(tracer)
    if degraded:
        total = sum(
            (end if end is not None else start) - start
            for _t, start, end, _s in degraded
        )
        lines.append(
            f"degraded mode: {len(degraded)} episode(s), "
            f"{fmt_time(total)} total degraded time:"
        )
        for track, start, end, states in degraded[:top_n]:
            dur = "unfinished" if end is None else fmt_time(end - start)
            path = "->".join(states)
            lines.append(
                f"  {track}: {path} at t={start / 1e9:.3f}s for {dur}"
            )

    windows = busiest_device_windows(tracer)
    if windows:
        lines.append("busiest device intervals:")
        for track, start, busy_ns, frac in windows[:top_n]:
            lines.append(
                f"  {track}: {fmt_time(busy_ns)} of service time from "
                f"t={start / 1e9:.3f}s ({frac:.0%} of one channel)"
            )
    else:
        lines.append("busiest device intervals: no device spans recorded")
    return "\n".join(lines)
