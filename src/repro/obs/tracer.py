"""The tracing core: collector, per-engine views, and the no-op tracer.

Design
------

``Tracer``
    The collector.  It owns the event buffer and the pid/tid registries and
    knows how to serialize everything as Chrome ``trace_events`` JSON.  One
    tracer can record several simulated machines at once: each bound
    :class:`~repro.sim.engine.Engine` becomes one trace *process* (pid) and
    each simulated actor (a device, a flush worker, the write controller)
    becomes one *thread* (tid) inside it, so Perfetto lays a multi-machine
    harness run out as side-by-side process groups.

``EngineTracer``
    The view instrumented code talks to, obtained via ``Tracer.bind(engine)``
    (``Engine.__init__`` does this automatically).  Timestamps come from
    ``engine.now`` unless an event is emitted retroactively — the storage
    device computes request start/finish analytically at submit time, so it
    reports spans with explicit timestamps via :meth:`EngineTracer.complete`.

``NullTracer``
    The disabled tracer.  Every hook is an empty method and ``bind`` returns
    the same singleton, so instrumented call sites run unconditionally — no
    ``if tracing:`` branches on hot paths — at the cost of one no-op call.
    Hot-path hooks take only positional scalars (no kwargs, no dicts) so the
    disabled call allocates nothing.

Events are buffered as plain tuples ``(pid, tid, ph, name, ts, dur, args)``
with nanosecond timestamps; conversion to the JSON schema (microsecond
floats, metadata records) happens once at export time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

# Chrome trace_events phases used here: "X" complete span, "i" instant,
# "C" counter, "M" metadata (emitted at export time only).
_SPAN = "X"
_INSTANT = "i"
_COUNTER = "C"

Event = Tuple[int, int, str, str, int, int, Optional[Dict[str, Any]]]


class Tracer:
    """Event collector and Chrome-trace exporter.

    ``max_events`` bounds memory for very long runs: once reached, further
    events are counted in :attr:`dropped` instead of stored (the export
    records the drop count so a truncated trace is never mistaken for a
    complete one).
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.enabled = True
        self.max_events = max_events
        self.dropped = 0
        self._events: List[Event] = []
        self._next_pid = 0
        self._pid_labels: Dict[int, str] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self._track_names: Dict[Tuple[int, int], str] = {}

    # -- binding ----------------------------------------------------------

    def bind(self, engine, label: str = "") -> "EngineTracer":
        """Register ``engine`` as a trace process; returns its tracer view."""
        self._next_pid += 1
        pid = self._next_pid
        self._pid_labels[pid] = label or f"engine-{pid}"
        return EngineTracer(self, engine, pid)

    # -- collection (called by EngineTracer) ------------------------------

    def _tid(self, pid: int, track: str) -> int:
        key = (pid, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[key] = tid
            self._track_names[(pid, tid)] = track
        return tid

    def _add(
        self,
        pid: int,
        track: str,
        ph: str,
        name: str,
        ts: int,
        dur: int,
        args: Optional[Dict[str, Any]],
    ) -> None:
        if self.max_events is not None and len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append((pid, self._tid(pid, track), ph, name, ts, dur, args))

    # -- introspection -----------------------------------------------------

    @property
    def num_events(self) -> int:
        return len(self._events)

    def iter_events(self) -> Iterator[Tuple[str, str, str, int, int, Optional[dict]]]:
        """Yield ``(track, ph, name, ts_ns, dur_ns, args)`` with resolved
        track names (pid-qualified only when several engines are bound)."""
        multi = self._next_pid > 1
        for pid, tid, ph, name, ts, dur, args in self._events:
            track = self._track_names[(pid, tid)]
            if multi:
                track = f"{self._pid_labels[pid]}/{track}"
            yield track, ph, name, ts, dur, args

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The full trace as a Chrome ``trace_events`` JSON object."""
        events: List[Dict[str, Any]] = []
        for pid, label in self._pid_labels.items():
            events.append(
                {
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": label},
                }
            )
        for (pid, tid), track in self._track_names.items():
            events.append(
                {
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": track},
                }
            )
        for pid, tid, ph, name, ts, dur, args in self._events:
            event: Dict[str, Any] = {
                "ph": ph, "name": name, "pid": pid, "tid": tid, "ts": ts / 1e3,
            }
            if ph == _SPAN:
                event["dur"] = dur / 1e3
            elif ph == _INSTANT:
                event["s"] = "t"  # thread-scoped instant
            if args is not None:
                event["args"] = args
            events.append(event)
        out: Dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
        }
        if self.dropped:
            out["otherData"] = {"dropped_events": self.dropped}
        return out

    def export(self, path: str) -> int:
        """Write the trace as JSON; returns the number of data events."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f)
        return len(self._events)


class EngineTracer:
    """One engine's recording view onto a :class:`Tracer`.

    Timestamps default to ``engine.now``; the explicit-timestamp methods
    (:meth:`complete`) exist for components that compute event times
    analytically (the device's virtual channel clocks).
    """

    enabled = True

    __slots__ = ("tracer", "engine", "pid", "_stacks")

    def __init__(self, tracer: Tracer, engine, pid: int) -> None:
        self.tracer = tracer
        self.engine = engine
        self.pid = pid
        # Open-span stacks, one per track: [(name, start_ns, args), ...].
        self._stacks: Dict[str, list] = {}

    # -- generic API -------------------------------------------------------

    def span_begin(self, track: str, name: str, args: Optional[dict] = None) -> None:
        """Open a span on ``track`` at ``engine.now`` (close with span_end)."""
        self._stacks.setdefault(track, []).append((name, self.engine.now, args))

    def span_end(self, track: str, args: Optional[dict] = None) -> None:
        """Close the innermost open span on ``track`` at ``engine.now``."""
        stack = self._stacks.get(track)
        if not stack:
            return  # unmatched end: drop rather than corrupt the trace
        name, start, begin_args = stack.pop()
        if begin_args and args:
            merged: Optional[dict] = {**begin_args, **args}
        else:
            merged = args or begin_args
        self.complete(track, name, start, self.engine.now - start, merged)

    def complete(
        self, track: str, name: str, start_ns: int, dur_ns: int,
        args: Optional[dict] = None,
    ) -> None:
        """Record a finished span with explicit timestamps."""
        self.tracer._add(self.pid, track, _SPAN, name, start_ns, dur_ns, args)

    def instant(self, track: str, name: str, args: Optional[dict] = None) -> None:
        """Record a point event at ``engine.now``."""
        self.tracer._add(self.pid, track, _INSTANT, name, self.engine.now, 0, args)

    def counter(self, track: str, name: str, value: float) -> None:
        """Record a counter sample (rendered as a step graph) at ``engine.now``."""
        self.tracer._add(
            self.pid, track, _COUNTER, name, self.engine.now, 0, {"value": value}
        )

    # -- domain hooks (positional-only signatures keep disabled calls free) --

    def process_spawn(self, name: str) -> None:
        self.instant("engine", f"spawn:{name}")

    def process_finish(self, name: str, ok: bool) -> None:
        self.instant("engine", f"{'finish' if ok else 'crash'}:{name}")

    def device_request(
        self, track: str, op: str, submit_ns: int, start_ns: int,
        finish_ns: int, nbytes: int, sequential: bool,
    ) -> None:
        """One storage request: a queue-wait phase then a service phase."""
        if start_ns > submit_ns:
            self.complete(track, f"{op}.wait", submit_ns, start_ns - submit_ns)
        self.complete(
            track, op, start_ns, finish_ns - start_ns,
            {"bytes": nbytes, "sequential": sequential},
        )

    def gc_pause(self, track: str, at_ns: int, pause_ns: int) -> None:
        self.tracer._add(
            self.pid, track, _INSTANT, "gc_pause", at_ns, 0, {"pause_ns": pause_ns}
        )

    def stall_transition(self, old: str, new: str, delayed_write_rate: float) -> None:
        self.instant(
            "write_controller", f"{old}->{new}",
            {"delayed_write_rate": delayed_write_rate},
        )

    def write_group(self, start_ns: int, end_ns: int, writers: int) -> None:
        self.complete(
            "db", "write_group", start_ns, end_ns - start_ns, {"writers": writers}
        )

    # -- background-error lifecycle (repro.lsm.error_handler) ---------------

    def bg_error(self, source: str, severity: str) -> None:
        """A background failure was classified (error-raised)."""
        self.instant("error_handler", f"error:{source}", {"severity": severity})

    def degraded_transition(self, old: str, new: str) -> None:
        """Degraded-mode severity change, 'normal' meaning healthy.

        Named ``old->new`` on the ``error_handler`` track, mirroring
        :meth:`stall_transition`, so the summary digests parse episodes
        the same way.
        """
        self.instant("error_handler", f"{old}->{new}")

    def resume_attempt(self, attempt: int, source: str) -> None:
        self.instant(
            "error_handler", "resume_attempt",
            {"attempt": attempt, "source": source},
        )

    def resume_success(self, attempts: int, degraded_ns: int) -> None:
        self.instant(
            "error_handler", "resume_success",
            {"attempts": attempts, "degraded_ns": degraded_ns},
        )

    # -- replication lifecycle (repro.cluster) ------------------------------

    def failover(self, term: int, leader_id: int) -> None:
        """A new leader took over (term bump), including the initial one."""
        self.instant("cluster", "failover", {"term": term, "leader": leader_id})

    def replication_apply(self, node_id: int, seq: int) -> None:
        """A follower applied a shipped WAL group ending at ``seq``."""
        self.instant(
            "cluster", f"apply:node{node_id}", {"node": node_id, "seq": seq}
        )


class NullTracer:
    """The disabled tracer: every hook is a no-op and ``bind`` returns self.

    A single shared instance (:data:`NULL_TRACER`) is installed on every
    engine when no tracer is active, so instrumented code never branches on
    whether tracing is on.
    """

    enabled = False

    __slots__ = ()

    def bind(self, engine, label: str = "") -> "NullTracer":
        return self

    def span_begin(self, track, name, args=None) -> None:
        pass

    def span_end(self, track, args=None) -> None:
        pass

    def complete(self, track, name, start_ns, dur_ns, args=None) -> None:
        pass

    def instant(self, track, name, args=None) -> None:
        pass

    def counter(self, track, name, value) -> None:
        pass

    def process_spawn(self, name) -> None:
        pass

    def process_finish(self, name, ok) -> None:
        pass

    def device_request(
        self, track, op, submit_ns, start_ns, finish_ns, nbytes, sequential
    ) -> None:
        pass

    def gc_pause(self, track, at_ns, pause_ns) -> None:
        pass

    def stall_transition(self, old, new, delayed_write_rate) -> None:
        pass

    def write_group(self, start_ns, end_ns, writers) -> None:
        pass

    def bg_error(self, source, severity) -> None:
        pass

    def degraded_transition(self, old, new) -> None:
        pass

    def resume_attempt(self, attempt, source) -> None:
        pass

    def resume_success(self, attempts, degraded_ns) -> None:
        pass

    def failover(self, term, leader_id) -> None:
        pass

    def replication_apply(self, node_id, seq) -> None:
        pass


NULL_TRACER = NullTracer()

_active: Any = NULL_TRACER

#: Module-level tracing switch, kept in sync by :func:`set_active_tracer`.
#: Hot paths (the engine kernel, the storage device) cache a per-object
#: copy of ``tracer.enabled`` at bind time; this flag is the cheap global
#: answer for code without an engine at hand.  When it is False, untraced
#: runs make no tracer calls at all — not even no-ops.
ENABLED = False


def set_active_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` for every Engine created from now on (None clears)."""
    global _active, ENABLED
    _active = tracer if tracer is not None else NULL_TRACER
    ENABLED = _active is not NULL_TRACER


def active_tracer():
    """The tracer new engines bind to (NULL_TRACER when tracing is off)."""
    return _active


def tracing_enabled() -> bool:
    """True when a real tracer is globally active (see :data:`ENABLED`)."""
    return ENABLED
