"""Trace-vocabulary fingerprints: the fuzzer's coverage signal.

A run's *vocabulary* is the set of distinct ``(track, phase, name)``
trace items plus the distinct shapes of harness event-log lines — i.e.
which states, transitions and code paths the run visited, not how often
or when.  Two runs that exercise the same machinery produce the same
vocabulary even when their timings differ, which is exactly the
abstraction a coverage-guided fuzzer wants: a mutated schedule is
*interesting* iff it makes the system say something it has never said
before (a new write-controller state transition, a new error-handler
severity path, a new failover/rejection message shape).

Normalisation keeps the vocabulary finite: unbounded numerals (op
indices, byte counts, virtual timestamps) are folded to ``#`` while
zero/nonzero and short structural digits (level numbers ``L0->L1``,
node ids) survive, so "wal_bad=0" and "wal_bad=3" stay distinct shapes
but "wal_bad=3" and "wal_bad=7" do not.

The fingerprint is an md5 over the sorted vocabulary: order-free, so it
is invariant across ``--jobs`` interleavings by construction.
"""

from __future__ import annotations

import hashlib
import re
from typing import FrozenSet, Iterable

#: Digit runs of length >= 2 in trace names/tracks are unbounded ids
#: (timestamps, byte counts); single digits are structural (L0, node1).
_LONG_DIGITS = re.compile(r"\d{2,}")
#: In free-form log lines every numeral is folded, keeping only the
#: zero/nonzero distinction (e.g. "cut=0" vs "cut=<some>").
_ALL_DIGITS = re.compile(r"\d+")


def normalize_trace_name(text: str) -> str:
    """Fold unbounded numerals in a trace track/name to ``#``."""
    return _LONG_DIGITS.sub("#", text)


def normalize_log_line(line: str) -> str:
    """Fold a harness event-log line to its shape.

    The leading virtual timestamp (``t=<ns> ...``) is stripped entirely;
    remaining numerals become ``0`` or ``#`` (zero vs nonzero).
    """
    if line.startswith("t=") or line.startswith("op="):
        parts = line.split(" ", 1)
        line = parts[1] if len(parts) == 2 else ""
    return _ALL_DIGITS.sub(lambda m: "0" if m.group() == "0" else "#", line)


def trace_vocabulary(tracer) -> FrozenSet[str]:
    """Distinct normalised ``track|phase|name`` items of a tracer."""
    items = set()
    for track, ph, name, _ts, _dur, _args in tracer.iter_events():
        items.add(
            f"trace|{normalize_trace_name(track)}|{ph}|{normalize_trace_name(name)}"
        )
    return frozenset(items)


def log_vocabulary(lines: Iterable[str]) -> FrozenSet[str]:
    """Distinct normalised shapes of harness event-log lines."""
    return frozenset(f"log|{normalize_log_line(line)}" for line in lines)


def vocabulary_fingerprint(items: Iterable[str]) -> str:
    """Order-free md5 over a vocabulary (or any merged set of items)."""
    blob = "\n".join(sorted(set(items))).encode("utf-8")
    return hashlib.md5(blob).hexdigest()


__all__ = [
    "log_vocabulary",
    "normalize_log_line",
    "normalize_trace_name",
    "trace_vocabulary",
    "vocabulary_fingerprint",
]
