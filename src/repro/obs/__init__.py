"""Observability: virtual-time tracing keyed to ``Engine.now``.

The paper is a *measurement* study: its figures come from per-second
throughput timelines, queue-depth probes and stall-state transitions.  This
package records those same signals as an event trace over simulated time —
spans, instants and counters in the Chrome ``trace_events`` format — so a
run can be opened in Perfetto (https://ui.perfetto.dev) and inspected
interval by interval instead of only through end-of-run aggregates.

Usage::

    from repro.obs import Tracer, set_active_tracer

    tracer = Tracer()
    set_active_tracer(tracer)   # every Engine created now records into it
    ... run experiments ...
    set_active_tracer(None)
    tracer.export("trace.json")  # open in ui.perfetto.dev

or pass a tracer to one engine explicitly: ``Engine(tracer=tracer)``.

When no tracer is active every instrumentation hook resolves to the shared
:data:`NULL_TRACER`, whose methods are empty — instrumented hot paths carry
no conditionals and no measurable cost.
"""

from repro.obs.summary import (
    busiest_device_windows,
    stall_episodes,
    summarize,
    tenant_slo_digest,
)
from repro.obs.tracer import (
    NULL_TRACER,
    EngineTracer,
    NullTracer,
    Tracer,
    active_tracer,
    set_active_tracer,
)
from repro.obs.vocab import (
    log_vocabulary,
    normalize_log_line,
    normalize_trace_name,
    trace_vocabulary,
    vocabulary_fingerprint,
)

__all__ = [
    "EngineTracer",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "active_tracer",
    "busiest_device_windows",
    "log_vocabulary",
    "normalize_log_line",
    "normalize_trace_name",
    "set_active_tracer",
    "stall_episodes",
    "summarize",
    "tenant_slo_digest",
    "trace_vocabulary",
    "vocabulary_fingerprint",
]
