"""One experiment per paper figure.

Every ``fig*`` function regenerates the corresponding figure's rows/series
at the active scale preset and returns an
:class:`~repro.harness.report.ExperimentResult`.  Where the paper derives
two figures from the same runs (e.g. Figures 13–16 share the parallelism
sweep), the runs are memoized per (experiment-group, preset, seed) so each
bench target stays cheap.

Scale note: file sizes from the paper (32–512 MB on a 100 GB dataset) are
scaled by the dataset ratio — see EXPERIMENTS.md for the per-figure mapping.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bottlenecks import (
    near_stop_fraction,
    near_stop_periods,
    throughput_variation,
)
from repro.core.dynamic_l0 import DynamicL0Manager, dynamic_l0_options
from repro.core.nvm_wal import logging_configurations
from repro.core.throttle_model import model_table
from repro.core.two_stage_throttle import TwoStageWriteController
from repro.harness.machine import Machine
from repro.harness.presets import ScalePreset, bench_preset
from repro.harness.report import ExperimentResult
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.perf.parallel import map_points
from repro.sim.units import MB, SEC, mb, ms, seconds
from repro.storage.iotoolkit import RawBenchmark, RawWorkloadConfig
from repro.storage.profiles import (
    DeviceProfile,
    pcie_flash_ssd,
    sata_flash_ssd,
    xpoint_ssd,
)
from repro.workloads.db_bench import BenchResult, DbBench, DbBenchConfig
from repro.workloads.generators import BurstSchedule
from repro.workloads.prefill import prefill

DEVICES: Dict[str, Callable[[], DeviceProfile]] = {
    "sata-flash": sata_flash_ssd,
    "pcie-flash": pcie_flash_ssd,
    "xpoint": xpoint_ssd,
}

DEFAULT_SEED = 11

_memo: Dict[tuple, object] = {}


def clear_memo() -> None:
    """Drop memoized runs (used between test sessions)."""
    _memo.clear()


def _duration_ns(preset: ScalePreset) -> int:
    override = os.environ.get("REPRO_BENCH_SECONDS")
    if override:
        return seconds(float(override))
    return preset.duration_ns


@dataclass
class RunArtifacts:
    """Everything produced by one standard workload run."""

    machine: Machine
    db: DB
    result: BenchResult


def run_workload(
    device: str,
    preset: ScalePreset,
    write_fraction: float,
    processes: Optional[int] = None,
    duration_ns: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    options: Optional[Options] = None,
    controller_factory=None,
    wal_on_nvm: bool = False,
    schedule: Optional[BurstSchedule] = None,
    warmup_fraction: float = 0.25,
    dynamic_l0: bool = False,
) -> RunArtifacts:
    """Stand up a prefilled DB on ``device`` and run one db_bench workload."""
    profile = DEVICES[device]()
    machine = Machine.create(
        profile, preset.page_cache_bytes, seed=seed, with_nvm=wal_on_nvm
    )
    opts = options if options is not None else preset.options()
    controller = None
    if controller_factory is not None:
        controller = controller_factory(machine.engine, opts)
    db = machine.open_db(opts, wal_on_nvm=wal_on_nvm, controller=controller)
    prefill(db, preset.prefill_spec())

    manager = None
    if dynamic_l0:
        manager = DynamicL0Manager(db, l0_volume_bytes=24 * opts.write_buffer_size)
        manager.start()

    duration = duration_ns if duration_ns is not None else _duration_ns(preset)
    cfg = DbBenchConfig(
        processes=processes if processes is not None else preset.processes,
        duration_ns=duration,
        write_fraction=write_fraction,
        value_size=preset.value_size,
        key_count=preset.key_count,
        seed=seed,
        warmup_ns=int(duration * warmup_fraction),
        schedule=schedule,
        timeline_bucket_ns=max(ms(100), duration // 40),
    )
    result = DbBench(cfg).run(db)
    artifacts = RunArtifacts(machine=machine, db=db, result=result)
    artifacts.dynamic_l0_manager = manager  # type: ignore[attr-defined]
    return artifacts


def _avg_l0(result: BenchResult) -> float:
    samples = [count for _, count in result.l0_file_counts]
    return sum(samples) / len(samples) if samples else 0.0


# --------------------------------------------------------------------------
# Parallel sweep machinery (--jobs)
# --------------------------------------------------------------------------

_jobs = 1


def set_jobs(jobs: int) -> None:
    """Set the worker-process count for subsequent experiment sweeps.

    ``jobs <= 1`` keeps the plain serial in-process loop.  Results are
    always merged in point order, so every jobs value produces bit-identical
    figures (see :mod:`repro.perf.parallel`).
    """
    global _jobs
    _jobs = max(1, int(jobs))


def get_jobs() -> int:
    return _jobs


#: Write-controller factories by name.  Sweep points carry the *name*
#: (strings pickle across process boundaries; closures do not) and workers
#: look the factory up at run time.
CONTROLLER_FACTORIES: Dict[str, Optional[Callable]] = {
    "": None,
    "two-stage": lambda engine, opts: TwoStageWriteController(engine, opts),
}


@dataclass(frozen=True)
class WorkloadPoint:
    """One independent (device, config, seed) sweep point — picklable."""

    device: str
    preset: ScalePreset
    write_fraction: float
    processes: Optional[int] = None
    duration_ns: Optional[int] = None
    seed: int = DEFAULT_SEED
    options: Optional[Options] = None
    controller: str = ""
    wal_on_nvm: bool = False
    schedule: Optional[BurstSchedule] = None
    warmup_fraction: float = 0.25
    dynamic_l0: bool = False


@dataclass
class PointResult:
    """What a sweep point sends back across the process boundary.

    Engines, DBs and machines stay inside the worker; figures consume the
    measured :class:`BenchResult` plus the few live-object readings they
    need (the Figure 16 peak queue depth).
    """

    result: BenchResult
    max_waiting: float


def run_point(point: WorkloadPoint) -> PointResult:
    """Execute one sweep point (runs inside a worker process under --jobs)."""
    run = run_workload(
        point.device,
        point.preset,
        point.write_fraction,
        processes=point.processes,
        duration_ns=point.duration_ns,
        seed=point.seed,
        options=point.options,
        controller_factory=CONTROLLER_FACTORIES[point.controller],
        wal_on_nvm=point.wal_on_nvm,
        schedule=point.schedule,
        warmup_fraction=point.warmup_fraction,
        dynamic_l0=point.dynamic_l0,
    )
    return PointResult(
        result=run.result,
        max_waiting=run.db.write_queue.waiting_gauge.max_value,
    )


def run_points(points: Sequence[WorkloadPoint]) -> List[PointResult]:
    """Run sweep points (in parallel after ``set_jobs(n>1)``), in point order."""
    return map_points(run_point, list(points), jobs=_jobs)



# --------------------------------------------------------------------------
# Figure 1 — motivating example
# --------------------------------------------------------------------------

def fig01_motivating(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Raw-device vs RocksDB speedup from SATA flash to 3D XPoint."""
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig01",
        title="Motivating example: raw device vs RocksDB throughput (R/W 1:1, 8 threads)",
        columns=["system", "device", "kops"],
        paper_expectation=(
            "raw: 26 -> 408 kop/s (15.7x); RocksDB: 13 -> 23 kop/s (+77%) — "
            "the raw speedup dwarfs the end-to-end speedup"
        ),
    )
    raw_cfg = RawWorkloadConfig(
        threads=8,
        read_fraction=0.5,
        duration_ns=min(seconds(1.0), _duration_ns(preset)),
        submit_overhead_ns=2000,
        seed=seed,
    )
    for device in ("sata-flash", "xpoint"):
        raw = RawBenchmark(raw_cfg).run_profile(DEVICES[device]())
        res.add_row(system="raw", device=device, kops=round(raw.kops, 1))
    kv_devices = ("sata-flash", "xpoint")
    points = [
        WorkloadPoint(device, preset, write_fraction=0.5, processes=8, seed=seed)
        for device in kv_devices
    ]
    for device, pr in zip(kv_devices, run_points(points)):
        res.add_row(system="rocksdb", device=device, kops=round(pr.result.kops, 1))

    raw_speedup = res.row_for(system="raw", device="xpoint")["kops"] / max(
        1e-9, res.row_for(system="raw", device="sata-flash")["kops"]
    )
    kv_speedup = res.row_for(system="rocksdb", device="xpoint")["kops"] / max(
        1e-9, res.row_for(system="rocksdb", device="sata-flash")["kops"]
    )
    res.notes = f"raw speedup {raw_speedup:.1f}x vs RocksDB speedup {kv_speedup:.1f}x"
    return res


# --------------------------------------------------------------------------
# Figure 3 — throughput vs insertion ratio
# --------------------------------------------------------------------------

FIG3_RATIOS = (0.0, 0.5, 0.75, 0.9, 1.0)


def fig03_insertion_ratio(
    preset: Optional[ScalePreset] = None,
    seed: int = DEFAULT_SEED,
    ratios: Tuple[float, ...] = FIG3_RATIOS,
) -> ExperimentResult:
    """Throughput vs insertion ratio, 4 processes, three devices."""
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig03",
        title="Throughput vs insertion ratio (4 processes)",
        columns=["device", "write_fraction", "kops"],
        paper_expectation=(
            "flash rises with insertion ratio (PCIe 32 -> 41.3 kop/s); "
            "XPoint falls (115 -> 45 kop/s) and converges toward PCIe flash"
        ),
    )
    grid = [(device, wf) for device in DEVICES for wf in ratios]
    points = [
        WorkloadPoint(device, preset, write_fraction=wf, seed=seed)
        for device, wf in grid
    ]
    for (device, wf), pr in zip(grid, run_points(points)):
        res.add_row(
            device=device, write_fraction=wf, kops=round(pr.result.kops, 1)
        )
    return res


# --------------------------------------------------------------------------
# Figures 4 & 5 — throughput timelines
# --------------------------------------------------------------------------

def _timeline_experiment(
    exp_id: str, title: str, write_fraction: float, preset: ScalePreset, seed: int,
    expectation: str,
) -> ExperimentResult:
    res = ExperimentResult(
        exp_id=exp_id,
        title=title,
        columns=["device", "mean_kops", "min_kops", "max_kops", "cov", "near_stop_frac"],
        paper_expectation=expectation,
    )
    duration = max(_duration_ns(preset), seconds(4.0))
    devices = list(DEVICES)
    points = [
        WorkloadPoint(
            device, preset, write_fraction=write_fraction, seed=seed,
            duration_ns=duration,
        )
        for device in devices
    ]
    for device, pr in zip(devices, run_points(points)):
        series = pr.result.timeline.series(
            start=pr.result.config.warmup_ns, end=duration
        )
        stats = throughput_variation(series)
        res.add_row(
            device=device,
            mean_kops=round(stats["mean"] / 1e3, 1),
            min_kops=round(stats["min"] / 1e3, 1),
            max_kops=round(stats["max"] / 1e3, 1),
            cov=round(stats["cov"], 2),
            near_stop_frac=round(near_stop_fraction(series), 2),
        )
        res.series[device] = series
    return res


def fig04_timeline_5w(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Throughput over time at 5% writes: smooth on every device."""
    preset = preset or bench_preset()
    return _timeline_experiment(
        "fig04",
        "Throughput timeline (5% write)",
        0.05,
        preset,
        seed,
        "low variation on all devices; no near-stop periods",
    )


def fig05_timeline_90w(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Throughput over time at 90% writes: deep throttling valleys on XPoint."""
    preset = preset or bench_preset()
    return _timeline_experiment(
        "fig05",
        "Throughput timeline (90% write)",
        0.9,
        preset,
        seed,
        "XPoint oscillates between bursts (169 kop/s) and near-stop valleys (3 kop/s)",
    )


# --------------------------------------------------------------------------
# Figures 6 & 7 — read/write latency at 90% write
# --------------------------------------------------------------------------

def _latency_90w_runs(preset: ScalePreset, seed: int) -> Dict[str, PointResult]:
    key = ("latency90w", preset.name, seed, _duration_ns(preset))
    if key not in _memo:
        devices = list(DEVICES)
        points = [
            WorkloadPoint(device, preset, write_fraction=0.9, seed=seed)
            for device in devices
        ]
        _memo[key] = dict(zip(devices, run_points(points)))
    return _memo[key]  # type: ignore[return-value]


def fig06_read_latency_90w(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig06",
        title="Read latency at 90% write",
        columns=["device", "p50_us", "p90_us", "p99_us"],
        paper_expectation="read p90: XPoint 251 us vs SATA flash 839 us (XPoint ~3x shorter)",
    )
    for device, run in _latency_90w_runs(preset, seed).items():
        hist = run.result.read_latency
        res.add_row(
            device=device,
            p50_us=round(hist.percentile(50) / 1e3, 1),
            p90_us=round(hist.percentile(90) / 1e3, 1),
            p99_us=round(hist.percentile(99) / 1e3, 1),
        )
    return res


def fig07_write_latency_90w(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig07",
        title="Write latency at 90% write",
        columns=["device", "p50_us", "p90_us", "p99_us"],
        paper_expectation="write p90 similar across devices (XPoint 26 us vs SATA 28 us)",
    )
    for device, run in _latency_90w_runs(preset, seed).items():
        hist = run.result.write_latency
        res.add_row(
            device=device,
            p50_us=round(hist.percentile(50) / 1e3, 1),
            p90_us=round(hist.percentile(90) / 1e3, 1),
            p99_us=round(hist.percentile(99) / 1e3, 1),
        )
    return res


# --------------------------------------------------------------------------
# Figures 8, 9, 10 — Level-0 file size / count effects
# --------------------------------------------------------------------------

def _l0_size_multipliers() -> Tuple[float, ...]:
    # Paper sweeps 32..512 MB with a 64 MB default: 0.5x .. 8x of default.
    return (0.5, 1.0, 2.0, 4.0)


def _l0_sweep_runs(preset: ScalePreset, seed: int) -> Dict[Tuple[str, float], PointResult]:
    key = ("l0sweep", preset.name, seed, _duration_ns(preset))
    if key not in _memo:
        grid = [
            (device, mult)
            for device in DEVICES
            for mult in _l0_size_multipliers()
        ]
        points = [
            WorkloadPoint(
                device, preset, write_fraction=0.5, seed=seed,
                options=preset.options(
                    write_buffer_size=int(preset.write_buffer_size * mult)
                ),
            )
            for device, mult in grid
        ]
        _memo[key] = dict(zip(grid, run_points(points)))
    return _memo[key]  # type: ignore[return-value]


def fig08_l0_count_vs_size(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig08",
        title="Number of Level-0 files vs Level-0 file size (R/W 1:1)",
        columns=["device", "file_size_mb", "avg_l0_files", "max_l0_files"],
        paper_expectation="larger Level-0 files -> fewer Level-0 files",
    )
    for (device, mult), run in _l0_sweep_runs(preset, seed).items():
        res.add_row(
            device=device,
            file_size_mb=round(preset.write_buffer_size * mult / MB, 2),
            avg_l0_files=round(_avg_l0(run.result), 2),
            max_l0_files=max((c for _, c in run.result.l0_file_counts), default=0),
        )
    return res


def fig09_throughput_vs_l0(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig09",
        title="Throughput vs number of Level-0 files",
        columns=["device", "avg_l0_files", "kops"],
        paper_expectation=(
            "more L0 files -> lower throughput; relative drop larger on XPoint "
            "(-19.9% from 2 to 8 files) than PCIe flash (-12.3%)"
        ),
    )
    for (device, mult), run in _l0_sweep_runs(preset, seed).items():
        res.add_row(
            device=device,
            avg_l0_files=round(_avg_l0(run.result), 2),
            kops=round(run.result.kops, 1),
        )
    res.rows.sort(key=lambda r: (r["device"], r["avg_l0_files"]))
    return res


def fig10_read_latency_vs_l0(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig10",
        title="Read tail latency vs number of Level-0 files",
        columns=["device", "avg_l0_files", "read_p90_us"],
        paper_expectation="fewer L0 files -> shorter read tails (XPoint: 134 us @8 -> 101 us @2)",
    )
    for (device, mult), run in _l0_sweep_runs(preset, seed).items():
        res.add_row(
            device=device,
            avg_l0_files=round(_avg_l0(run.result), 2),
            read_p90_us=round(run.result.read_latency.percentile(90) / 1e3, 1),
        )
    res.rows.sort(key=lambda r: (r["device"], r["avg_l0_files"]))
    return res


# --------------------------------------------------------------------------
# Figure 12 — write latency vs SST (memtable) size
# --------------------------------------------------------------------------

def fig12_write_latency_vs_sst(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig12",
        title="Write tail latency vs SST/memtable size (R/W 1:1)",
        columns=["device", "file_size_mb", "write_p50_us", "write_p90_us"],
        paper_expectation=(
            "write p90 grows with memtable size (SATA: 25 -> 31 us from 64 to "
            "256 MB) — O(log N) skiplist insertion"
        ),
    )
    for (device, mult), run in _l0_sweep_runs(preset, seed).items():
        res.add_row(
            device=device,
            file_size_mb=round(preset.write_buffer_size * mult / MB, 2),
            write_p50_us=round(run.result.write_latency.percentile(50) / 1e3, 1),
            write_p90_us=round(run.result.write_latency.percentile(90) / 1e3, 1),
        )
    res.rows.sort(key=lambda r: (r["device"], r["file_size_mb"]))
    return res


# --------------------------------------------------------------------------
# Figures 13–16 — parallelism and interference
# --------------------------------------------------------------------------

PARALLELISM_LEVELS = (1, 2, 8, 32)


def _parallelism_runs(preset: ScalePreset, seed: int) -> Dict[Tuple[str, int], PointResult]:
    key = ("parallelism", preset.name, seed, _duration_ns(preset))
    if key not in _memo:
        grid = [
            (device, procs)
            for device in DEVICES
            for procs in PARALLELISM_LEVELS
        ]
        points = [
            WorkloadPoint(
                device, preset, write_fraction=0.5, processes=procs, seed=seed
            )
            for device, procs in grid
        ]
        _memo[key] = dict(zip(grid, run_points(points)))
    return _memo[key]  # type: ignore[return-value]


def fig13_parallelism(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig13",
        title="Throughput vs parallelism (R/W 1:1)",
        columns=["device", "processes", "kops"],
        paper_expectation="throughput rises with threads on all devices (XPoint 35.4 -> 79.5 kop/s)",
    )
    for (device, procs), run in _parallelism_runs(preset, seed).items():
        res.add_row(device=device, processes=procs, kops=round(run.result.kops, 1))
    return res


def fig14_read_latency_32t(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig14",
        title="Read latency at 32 threads",
        columns=["device", "p50_us", "p90_us", "p99_us"],
        paper_expectation="XPoint read p90 (335 us) ~76% below SATA flash (1.4 ms)",
    )
    runs = _parallelism_runs(preset, seed)
    for device in DEVICES:
        hist = runs[(device, 32)].result.read_latency
        res.add_row(
            device=device,
            p50_us=round(hist.percentile(50) / 1e3, 1),
            p90_us=round(hist.percentile(90) / 1e3, 1),
            p99_us=round(hist.percentile(99) / 1e3, 1),
        )
    return res


def fig15_write_latency_32t(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig15",
        title="Write latency at 32 threads",
        columns=["device", "p50_us", "p90_us", "p99_us"],
        paper_expectation=(
            "inversion: XPoint write p90 (440 us) far ABOVE SATA flash (47 us) — "
            "fast reads recycle threads into the writer queue"
        ),
    )
    runs = _parallelism_runs(preset, seed)
    for device in DEVICES:
        hist = runs[(device, 32)].result.write_latency
        res.add_row(
            device=device,
            p50_us=round(hist.percentile(50) / 1e3, 1),
            p90_us=round(hist.percentile(90) / 1e3, 1),
            p99_us=round(hist.percentile(99) / 1e3, 1),
        )
    return res


def fig16_waiting_threads(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig16",
        title="Average waiting writer threads at 32 threads",
        columns=["device", "mean_waiting", "max_waiting"],
        paper_expectation="more writers queue on XPoint than on either flash SSD",
    )
    runs = _parallelism_runs(preset, seed)
    for device in DEVICES:
        pr = runs[(device, 32)]
        res.add_row(
            device=device,
            mean_waiting=round(pr.result.mean_waiting_writers, 2),
            max_waiting=round(pr.max_waiting, 0),
        )
    return res


# --------------------------------------------------------------------------
# Figure 17 — WAL on/off
# --------------------------------------------------------------------------

def fig17_wal(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig17",
        title="Write latency with and without WAL (R/W 1:9)",
        columns=["device", "wal", "write_p50_us", "write_p90_us"],
        paper_expectation="disabling the WAL cuts write p90 substantially (XPoint: 54 -> 22 us)",
    )
    grid = [
        (device, wal_mode, label)
        for device in DEVICES
        for wal_mode, label in (("buffered", "on"), ("off", "off"))
    ]
    points = [
        WorkloadPoint(
            device, preset, write_fraction=0.9, seed=seed,
            options=preset.options(wal_mode=wal_mode),
        )
        for device, wal_mode, _ in grid
    ]
    for (device, _, label), pr in zip(grid, run_points(points)):
        hist = pr.result.write_latency
        res.add_row(
            device=device,
            wal=label,
            write_p50_us=round(hist.percentile(50) / 1e3, 1),
            write_p90_us=round(hist.percentile(90) / 1e3, 1),
        )
    return res


# --------------------------------------------------------------------------
# Figure 18 — two-stage throttling under periodic write bursts
# --------------------------------------------------------------------------

def fig18_two_stage(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig18",
        title="Throughput under periodic write bursts: original vs two-stage throttling",
        columns=["controller", "mean_kops", "min_kops", "near_stop_frac", "near_stop_periods"],
        paper_expectation=(
            "original throttling shows near-stop (<10 kop/s) valleys during "
            "bursts; two-stage throttling removes them"
        ),
    )
    # Paper: R/W 1:1 with a 1:9 burst 25 s out of every 60 s, 300 s run.
    # Scaled: same duty cycle (~42%) on a shorter period.
    duration = max(3 * _duration_ns(preset), seconds(9.0))
    schedule = BurstSchedule(
        base_write_fraction=0.5,
        burst_write_fraction=0.9,
        period_ns=duration // 3,
        burst_ns=int(duration // 3 * 0.42),
    )
    labels = ("original", "two-stage")
    points = [
        WorkloadPoint(
            "xpoint",
            preset,
            write_fraction=0.5,
            seed=seed,
            duration_ns=duration,
            schedule=schedule,
            controller="" if label == "original" else "two-stage",
            warmup_fraction=0.1,
        )
        for label in labels
    ]
    for label, pr in zip(labels, run_points(points)):
        series = pr.result.timeline.series(
            start=pr.result.config.warmup_ns, end=duration
        )
        stats = throughput_variation(series)
        res.add_row(
            controller=label,
            mean_kops=round(stats["mean"] / 1e3, 1),
            min_kops=round(stats["min"] / 1e3, 1),
            near_stop_frac=round(near_stop_fraction(series), 3),
            near_stop_periods=len(near_stop_periods(series)),
        )
        res.series[label] = series
    return res


# --------------------------------------------------------------------------
# Figure 19 — dynamic Level-0 management
# --------------------------------------------------------------------------

FIG19_READ_RATIOS = (0.05, 0.5, 0.9)


def fig19_dynamic_l0(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig19",
        title="Throughput vs read ratio: default vs dynamic Level-0 management",
        columns=["read_ratio", "default_kops", "dynamic_kops", "gain_pct"],
        paper_expectation=(
            "dynamic L0 wins for read-heavy mixes (+13% at 90% reads), "
            "ties at 5% reads"
        ),
    )
    points = []
    for read_ratio in FIG19_READ_RATIOS:
        wf = 1.0 - read_ratio
        for dynamic in (False, True):
            points.append(
                WorkloadPoint(
                    "xpoint",
                    preset,
                    write_fraction=wf,
                    seed=seed,
                    options=dynamic_l0_options(preset.options()),
                    dynamic_l0=dynamic,
                )
            )
    results = run_points(points)
    for i, read_ratio in enumerate(FIG19_READ_RATIOS):
        dk = results[2 * i].result.kops
        yk = results[2 * i + 1].result.kops
        res.add_row(
            read_ratio=read_ratio,
            default_kops=round(dk, 1),
            dynamic_kops=round(yk, 1),
            gain_pct=round((yk - dk) / dk * 100 if dk else 0.0, 1),
        )
    return res


# --------------------------------------------------------------------------
# Figure 20 — logging configurations
# --------------------------------------------------------------------------

def fig20_nvm_wal(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    preset = preset or bench_preset()
    res = ExperimentResult(
        exp_id="fig20",
        title="Write latency vs logging configuration (50% insertion)",
        columns=["config", "write_p50_us", "write_p90_us", "write_p99_us"],
        paper_expectation=(
            "WAL-in-NVM cuts write p90 ~18.8% vs WAL-on-SSD (16 -> 13 us); "
            "WAL-off remains the fastest"
        ),
    )
    configs = list(logging_configurations())
    points = [
        WorkloadPoint(
            "xpoint",
            preset,
            write_fraction=0.5,
            seed=seed,
            options=config.apply(preset.options()),
            wal_on_nvm=config.wal_on_nvm,
        )
        for config in configs
    ]
    for config, pr in zip(configs, run_points(points)):
        hist = pr.result.write_latency
        res.add_row(
            config=config.label,
            write_p50_us=round(hist.percentile(50) / 1e3, 1),
            write_p90_us=round(hist.percentile(90) / 1e3, 1),
            write_p99_us=round(hist.percentile(99) / 1e3, 1),
        )
    return res


# --------------------------------------------------------------------------
# Analysis #1 — the throttle model table
# --------------------------------------------------------------------------

def model_throttle(preset: Optional[ScalePreset] = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="model1",
        title="Analysis #1: throttled application-level throughput (Eq. 2)",
        columns=["device", "lambda_s_kops", "t_us", "lambda_a_kops", "paper_kops"],
        paper_expectation="computed 2.74 kop/s (XPoint) and 1.88 kop/s (SATA)",
    )
    for row in model_table():
        res.add_row(**row)
    return res


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig01": fig01_motivating,
    "fig03": fig03_insertion_ratio,
    "fig04": fig04_timeline_5w,
    "fig05": fig05_timeline_90w,
    "fig06": fig06_read_latency_90w,
    "fig07": fig07_write_latency_90w,
    "fig08": fig08_l0_count_vs_size,
    "fig09": fig09_throughput_vs_l0,
    "fig10": fig10_read_latency_vs_l0,
    "fig12": fig12_write_latency_vs_sst,
    "fig13": fig13_parallelism,
    "fig14": fig14_read_latency_32t,
    "fig15": fig15_write_latency_32t,
    "fig16": fig16_waiting_threads,
    "fig17": fig17_wal,
    "fig18": fig18_two_stage,
    "fig19": fig19_dynamic_l0,
    "fig20": fig20_nvm_wal,
    "model1": model_throttle,
}
