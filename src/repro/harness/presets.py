"""Scaling presets.

A Python discrete-event simulation cannot execute the paper's full runs
(100 GB dataset, 300 s, tens of millions of operations) in reasonable host
time, so experiments run at a reduced scale that preserves every ratio the
phenomena depend on:

* page cache : dataset ratio stays at the paper's 8 %;
* memtable size : L1 size : level multiplier keep RocksDB's 1 : 4 : 10 shape;
* L0 trigger/slowdown/stop thresholds are unchanged (4 / 20 / 36);
* run lengths are chosen per experiment so several flush+compaction cycles
  (and for the throttling timelines, several stall episodes) complete.

``tiny`` is for unit/integration tests, ``small`` for the benchmark suite,
``paper`` documents the full-scale parameters for reference (runnable, but
hours of host time).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import WorkloadError
from repro.lsm.options import Options
from repro.sim.units import mb, gb, seconds
from repro.workloads.prefill import PrefillSpec


@dataclass(frozen=True)
class ScalePreset:
    """A coherent set of scaled experiment parameters."""

    name: str
    key_count: int
    value_size: int
    duration_ns: int
    processes: int
    write_buffer_size: int
    max_bytes_for_level_base: int
    target_file_size_base: int
    page_cache_bytes: int
    block_cache_bytes: int

    def options(self, **overrides) -> Options:
        """Options matching this preset (RocksDB defaults otherwise)."""
        base = dict(
            write_buffer_size=self.write_buffer_size,
            max_bytes_for_level_base=self.max_bytes_for_level_base,
            target_file_size_base=self.target_file_size_base,
            block_cache_bytes=self.block_cache_bytes,
            memtable_rep="hash",  # host-fast; simulated costs are identical
            name=self.name,
        )
        base.update(overrides)
        return Options(**base)

    def prefill_spec(self) -> PrefillSpec:
        return PrefillSpec(key_count=self.key_count, value_size=self.value_size)

    @property
    def dataset_bytes(self) -> int:
        return self.key_count * (16 + self.value_size + 8)


TINY = ScalePreset(
    name="tiny",
    key_count=60_000,
    value_size=256,
    duration_ns=seconds(1.0),
    processes=2,
    write_buffer_size=mb(1),
    max_bytes_for_level_base=mb(4),
    target_file_size_base=mb(1),
    page_cache_bytes=mb(2),  # ~8% of ~17 MB dataset, rounded
    block_cache_bytes=mb(0.25),
)

SMALL = ScalePreset(
    name="small",
    key_count=1_000_000,
    value_size=1024,  # the paper's 1 KB values
    duration_ns=seconds(6.0),
    processes=4,
    write_buffer_size=mb(2),
    max_bytes_for_level_base=mb(8),
    target_file_size_base=mb(2),
    page_cache_bytes=mb(84),  # 8% of ~1 GB dataset
    block_cache_bytes=mb(8),
)

PAPER = ScalePreset(
    name="paper",
    key_count=100_000_000,
    value_size=1024,
    duration_ns=seconds(300.0),
    processes=4,
    write_buffer_size=mb(64),
    max_bytes_for_level_base=mb(256),
    target_file_size_base=mb(64),
    page_cache_bytes=gb(8),
    block_cache_bytes=mb(8),
)

PRESETS = {"tiny": TINY, "small": SMALL, "paper": PAPER}


def preset_by_name(name: str) -> ScalePreset:
    try:
        return PRESETS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None


def bench_preset() -> ScalePreset:
    """Preset used by the benchmark suite (override via REPRO_PRESET)."""
    return preset_by_name(os.environ.get("REPRO_PRESET", "small"))


def trace_path() -> Optional[str]:
    """Default trace output path (the ``REPRO_TRACE`` env var), or None.

    The CLI's ``--trace`` flag overrides this; the env var exists so the
    benchmark suite and ad-hoc scripts can be traced without plumbing a
    flag through (``REPRO_TRACE=out.json python -m repro.harness fig05``).
    """
    return os.environ.get("REPRO_TRACE") or None
