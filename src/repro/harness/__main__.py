"""CLI: regenerate paper figures from the command line.

Usage::

    python -m repro.harness fig03            # one experiment
    python -m repro.harness all              # every experiment
    python -m repro.harness fig18 --preset tiny --seed 7
    python -m repro.harness fig05 --preset tiny --trace trace.json

``--trace PATH`` records every simulated machine the experiment stands up
into one Chrome-trace/Perfetto JSON file (open it at https://ui.perfetto.dev)
and prints a short textual digest — longest write stalls, busiest device
intervals — after the figures.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import EXPERIMENTS, set_jobs
from repro.harness.presets import preset_by_name, trace_path
from repro.harness.report import render_trace_summary
from repro.obs import Tracer, set_active_tracer
from repro.perf.parallel import default_jobs
from repro.workloads.batching import batch_ops, set_batch_ops


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate figures from 'From Flash to 3D XPoint' (ISPASS 2020)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper figure) or 'all'",
    )
    parser.add_argument("--preset", default="small", help="tiny | small | paper")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=trace_path(),
        help="write a Chrome-trace/Perfetto JSON of the run(s) to PATH "
        "(default: $REPRO_TRACE if set)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=default_jobs(),
        metavar="N",
        help="worker processes for independent sweep points (default: "
        "$REPRO_JOBS or 1); any value produces bit-identical figures",
    )
    parser.add_argument(
        "--batch-ops",
        type=int,
        default=batch_ops(),
        metavar="N",
        help="op-vector size for batched workload clients (default: "
        "$REPRO_BATCH_OPS or 64); 0 disables batching — every figure is "
        "bit-identical either way, batching only changes wall-clock speed",
    )
    args = parser.parse_args(argv)
    set_batch_ops(args.batch_ops)

    if args.trace and args.jobs > 1:
        # Worker processes would record their trace events into their own
        # (forked) tracer copies and the export here would silently miss
        # them — tracing forces the serial path.
        print("[--trace forces --jobs 1: trace events are per-process]")
        args.jobs = 1
    set_jobs(args.jobs)

    preset = preset_by_name(args.preset)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    tracer = None
    if args.trace:
        try:
            open(args.trace, "w", encoding="utf-8").close()
        except OSError as exc:
            parser.error(f"cannot write trace file: {exc}")
        tracer = Tracer()
        set_active_tracer(tracer)
    try:
        for name in names:
            started = time.time()
            result = EXPERIMENTS[name](preset, seed=args.seed)
            print(result.render())
            print(f"[{name} regenerated in {time.time() - started:.1f}s]\n")
    finally:
        if tracer is not None:
            set_active_tracer(None)
    if tracer is not None:
        written = tracer.export(args.trace)
        print(render_trace_summary(tracer))
        print(f"[trace: {written} events -> {args.trace}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
