"""CLI: regenerate paper figures from the command line.

Usage::

    python -m repro.harness fig03            # one experiment
    python -m repro.harness all              # every experiment
    python -m repro.harness fig18 --preset tiny --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import EXPERIMENTS
from repro.harness.presets import preset_by_name


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate figures from 'From Flash to 3D XPoint' (ISPASS 2020)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper figure) or 'all'",
    )
    parser.add_argument("--preset", default="small", help="tiny | small | paper")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    preset = preset_by_name(args.preset)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](preset, seed=args.seed)
        print(result.render())
        print(f"[{name} regenerated in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
