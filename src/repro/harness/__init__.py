"""Experiment harness: machines, scale presets, per-figure experiments."""

from repro.harness.experiments import (
    DEVICES,
    EXPERIMENTS,
    RunArtifacts,
    clear_memo,
    run_workload,
)
from repro.harness.machine import Machine
from repro.harness.presets import PAPER, PRESETS, SMALL, TINY, ScalePreset, bench_preset, preset_by_name
from repro.harness.report import ExperimentResult, format_table, render_sparkline

__all__ = [
    "DEVICES",
    "EXPERIMENTS",
    "ExperimentResult",
    "Machine",
    "PAPER",
    "PRESETS",
    "RunArtifacts",
    "SMALL",
    "ScalePreset",
    "TINY",
    "bench_preset",
    "clear_memo",
    "format_table",
    "preset_by_name",
    "render_sparkline",
    "run_workload",
]
