"""Result containers and ASCII table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class ExperimentResult:
    """The regenerated artifact for one paper figure."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    # Optional named timeline series: label -> [(t_seconds, ops_per_s)].
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    paper_expectation: str = ""
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_for(self, **match: Any) -> Dict[str, Any]:
        """First row whose fields equal ``match`` (raises if absent)."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match} in {self.exp_id}")

    def table_str(self) -> str:
        return format_table(self.columns, self.rows, title=f"{self.exp_id}: {self.title}")

    def render(self) -> str:
        """Full text report: table, series sketches, expectations."""
        parts = [self.table_str()]
        for label, series in self.series.items():
            parts.append(render_sparkline(label, series))
        if self.paper_expectation:
            parts.append(f"paper expectation: {self.paper_expectation}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    columns: Sequence[str], rows: Sequence[Dict[str, Any]], title: Optional[str] = None
) -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_trace_summary(tracer, top_n: int = 5) -> str:
    """Textual digest of a traced run: longest stalls, busiest intervals.

    ``tracer`` is a :class:`repro.obs.Tracer` that recorded the run(s);
    the digest complements the exported Chrome-trace JSON with the
    headlines a reader checks first.
    """
    from repro.obs.summary import summarize

    return summarize(tracer, top_n=top_n)


_SPARK = " .:-=+*#%@"


def render_sparkline(label: str, series: Sequence[Tuple[float, float]]) -> str:
    """One-line ASCII sketch of a throughput timeline."""
    if not series:
        return f"{label}: (empty)"
    rates = [rate for _, rate in series]
    top = max(rates) or 1.0
    chars = "".join(
        _SPARK[min(len(_SPARK) - 1, int(rate / top * (len(_SPARK) - 1)))]
        for rate in rates
    )
    return f"{label}: [{chars}] max={top / 1e3:.1f} kop/s"
