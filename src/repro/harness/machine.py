"""Machine assembly: engine + device + filesystem + caches (+ optional NVM).

One :class:`Machine` is the simulated analog of the paper's testbed server:
a two-socket Xeon (the CPU cost model), one storage device under test, an
Ext4-like filesystem and a page cache sized to the configured RAM (the paper
boots with 8 GB against a 100 GB dataset).  For case study C a second,
NVM-backed filesystem can be attached to host the WAL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fs.filesystem import SimFileSystem
from repro.fs.page_cache import PageCache
from repro.lsm.costs import DEFAULT_COSTS, CostModel
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.write_controller import WriteController
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.storage.device import StorageDevice
from repro.storage.profiles import DeviceProfile, nvm_dimm


@dataclass
class Machine:
    """A fully assembled simulated host."""

    engine: Engine
    device: StorageDevice
    fs: SimFileSystem
    page_cache: PageCache
    rng: RandomStream
    nvm_fs: Optional[SimFileSystem] = None
    costs: CostModel = DEFAULT_COSTS

    @classmethod
    def create(
        cls,
        profile: DeviceProfile,
        page_cache_bytes: int,
        seed: int = 1,
        with_nvm: bool = False,
        costs: Optional[CostModel] = None,
    ) -> "Machine":
        """Stand up a machine around one storage device."""
        engine = Engine()
        rng = RandomStream(seed, f"machine/{profile.name}")
        device = StorageDevice(engine, profile, rng.fork("device"))
        page_cache = PageCache(page_cache_bytes)
        fs = SimFileSystem(engine, device, page_cache)
        nvm_fs = None
        if with_nvm:
            nvm_device = StorageDevice(engine, nvm_dimm(), rng.fork("nvm"))
            # The NVM region is small and byte-addressable; give it its own
            # tiny page-cache namespace (writes are effectively direct).
            nvm_fs = SimFileSystem(engine, nvm_device, PageCache(page_cache_bytes // 8))
        return cls(
            engine=engine,
            device=device,
            fs=fs,
            page_cache=page_cache,
            rng=rng,
            nvm_fs=nvm_fs,
            costs=costs or DEFAULT_COSTS,
        )

    def open_db(
        self,
        options: Options,
        wal_on_nvm: bool = False,
        controller: Optional[WriteController] = None,
        block_cache=None,
        write_buffer_manager=None,
        cache_namespace: int = 0,
        name: str = "db",
    ) -> DB:
        """Open a DB on this machine (optionally logging to NVM).

        ``block_cache`` / ``write_buffer_manager`` / ``cache_namespace``
        let several DBs on one machine (serving shards, column families)
        share one cache and one memtable byte budget; ``name`` keys the
        DB's RNG substream so shards draw independently.
        """
        wal_fs = self.nvm_fs if wal_on_nvm else None
        if wal_on_nvm and wal_fs is None:
            raise ValueError("machine was created without NVM (with_nvm=True)")
        return DB(
            self.engine,
            self.fs,
            options,
            costs=self.costs,
            wal_fs=wal_fs,
            rng=self.rng.fork(name),
            controller=controller,
            block_cache=block_cache,
            write_buffer_manager=write_buffer_manager,
            cache_namespace=cache_namespace,
        )
