"""Wall-clock performance layer.

The simulator's host speed *is* experiment throughput: every figure is a
sweep of (device, config, seed) points replayed through the DES kernel, so
events-per-host-second bounds how much of the paper's design space a session
can cover.  This package keeps that speed high and honest:

* :mod:`repro.perf.parallel` — a deterministic multiprocessing point mapper
  behind the harness/DST ``--jobs N`` flags.  Results are merged in point
  order, so a parallel sweep is bit-identical to a serial one.
* :mod:`repro.perf.bench` — wall-clock microbenchmarks (kernel event churn,
  tiny-preset fillrandom/readrandom, one DST seed) with a fixed protocol
  (GC disabled, one warmup, median of N) emitting ``BENCH_perf.json``, plus
  baseline comparison with a host-speed calibration normalizer so a
  committed baseline transfers across machines.

Run ``python -m repro.perf --help`` for the CLI.
"""

from repro.perf.bench import (
    BenchProtocol,
    compare_reports,
    run_benchmarks,
)
from repro.perf.parallel import map_points

__all__ = [
    "BenchProtocol",
    "compare_reports",
    "map_points",
    "run_benchmarks",
]
