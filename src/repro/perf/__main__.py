"""CLI: run the wall-clock microbenchmarks and the perf-regression check.

Usage::

    python -m repro.perf                          # run, write BENCH_perf.json
    python -m repro.perf --out report.json
    python -m repro.perf --compare benchmarks/perf/baseline.json
    python -m repro.perf --quick --runs 2         # CI-sized
    python -m repro.perf --only kernel_churn fillrandom_tiny

``--compare BASELINE`` exits non-zero if any benchmark's calibrated metric
regresses more than ``--threshold`` (default 25 %) below the baseline.
``--update-baseline`` rewrites the baseline from this run's results.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.perf.bench import (
    DEFAULT_THRESHOLD,
    BenchProtocol,
    compare_reports,
    run_benchmarks,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Wall-clock microbenchmarks and perf-regression checks.",
    )
    parser.add_argument(
        "--out", metavar="PATH", default="BENCH_perf.json",
        help="write the JSON report here (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE",
        help="compare against a baseline report; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional drop before failing (default: 0.25)",
    )
    parser.add_argument("--runs", type=int, default=3, help="timed runs per benchmark")
    parser.add_argument(
        "--quick", action="store_true",
        help="scale work sizes down ~4x (CI / smoke runs)",
    )
    parser.add_argument(
        "--only", nargs="+", metavar="NAME",
        help="run only these benchmarks (calibration is always included)",
    )
    parser.add_argument(
        "--update-baseline", metavar="PATH",
        help="also write this run's report as the new baseline",
    )
    args = parser.parse_args(argv)
    if args.runs < 1:
        parser.error("--runs must be >= 1")

    protocol = BenchProtocol(runs=args.runs, quick=args.quick)

    def progress(name, entry):
        print(f"  {name}: {entry['value']:,.0f} {entry['unit']}", flush=True)

    print(f"running microbenchmarks ({protocol.runs} runs, "
          f"{'quick' if protocol.quick else 'full'} mode, median reported)")
    report = run_benchmarks(protocol, only=args.only, progress=progress)

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[report -> {args.out}]")

    if args.update_baseline:
        with open(args.update_baseline, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[baseline -> {args.update_baseline}]")

    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        ok, lines = compare_reports(baseline, report, threshold=args.threshold)
        print(f"comparing against {args.compare}:")
        for line in lines:
            print(line)
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
