"""Wall-clock microbenchmarks and the perf-regression report format.

Four microbenchmarks cover the layers whose host speed bounds experiment
throughput:

* ``calibration_spin`` — a fixed pure-Python loop measuring raw host speed.
  It is *not* a benchmark of this codebase; it exists so reports recorded on
  different machines can be compared: every other benchmark is also reported
  *calibrated* (divided by the host's spin rate), and regression checks use
  the calibrated value.  A slower CI runner scores lower on everything
  including the spin, leaving the calibrated ratios stable.
* ``kernel_churn`` — pure DES kernel event churn: process spawns, integer
  sleeps, cross-process event fires and joins.  Reported in events/sec
  (scheduled heap occurrences per host second).
* ``fillrandom_tiny`` / ``readrandom_tiny`` — db_bench at the tiny preset,
  100 % writes / 100 % reads.  Reported in simulated ops per host second.
  Machine setup and prefill happen outside the timed region.
* ``dst_seed0`` — one deterministic-simulation seed (workload + faults +
  crash + recovery + verification), ops per host second.
* ``serving_seed0`` — one serving-chaos DST seed (tenant fleet, replicated
  shards, live faults, settle + verify), completed tenant ops per host
  second.  Covers the serving tier the DB-level benchmarks never touch.

Protocol (see EXPERIMENTS.md): garbage collection disabled around the timed
region, one untimed warmup run, then ``runs`` timed runs; the reported value
is the median.  Every run rebuilds its universe from scratch so state never
leaks between samples.
"""

from __future__ import annotations

import gc
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

SCHEMA = "repro.perf/1"

#: Factor applied to per-benchmark work sizes in ``--quick`` mode.
QUICK_SCALE = 0.25

#: Default regression threshold: fail when a calibrated metric drops >25 %.
DEFAULT_THRESHOLD = 0.25

CALIBRATION = "calibration_spin"


@dataclass(frozen=True)
class BenchProtocol:
    """The measurement protocol (documented in EXPERIMENTS.md)."""

    runs: int = 3
    warmup: bool = True
    quick: bool = False

    @property
    def scale(self) -> float:
        return QUICK_SCALE if self.quick else 1.0


# A microbenchmark callable runs once at the given work scale and returns
# ``(work_units, elapsed_seconds)`` for that single run.
BenchFn = Callable[[float], Tuple[int, float]]


def _scaled(n: int, scale: float, floor: int = 1) -> int:
    return max(floor, int(n * scale))


# -- the microbenchmarks ----------------------------------------------------


def bench_calibration_spin(scale: float) -> Tuple[int, float]:
    """Fixed pure-Python work: integer arithmetic in a tight loop."""
    n = _scaled(2_000_000, scale)
    t0 = time.perf_counter()
    acc = 0
    for i in range(n):
        acc = (acc + i * 3) & 0xFFFFFFFF
    elapsed = time.perf_counter() - t0
    assert acc >= 0
    return n, elapsed


def bench_kernel_churn(scale: float) -> Tuple[int, float]:
    """DES kernel hot loop: sleeps, events, spawns and joins, no I/O model."""
    from repro.sim.engine import Engine

    n_procs = 16
    iters = _scaled(1200, scale)
    engine = Engine()

    def succeeder(ev, j):
        yield 1
        ev.succeed(j)

    def joined(j):
        yield 1 + (j & 1)
        return j

    def worker(pid):
        for j in range(iters):
            yield (pid + j) % 5 + 1
            ev = engine.event()
            engine.process(succeeder(ev, j), name="s")
            got = yield ev
            if got != j:
                raise AssertionError("event value lost")
            if j % 7 == 0:
                yield engine.process(joined(j), name="j")

    t0 = time.perf_counter()
    for pid in range(n_procs):
        engine.process(worker(pid), name=f"w{pid}")
    engine.run()
    elapsed = time.perf_counter() - t0
    # Occurrences dispatched, counted analytically so the metric does not
    # depend on kernel internals: per worker one spawn, then per iteration a
    # sleep resume, a succeeder spawn, its sleep resume and the event wakeup,
    # plus spawn + sleep + join wakeup on every 7th iteration.
    joins = (iters + 6) // 7
    events = n_procs * (1 + iters * 4 + joins * 3)
    return events, elapsed


def _bench_tiny_workload(scale: float, write_fraction: float) -> Tuple[int, float]:
    from repro.harness.experiments import run_workload
    from repro.harness.presets import preset_by_name
    from repro.sim.units import seconds
    from repro.workloads.db_bench import DbBench, DbBenchConfig
    from repro.workloads.prefill import prefill

    preset = preset_by_name("tiny")
    duration = int(seconds(0.3) * max(scale, 0.25))
    # Build the machine and prefill outside the timed region: the benchmark
    # measures steady-state op throughput, not setup.
    from repro.harness.machine import Machine
    from repro.harness.experiments import DEVICES

    machine = Machine.create(DEVICES["pcie-flash"](), preset.page_cache_bytes, seed=11)
    db = machine.open_db(preset.options())
    prefill(db, preset.prefill_spec())
    cfg = DbBenchConfig(
        processes=2,
        duration_ns=duration,
        write_fraction=write_fraction,
        value_size=preset.value_size,
        key_count=preset.key_count,
        seed=11,
        timeline_bucket_ns=max(1, duration // 10),
    )
    bench = DbBench(cfg)
    t0 = time.perf_counter()
    result = bench.run(db)
    elapsed = time.perf_counter() - t0
    return max(result.ops, 1), elapsed


def bench_fillrandom_tiny(scale: float) -> Tuple[int, float]:
    return _bench_tiny_workload(scale, write_fraction=1.0)


def bench_readrandom_tiny(scale: float) -> Tuple[int, float]:
    return _bench_tiny_workload(scale, write_fraction=0.0)


def bench_dst_seed0(scale: float) -> Tuple[int, float]:
    """One full DST cycle: workload, faults, crash, recovery, verification."""
    from repro.dst.harness import DstConfig, DstRun

    ops = _scaled(900, scale)
    cfg = DstConfig(num_ops=ops, num_keys=60)
    t0 = time.perf_counter()
    result = DstRun(0, cfg).run()
    elapsed = time.perf_counter() - t0
    if not result.ok:
        raise AssertionError(f"dst benchmark seed failed: {result.reason}")
    return ops, elapsed


def bench_serving_seed0(scale: float) -> Tuple[int, float]:
    """One serving-chaos DST cycle: tenant fleet + live faults + verify.

    Exercises the layers the other benchmarks skip — the serving stack,
    replicated shards, retry/hedge client and chaos controller — so a
    host-speed regression there is caught even when raw DB op throughput
    is unchanged.  Work units are completed tenant ops.
    """
    from repro.dst.serving import ServingDstConfig, ServingDstRun
    from repro.sim.units import ms

    cfg = ServingDstConfig(
        duration_ns=int(ms(60) * max(scale, 0.25)),
        settle_ns=ms(120),
    )
    t0 = time.perf_counter()
    result = ServingDstRun(0, cfg).run()
    elapsed = time.perf_counter() - t0
    if not result.ok:
        raise AssertionError(f"serving benchmark seed failed: {result.reason}")
    return max(result.ops, 1), elapsed


BENCHMARKS: Dict[str, Tuple[BenchFn, str]] = {
    CALIBRATION: (bench_calibration_spin, "spins/s"),
    "kernel_churn": (bench_kernel_churn, "events/s"),
    "fillrandom_tiny": (bench_fillrandom_tiny, "ops/s"),
    "readrandom_tiny": (bench_readrandom_tiny, "ops/s"),
    "dst_seed0": (bench_dst_seed0, "ops/s"),
    "serving_seed0": (bench_serving_seed0, "ops/s"),
}


# -- runner -----------------------------------------------------------------


def _run_one(fn: BenchFn, protocol: BenchProtocol) -> Dict[str, object]:
    gc_was_enabled = gc.isenabled()
    samples: List[float] = []
    work = 0
    gc.disable()
    try:
        if protocol.warmup:
            fn(protocol.scale)
        for _ in range(protocol.runs):
            gc.collect()
            work, elapsed = fn(protocol.scale)
            samples.append(work / elapsed if elapsed > 0 else 0.0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "value": statistics.median(samples),
        "samples": [round(s, 2) for s in samples],
        "work_units": work,
    }


def run_benchmarks(
    protocol: Optional[BenchProtocol] = None,
    only: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str, Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """Run the microbenchmarks; return the ``BENCH_perf.json`` report dict.

    ``only`` restricts the set (the calibration spin is always included so
    the report stays comparable).  ``progress`` is called per benchmark with
    ``(name, entry)`` as results land.
    """
    protocol = protocol or BenchProtocol()
    names = list(BENCHMARKS) if only is None else list(only)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmark(s): {unknown}; have {sorted(BENCHMARKS)}")
    if CALIBRATION not in names:
        names.insert(0, CALIBRATION)

    report: Dict[str, object] = {
        "schema": SCHEMA,
        "mode": "quick" if protocol.quick else "full",
        "runs": protocol.runs,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "benchmarks": {},
    }
    benchmarks: Dict[str, Dict[str, object]] = report["benchmarks"]  # type: ignore[assignment]
    for name in names:
        fn, unit = BENCHMARKS[name]
        entry = _run_one(fn, protocol)
        entry["unit"] = unit
        benchmarks[name] = entry
        if progress is not None:
            progress(name, entry)

    calib = benchmarks.get(CALIBRATION, {}).get("value", 0.0)
    if calib:
        for name, entry in benchmarks.items():
            if name != CALIBRATION:
                entry["calibrated"] = entry["value"] / calib  # type: ignore[operator]
    return report


# -- baseline comparison ----------------------------------------------------


def _metric(report: Dict[str, object], name: str) -> Optional[float]:
    """Calibrated metric when available, raw value otherwise."""
    entry = report.get("benchmarks", {}).get(name)  # type: ignore[union-attr]
    if not isinstance(entry, dict):
        return None
    value = entry.get("calibrated", entry.get("value"))
    return float(value) if isinstance(value, (int, float)) else None


def compare_reports(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[bool, List[str]]:
    """Check ``current`` against ``baseline``; returns ``(ok, report_lines)``.

    A benchmark regresses when its calibrated metric drops more than
    ``threshold`` below the baseline's.  Benchmarks present on only one side
    are reported but never fail the check (they have no baseline to regress
    against).  Reports recorded in different modes (quick vs full) are not
    comparable and fail immediately.
    """
    lines: List[str] = []
    if baseline.get("mode") != current.get("mode"):
        return False, [
            f"mode mismatch: baseline={baseline.get('mode')!r} "
            f"current={current.get('mode')!r} — regenerate the baseline"
        ]
    ok = True
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})
    names = [n for n in cur_benches if n != CALIBRATION]
    for name in names:
        cur = _metric(current, name)
        base = _metric(baseline, name)
        if base is None:
            lines.append(f"  {name}: no baseline (new benchmark), skipped")
            continue
        assert cur is not None
        ratio = cur / base if base else float("inf")
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            ok = False
        lines.append(
            f"  {name}: {ratio:.2f}x of baseline "
            f"(calibrated {cur:.4f} vs {base:.4f}) {status}"
        )
    missing = [n for n in base_benches if n not in cur_benches and n != CALIBRATION]
    for name in missing:
        lines.append(f"  {name}: present in baseline but not measured, skipped")
    lines.append(
        f"perf check {'PASSED' if ok else 'FAILED'} "
        f"(threshold: -{threshold * 100:.0f}% calibrated)"
    )
    return ok, lines
