"""Deterministic fan-out of independent sweep points over worker processes.

The harness and DST sweeps are embarrassingly parallel: every (device,
config, seed) point builds its own engine, machine and RNG universe from
scratch, so points share no state.  :func:`map_points` exploits that with a
``multiprocessing`` pool while keeping the *observable* contract of the
serial loop:

* results come back as a list in point order (``imap`` preserves order), so
  downstream merging, printing and report rows are byte-identical to
  ``jobs=1``;
* ``jobs <= 1`` never touches multiprocessing at all — it is the plain
  serial loop, which keeps single-job runs debuggable (breakpoints, perf
  profiles, exceptions with full local state);
* a worker exception is re-raised in the parent (fail fast, like the serial
  loop would).

Workers must be module-level callables and points picklable values — the
usual multiprocessing contract.  The ``fork`` start method is preferred
(cheap, inherits the parsed modules); ``spawn`` is the fallback where fork
is unavailable.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Sequence, TypeVar

P = TypeVar("P")
R = TypeVar("R")

#: Environment variable consulted by :func:`default_jobs` (CLI flags win).
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """The job count used when a CLI is not given ``--jobs`` explicitly."""
    raw = os.environ.get(JOBS_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context("spawn")


def map_points(
    worker: Callable[[P], R],
    points: Iterable[P],
    jobs: int = 1,
    chunksize: int = 1,
) -> List[R]:
    """Apply ``worker`` to every point; return results in point order.

    With ``jobs <= 1`` (or fewer than two points) this is a plain in-process
    loop.  Otherwise a pool of ``min(jobs, len(points))`` processes consumes
    the points and the ordered results are collected as they stream back.
    """
    seq: Sequence[P] = list(points)
    if jobs <= 1 or len(seq) <= 1:
        return [worker(p) for p in seq]
    ctx = _context()
    with ctx.Pool(processes=min(jobs, len(seq))) as pool:
        return list(pool.imap(worker, seq, chunksize=chunksize))


def imap_points(
    worker: Callable[[P], R],
    points: Iterable[P],
    jobs: int = 1,
    chunksize: int = 1,
):
    """Like :func:`map_points` but yields results as they become available
    **in point order** — lets a CLI print per-point lines while later points
    are still running, without ever reordering output versus serial mode.
    """
    seq: Sequence[P] = list(points)
    if jobs <= 1 or len(seq) <= 1:
        for p in seq:
            yield worker(p)
        return
    ctx = _context()
    with ctx.Pool(processes=min(jobs, len(seq))) as pool:
        yield from pool.imap(worker, seq, chunksize=chunksize)
