"""Byte-addressable NVM log target (case study C substrate).

The paper's third case study relocates the write-ahead log onto emulated NVM
(Linux tmpfs in DRAM).  :class:`NvmLog` wraps an NVM-profile
:class:`StorageDevice` as an append-only byte log with the interface the WAL
writer needs: cheap small appends and an explicitly modelled persistence
barrier.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import StorageError
from repro.sim.engine import Engine, Event
from repro.sim.rng import RandomStream
from repro.storage.device import StorageDevice
from repro.storage.profiles import DeviceProfile, nvm_dimm


class NvmLog:
    """Append-only log region on byte-addressable NVM."""

    def __init__(
        self,
        engine: Engine,
        profile: Optional[DeviceProfile] = None,
        rng: Optional[RandomStream] = None,
    ) -> None:
        self.engine = engine
        self.profile = profile or nvm_dimm()
        if self.profile.kind != "nvm":
            raise StorageError(
                f"NvmLog requires an nvm profile, got {self.profile.kind!r}"
            )
        self.device = StorageDevice(engine, self.profile, rng)
        self._head = 0

    @property
    def bytes_appended(self) -> int:
        return self._head

    def append(self, nbytes: int) -> Event:
        """Persist ``nbytes`` at the log head; fires when durable.

        The log wraps around when it reaches the end of the NVM region —
        the WAL truncates after every memtable flush, so the region only
        needs to hold the active log tail.
        """
        if nbytes <= 0:
            raise StorageError(f"append size must be positive: {nbytes}")
        offset = self._head % self.profile.capacity_bytes
        if offset + nbytes > self.profile.capacity_bytes:
            offset = 0
            self._head += self.profile.capacity_bytes - offset
        self._head += nbytes
        return self.device.write(offset, nbytes, sequential=True)

    def reset(self) -> None:
        """Logically truncate the log (after a memtable flush)."""
        self._head = 0
