"""Device profiles for the three SSD generations studied in the paper.

The paper's testbed (Section III) uses:

* an **Intel 530 SATA flash SSD** — slow random reads, slower random writes,
  shallow internal parallelism, SATA interface cap, GC-induced write stalls;
* an **Intel 750 PCIe flash SSD** — NAND latencies with a fast PCIe
  interface, DRAM write buffering and rich internal parallelism;
* an **Intel Optane 900P 3D XPoint SSD** — near-symmetric ~10 us media with
  no erase/GC and very deep parallelism.

The numeric constants below are calibrated so that the raw-device
microbenchmark of Figure 1 lands near the paper's numbers (26 kop/s on SATA
vs 408 kop/s on Optane for 4 KB random, 8 threads, R/W 1:1) while keeping
every *relative* property (read/write disparity, GC stalls, parallelism)
faithful to the hardware class.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.units import GB, MB, gb, us


@dataclass(frozen=True)
class DeviceProfile:
    """Static performance characteristics of a simulated storage device."""

    name: str
    kind: str  # "flash" | "xpoint" | "nvm"
    capacity_bytes: int

    # Media latency: fixed per-request cost, before data transfer (ns).
    read_base_ns: int = us(80)
    write_base_ns: int = us(200)
    # Sequential accesses skip most of the lookup/program overhead.
    seq_read_base_ns: int = us(30)
    seq_write_base_ns: int = us(40)

    # Per-channel media bandwidth (bytes/second) for the transfer component.
    channel_read_bw: int = 140 * MB
    channel_write_bw: int = 120 * MB

    # Internal parallelism: number of independent channels/dies.
    channels: int = 4
    # Stripe unit used to spread large requests across channels (kept small
    # so foreground 4 KB reads do not queue behind a whole compaction write).
    stripe_bytes: int = 64 * 1024

    # Host interface cap shared by all channels (bytes/second).  Full-duplex
    # interfaces (PCIe) give reads and writes independent lanes; half-duplex
    # (SATA) serializes both directions on one link.
    interface_read_bw: int = 550 * MB
    interface_write_bw: int = 500 * MB
    full_duplex: bool = False

    # Multiplicative lognormal jitter sigma on the service time.
    jitter_sigma: float = 0.25

    # --- flash-specific behaviour (ignored for xpoint/nvm) -----------------
    # After this many bytes of *random* writes, one channel takes an
    # erase/GC pause.  Zero disables GC.
    gc_interval_bytes: int = 0
    gc_pause_ns: int = 0

    # Descriptive notes surfaced in reports.
    description: str = ""
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {self.capacity_bytes}")
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1: {self.channels}")
        if self.kind not in ("flash", "xpoint", "nvm", "null"):
            raise ValueError(f"unknown device kind: {self.kind}")

    def with_overrides(self, **kwargs) -> "DeviceProfile":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


def sata_flash_ssd(capacity_bytes: int = 240 * GB) -> DeviceProfile:
    """Intel 530-class SATA flash SSD."""
    return DeviceProfile(
        name="sata-flash",
        kind="flash",
        capacity_bytes=capacity_bytes,
        read_base_ns=us(100),
        write_base_ns=us(150),
        seq_read_base_ns=us(25),
        seq_write_base_ns=us(35),
        channel_read_bw=140 * MB,
        channel_write_bw=115 * MB,
        channels=4,
        interface_read_bw=540 * MB,
        interface_write_bw=490 * MB,
        full_duplex=False,
        jitter_sigma=0.25,
        gc_interval_bytes=48 * MB,
        gc_pause_ns=us(2500),
        description="Intel 530-class SATA NAND flash SSD",
    )


def pcie_flash_ssd(capacity_bytes: int = 400 * GB) -> DeviceProfile:
    """Intel 750-class PCIe NVMe flash SSD."""
    return DeviceProfile(
        name="pcie-flash",
        kind="flash",
        capacity_bytes=capacity_bytes,
        read_base_ns=us(78),
        write_base_ns=us(22),  # DRAM-buffered program path
        seq_read_base_ns=us(12),
        seq_write_base_ns=us(14),
        channel_read_bw=300 * MB,
        channel_write_bw=250 * MB,
        channels=16,
        interface_read_bw=2200 * MB,
        interface_write_bw=900 * MB,
        full_duplex=True,
        jitter_sigma=0.22,
        gc_interval_bytes=96 * MB,
        gc_pause_ns=us(1500),
        description="Intel 750-class PCIe NVMe NAND flash SSD",
    )


def xpoint_ssd(capacity_bytes: int = 280 * GB) -> DeviceProfile:
    """Intel Optane 900P-class 3D XPoint SSD."""
    return DeviceProfile(
        name="xpoint",
        kind="xpoint",
        capacity_bytes=capacity_bytes,
        read_base_ns=us(9),
        write_base_ns=us(10),
        seq_read_base_ns=us(6),
        seq_write_base_ns=us(7),
        channel_read_bw=700 * MB,
        channel_write_bw=650 * MB,
        channels=16,
        interface_read_bw=2500 * MB,
        interface_write_bw=2200 * MB,
        full_duplex=True,
        jitter_sigma=0.08,
        gc_interval_bytes=0,  # no erase, no GC
        gc_pause_ns=0,
        description="Intel Optane 900P-class 3D XPoint SSD",
    )


def nvm_dimm(capacity_bytes: int = 16 * GB) -> DeviceProfile:
    """Byte-addressable NVM (the paper emulates it with tmpfs in DRAM)."""
    return DeviceProfile(
        name="nvm",
        kind="nvm",
        capacity_bytes=capacity_bytes,
        read_base_ns=us(0.3),
        write_base_ns=us(0.5),
        seq_read_base_ns=us(0.2),
        seq_write_base_ns=us(0.3),
        channel_read_bw=4000 * MB,
        channel_write_bw=2500 * MB,
        channels=32,
        interface_read_bw=12000 * MB,
        interface_write_bw=9000 * MB,
        full_duplex=True,
        jitter_sigma=0.02,
        description="byte-addressable NVM emulated in DRAM (tmpfs analog)",
    )


def null_device(capacity_bytes: int = gb(1)) -> DeviceProfile:
    """Zero-latency device for unit tests that only need plumbing."""
    return DeviceProfile(
        name="null",
        kind="null",
        capacity_bytes=capacity_bytes,
        read_base_ns=0,
        write_base_ns=0,
        seq_read_base_ns=0,
        seq_write_base_ns=0,
        channel_read_bw=10**18,  # effectively infinite: zero transfer time
        channel_write_bw=10**18,
        channels=64,
        interface_read_bw=10**18,
        interface_write_bw=10**18,
        full_duplex=True,
        jitter_sigma=0.0,
        description="instantaneous device for tests",
    )


PROFILES = {
    "sata-flash": sata_flash_ssd,
    "pcie-flash": pcie_flash_ssd,
    "xpoint": xpoint_ssd,
    "nvm": nvm_dimm,
    "null": null_device,
}


def profile_by_name(name: str, capacity_bytes: int | None = None) -> DeviceProfile:
    """Look up a standard profile by name (optionally resized)."""
    try:
        factory = PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown device profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
    if capacity_bytes is None:
        return factory()
    return factory(capacity_bytes)
