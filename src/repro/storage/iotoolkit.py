"""Raw-device microbenchmark (Intel Open Storage Toolkit stand-in).

The paper's Figure 1 uses the Intel Open Storage Toolkit to issue 4 KB random
requests with 8 threads and a 1:1 read/write ratio against the first 10 GB of
each device.  :class:`RawBenchmark` reproduces that: a set of closed-loop
client processes issuing direct I/O against a :class:`StorageDevice`, with a
small per-request host-side submission overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import WorkloadError
from repro.sim.engine import Engine
from repro.sim.rng import RandomStream
from repro.sim.stats import LatencyHistogram
from repro.sim.units import GB, KB, SEC, seconds, us
from repro.storage.device import StorageDevice
from repro.storage.profiles import DeviceProfile


@dataclass(frozen=True)
class RawWorkloadConfig:
    """Parameters of a raw-device run (defaults = the paper's Figure 1)."""

    threads: int = 8
    request_bytes: int = 4 * KB
    read_fraction: float = 0.5
    span_bytes: int = 10 * GB
    duration_ns: int = seconds(1.0)
    submit_overhead_ns: int = us(5)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise WorkloadError(f"threads must be >= 1: {self.threads}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(f"read_fraction out of [0,1]: {self.read_fraction}")
        if self.request_bytes <= 0:
            raise WorkloadError(f"request_bytes must be positive: {self.request_bytes}")


@dataclass
class RawResult:
    """Outcome of a raw-device benchmark run."""

    device: str
    ops: int = 0
    reads: int = 0
    writes: int = 0
    duration_ns: int = 0
    read_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    write_latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def kops(self) -> float:
        """Total throughput in thousands of operations per second."""
        if self.duration_ns <= 0:
            return 0.0
        return self.ops * SEC / self.duration_ns / 1e3

    def summary(self) -> Dict[str, float]:
        return {
            "device": self.device,
            "kops": round(self.kops, 1),
            "read_p90_us": round(self.read_latency.percentile(90) / 1e3, 1),
            "write_p90_us": round(self.write_latency.percentile(90) / 1e3, 1),
        }


class RawBenchmark:
    """Closed-loop raw I/O load generator against one device."""

    def __init__(self, config: Optional[RawWorkloadConfig] = None) -> None:
        self.config = config or RawWorkloadConfig()

    def run_profile(self, profile: DeviceProfile) -> RawResult:
        """Create a fresh engine + device for ``profile`` and benchmark it."""
        engine = Engine()
        rng = RandomStream(self.config.seed, f"iotoolkit/{profile.name}")
        device = StorageDevice(engine, profile, rng)
        return self.run(engine, device)

    def run(self, engine: Engine, device: StorageDevice) -> RawResult:
        """Run the configured workload on an existing device."""
        cfg = self.config
        span = min(cfg.span_bytes, device.profile.capacity_bytes)
        max_slot = span // cfg.request_bytes
        if max_slot < 1:
            raise WorkloadError("span smaller than one request")
        result = RawResult(device=device.profile.name)
        end_time = engine.now + cfg.duration_ns

        for tid in range(cfg.threads):
            stream = RandomStream(cfg.seed, f"iotoolkit/client{tid}")
            engine.process(
                self._client(engine, device, stream, max_slot, end_time, result),
                name=f"raw-client-{tid}",
            )
        engine.run(until=end_time)
        result.duration_ns = cfg.duration_ns
        return result

    def _client(
        self,
        engine: Engine,
        device: StorageDevice,
        stream: RandomStream,
        max_slot: int,
        end_time: int,
        result: RawResult,
    ):
        cfg = self.config
        while engine.now < end_time:
            if cfg.submit_overhead_ns:
                yield cfg.submit_overhead_ns
            offset = stream.randint(0, max_slot - 1) * cfg.request_bytes
            start = engine.now
            if stream.chance(cfg.read_fraction):
                yield device.read(offset, cfg.request_bytes)
                result.reads += 1
                result.read_latency.record(engine.now - start)
            else:
                yield device.write(offset, cfg.request_bytes)
                result.writes += 1
                result.write_latency.record(engine.now - start)
            result.ops += 1
