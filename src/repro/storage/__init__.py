"""Simulated storage devices: SATA flash, PCIe flash, 3D XPoint, NVM.

See :mod:`repro.storage.profiles` for the calibrated device profiles and
:mod:`repro.storage.device` for the queueing model.
"""

from repro.storage.device import StorageDevice
from repro.storage.iotoolkit import RawBenchmark, RawResult, RawWorkloadConfig
from repro.storage.nvm import NvmLog
from repro.storage.profiles import (
    PROFILES,
    DeviceProfile,
    null_device,
    nvm_dimm,
    pcie_flash_ssd,
    profile_by_name,
    sata_flash_ssd,
    xpoint_ssd,
)

__all__ = [
    "PROFILES",
    "DeviceProfile",
    "NvmLog",
    "RawBenchmark",
    "RawResult",
    "RawWorkloadConfig",
    "StorageDevice",
    "null_device",
    "nvm_dimm",
    "pcie_flash_ssd",
    "profile_by_name",
    "sata_flash_ssd",
    "xpoint_ssd",
]
