"""Queueing model of a block storage device.

The model uses *virtual channel clocks*: each internal channel (die group)
keeps the timestamp at which it next becomes free.  A request picks the
least-loaded channel (firmware dispatch), waits for the shared host
interface, occupies the channel for its service time and completes.  Large
requests are striped across channels so sequential I/O enjoys the device's
full internal parallelism, exactly the property of flash SSDs that RocksDB's
compaction exploits [Chen et al., HPCA'11].

This formulation gives exact FIFO queueing behaviour — including the
read/write interference and queue buildup the paper measures — at O(1) cost
per request and with no extra simulated processes.

Flash-specific behaviour: random writes accumulate garbage-collection debt;
every ``gc_interval_bytes`` of random writes, the serving channel takes an
erase pause (``gc_pause_ns``), producing the long write-tail stalls
characteristic of NAND devices.  3D XPoint profiles disable GC entirely.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import StorageError
from repro.sim.engine import Engine, Event
from repro.sim.rng import RandomStream
from repro.sim.stats import LatencyHistogram, StatsSet, TimeWeightedGauge
from repro.sim.units import SEC
from repro.storage.profiles import DeviceProfile

READ = "read"
WRITE = "write"


class StorageDevice:
    """A simulated block device driven by a :class:`DeviceProfile`.

    ``__slots__`` and the cached ``_trace_enabled`` flag keep the per-request
    bookkeeping cheap: ``_submit`` runs once per simulated I/O, which at
    sweep scale means millions of host-level calls per experiment.
    (Subclasses like FaultyDevice may add attributes freely — they carry
    their own ``__dict__``.)
    """

    __slots__ = (
        "engine",
        "profile",
        "rng",
        "track_queue_depth",
        "_tracer",
        "_track",
        "_observe",
        "_trace_enabled",
        "_channel_free",
        "_channel_read_free",
        "_channel_last_bg_service",
        "_iface_read_free",
        "_iface_write_free",
        "_iface_fg_free",
        "_iface_last_bg_transfer",
        "_stripe_cursor",
        "_gc_debt",
        "_busy_ns",
        "stats",
        "read_latency",
        "write_latency",
        "queue_depth",
        "_inflight",
        "_reads",
        "_writes",
        "_bytes_read",
        "_bytes_written",
        "_gc_pauses",
    )

    def __init__(
        self,
        engine: Engine,
        profile: DeviceProfile,
        rng: Optional[RandomStream] = None,
        track_queue_depth: bool = False,
    ) -> None:
        self.engine = engine
        self.profile = profile
        self.rng = (rng or RandomStream(0)).fork(f"device/{profile.name}")
        self.track_queue_depth = track_queue_depth
        # Tracing: request spans are emitted through the engine's tracer (a
        # shared no-op when tracing is off).  In-flight accounting is needed
        # for either queue-depth reporting or counter events.
        self._tracer = engine.tracer
        self._track = f"device/{profile.name}"
        self._trace_enabled = bool(self._tracer.enabled)
        self._observe = track_queue_depth or self._trace_enabled
        # Per-channel cursors.  `_channel_free` is when all committed work
        # (reads + writes) drains; `_channel_read_free` is when the channel
        # could start a *read*: firmware gives reads priority over queued
        # background writes, so a read waits at most for the request
        # currently in service plus earlier reads (NCQ read priority).
        self._channel_free = [0] * profile.channels
        self._channel_read_free = [0] * profile.channels
        self._channel_last_bg_service = [0] * profile.channels
        # Interface link cursors: full-duplex devices have independent read
        # and write lanes, half-duplex (SATA) shares a single cursor.
        self._iface_read_free = 0
        self._iface_write_free = 0
        self._iface_fg_free = 0
        self._iface_last_bg_transfer = 0
        self._stripe_cursor = 0
        self._gc_debt = 0
        self._busy_ns = 0  # summed channel service time, for utilization

        self.stats = StatsSet()
        self.read_latency = LatencyHistogram(f"{profile.name}/read")
        self.write_latency = LatencyHistogram(f"{profile.name}/write")
        self.queue_depth = TimeWeightedGauge(f"{profile.name}/qd")
        self._inflight = 0
        self._reads = 0
        self._writes = 0
        self._bytes_read = 0
        self._bytes_written = 0
        self._gc_pauses = 0

    # -- public API ----------------------------------------------------------

    def read(self, offset: int, nbytes: int, sequential: bool = False) -> Event:
        """Submit a read; the returned event fires at completion."""
        return self._submit(READ, offset, nbytes, sequential)

    def write(self, offset: int, nbytes: int, sequential: bool = False) -> Event:
        """Submit a write; the returned event fires when durable."""
        return self._submit(WRITE, offset, nbytes, sequential)

    def flush(self) -> Event:
        """Barrier: fires once every previously submitted request finished."""
        horizon = max(
            max(self._channel_free), self._iface_read_free, self._iface_write_free
        )
        delay = max(0, horizon - self.engine.now)
        self.stats.inc("flush_count")
        return self.engine.timeout(delay)

    def trim(self, offset: int, nbytes: int) -> None:
        """Discard a range (frees GC debt on flash; free for others)."""
        self._check_range(offset, nbytes)
        self.stats.inc("trim_count")
        self.stats.inc("bytes_trimmed", nbytes)
        if self.profile.gc_interval_bytes:
            self._gc_debt = max(0, self._gc_debt - nbytes // 2)

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of channel-time spent servicing requests."""
        if elapsed_ns <= 0:
            return 0.0
        return self._busy_ns / (elapsed_ns * self.profile.channels)

    # -- counters (kept as plain attributes on the hot path) -------------------

    @property
    def reads(self) -> int:
        return self._reads

    @property
    def writes(self) -> int:
        return self._writes

    @property
    def bytes_read(self) -> int:
        return self._bytes_read

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    @property
    def gc_pauses(self) -> int:
        return self._gc_pauses

    def snapshot(self) -> dict:
        """Counter snapshot for reports."""
        return {
            "reads": self._reads,
            "writes": self._writes,
            "bytes_read": self._bytes_read,
            "bytes_written": self._bytes_written,
            "gc_pauses": self._gc_pauses,
        }

    # -- internals ----------------------------------------------------------

    def _check_range(self, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise StorageError(f"request size must be positive: {nbytes}")
        if offset < 0 or offset + nbytes > self.profile.capacity_bytes:
            raise StorageError(
                f"request [{offset}, {offset + nbytes}) outside device "
                f"capacity {self.profile.capacity_bytes}"
            )

    def _submit(self, op: str, offset: int, nbytes: int, sequential: bool) -> Event:
        self._check_range(offset, nbytes)
        now = self.engine.now
        prof = self.profile

        if nbytes <= prof.stripe_bytes:
            # Single-stripe request (most block reads): skip the loop's
            # min/max bookkeeping.  finish >= start >= now always holds.
            start, finish = self._submit_stripe(op, nbytes, sequential, now)
        else:
            start = finish = now
            first = True
            remaining = nbytes
            while remaining > 0:
                chunk = min(remaining, prof.stripe_bytes)
                stripe_start, stripe_finish = self._submit_stripe(
                    op, chunk, sequential, now
                )
                if first or stripe_start < start:
                    start = stripe_start
                    first = False
                if stripe_finish > finish:
                    finish = stripe_finish
                remaining -= chunk

        latency = finish - now
        if op is READ:
            self._reads += 1
            self._bytes_read += nbytes
            self.read_latency.record(latency)
        else:
            self._writes += 1
            self._bytes_written += nbytes
            self.write_latency.record(latency)

        if self._trace_enabled:
            self._tracer.device_request(
                self._track, op, now, start, finish, nbytes, sequential
            )
        done = self.engine.timeout(latency)
        if self._observe:
            # Instantaneous in-flight requests, for queue-depth reporting
            # and queue-depth counter events in traces.
            self._inflight += 1
            self.queue_depth.update(now, self._inflight)
            if self._trace_enabled:
                self._tracer.counter(self._track, "inflight", self._inflight)
            done.callbacks.append(self._on_complete)
        return done

    def _on_complete(self, _ev: Event) -> None:
        self._inflight -= 1
        self.queue_depth.update(self.engine.now, self._inflight)
        if self._trace_enabled:
            self._tracer.counter(self._track, "inflight", self._inflight)

    def _submit_stripe(
        self, op: str, nbytes: int, sequential: bool, now: int
    ) -> Tuple[int, int]:
        """Queue one stripe; returns its (service_start, finish) timestamps."""
        prof = self.profile

        # Dispatch: sequential stripes rotate round-robin (striping); random
        # requests go to the least-loaded channel (firmware load balancing).
        if sequential:
            channel = self._stripe_cursor
            self._stripe_cursor = (self._stripe_cursor + 1) % prof.channels
        elif op is READ:
            # min()+index() run at C speed and pick the same channel as
            # min(range(...), key=...): the first least-loaded one.
            cursors = self._channel_read_free
            channel = cursors.index(min(cursors))
        else:
            cursors = self._channel_free
            channel = cursors.index(min(cursors))

        # Shared host interface: commands serialize on the link (or on the
        # per-direction lane for full-duplex interfaces).
        if op is READ:
            base = prof.seq_read_base_ns if sequential else prof.read_base_ns
            bw = prof.channel_read_bw
            iface_bw = prof.interface_read_bw
        else:
            base = prof.seq_write_base_ns if sequential else prof.write_base_ns
            bw = prof.channel_write_bw
            iface_bw = prof.interface_write_bw

        if prof.full_duplex:
            iface_free = self._iface_read_free if op is READ else self._iface_write_free
        else:
            iface_free = max(self._iface_read_free, self._iface_write_free)
        transfer_ns = nbytes * SEC // iface_bw
        foreground = op is READ and not sequential
        if foreground:
            # NCQ read priority: a small random read jumps queued background
            # I/O (compaction/flush streams) at both the channel and the
            # host link, waiting only for earlier foreground reads plus the
            # residual of whatever request is in service — approximated as
            # uniform over that request's duration.
            channel_ready = self._channel_read_free[channel]
            backlog = self._channel_free[channel] - now
            if backlog > 0:
                residual = round(
                    self.rng.uniform(0.0, self._channel_last_bg_service[channel])
                )
                channel_ready = max(channel_ready, now + min(backlog, residual))

            iface_ready = self._iface_fg_free
            iface_backlog = iface_free - now
            if iface_backlog > 0:
                residual = round(self.rng.uniform(0.0, self._iface_last_bg_transfer))
                iface_ready = max(iface_ready, now + min(iface_backlog, residual))
            start = max(now, channel_ready, iface_ready)
            self._iface_fg_free = start + transfer_ns
            # Push queued background transfers back (link capacity conserved).
            if prof.full_duplex:
                self._iface_read_free = (
                    max(self._iface_read_free, start) + transfer_ns
                )
            else:
                pushed = max(self._iface_read_free, self._iface_write_free, start)
                self._iface_read_free = self._iface_write_free = pushed + transfer_ns
        else:
            channel_ready = self._channel_free[channel]
            start = max(now, channel_ready, iface_free)
            if op is READ:
                self._iface_read_free = start + transfer_ns
            else:
                self._iface_write_free = start + transfer_ns
            if not prof.full_duplex:
                self._iface_read_free = self._iface_write_free = start + transfer_ns
            self._iface_last_bg_transfer = transfer_ns

        service = base + nbytes * SEC // bw
        if prof.jitter_sigma > 0.0:
            sigma = prof.jitter_sigma
            service = round(service * self.rng.lognormal(-sigma * sigma / 2, sigma))

        # Flash garbage collection: random writes accrue debt; paying it
        # stalls the serving channel for an erase cycle.
        if op is WRITE and prof.gc_interval_bytes:
            if not sequential:
                self._gc_debt += nbytes * 4  # random writes fragment blocks
            else:
                self._gc_debt += nbytes
            if self._gc_debt >= prof.gc_interval_bytes:
                self._gc_debt -= prof.gc_interval_bytes
                service += prof.gc_pause_ns
                self._gc_pauses += 1
                if self._trace_enabled:
                    self._tracer.gc_pause(self._track, start, prof.gc_pause_ns)

        finish = start + service
        if foreground:
            # Foreground reads occupy the channel now; queued background
            # work is pushed back by the same amount (capacity conserved).
            self._channel_read_free[channel] = finish
            self._channel_free[channel] = (
                max(self._channel_free[channel], start) + service
            )
        else:
            self._channel_free[channel] = finish
            self._channel_last_bg_service[channel] = service
        self._busy_ns += service
        return start, finish
