"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class StorageError(ReproError):
    """Raised by the simulated storage devices."""


class IOFaultError(StorageError):
    """An injected device-level I/O failure (see :mod:`repro.faults`).

    ``op`` is ``"read"`` or ``"write"``; ``transient`` tells callers whether
    a retry can be expected to succeed (RocksDB's retryable background
    errors) or the fault is permanent (media failure).
    """

    def __init__(self, message: str, op: str = "", transient: bool = True) -> None:
        super().__init__(message)
        self.op = op
        self.transient = transient


class FileSystemError(ReproError):
    """Raised by the simulated filesystem."""


class FileNotFoundInFS(FileSystemError):
    """Raised when opening or deleting a path that does not exist."""


class FileExistsInFS(FileSystemError):
    """Raised when exclusively creating a path that already exists."""


class OutOfSpaceError(FileSystemError):
    """Raised when the simulated device has no free capacity left."""


class DBError(ReproError):
    """Base class for key-value store errors."""


class StaleFileError(FileSystemError, DBError):
    """Raised for I/O on a file handle that is deleted or closed.

    Subclasses both :class:`FileSystemError` (it is a filesystem-layer
    condition) and :class:`DBError` (store code catches it alongside other
    database failures), so either family of ``except`` clause sees it.
    """

    def __init__(self, path: str, state: str) -> None:
        super().__init__(f"file {path} is {state}")
        self.path = path
        self.state = state


class FaultConfigError(ReproError):
    """Raised for invalid fault-injection schedules (:mod:`repro.faults`)."""


class DBClosedError(DBError):
    """Raised when an operation is attempted on a closed database."""


class CorruptionError(DBError):
    """Raised when an on-disk structure fails validation (e.g. WAL CRC)."""


class WriteStallError(DBError):
    """Raised when a non-blocking write would stall (``no_slowdown`` mode)."""


class OptionsError(DBError):
    """Raised for invalid or inconsistent configuration options."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications."""
