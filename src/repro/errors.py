"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class StorageError(ReproError):
    """Raised by the simulated storage devices."""


class IOFaultError(StorageError):
    """An injected device-level I/O failure (see :mod:`repro.faults`).

    ``op`` is ``"read"`` or ``"write"``; ``transient`` tells callers whether
    a retry can be expected to succeed (RocksDB's retryable background
    errors) or the fault is permanent (media failure).
    """

    def __init__(self, message: str, op: str = "", transient: bool = True) -> None:
        super().__init__(message)
        self.op = op
        self.transient = transient


class FileSystemError(ReproError):
    """Raised by the simulated filesystem."""


class FileNotFoundInFS(FileSystemError):
    """Raised when opening or deleting a path that does not exist."""


class FileExistsInFS(FileSystemError):
    """Raised when exclusively creating a path that already exists."""


class OutOfSpaceError(FileSystemError):
    """Raised when the device or a configured quota has no free capacity.

    The simulated ENOSPC.  ``path`` names the file whose growth failed
    (empty for quota-level checks), ``needed_bytes``/``free_bytes``
    describe the shortfall when known.
    """

    def __init__(
        self,
        message: str,
        path: str = "",
        needed_bytes: int = 0,
        free_bytes: int = 0,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.needed_bytes = needed_bytes
        self.free_bytes = free_bytes


class DBError(ReproError):
    """Base class for key-value store errors."""


class StaleFileError(FileSystemError, DBError):
    """Raised for I/O on a file handle that is deleted or closed.

    Subclasses both :class:`FileSystemError` (it is a filesystem-layer
    condition) and :class:`DBError` (store code catches it alongside other
    database failures), so either family of ``except`` clause sees it.
    """

    def __init__(self, path: str, state: str) -> None:
        super().__init__(f"file {path} is {state}")
        self.path = path
        self.state = state


class FaultConfigError(ReproError):
    """Raised for invalid fault-injection schedules (:mod:`repro.faults`)."""


class DBClosedError(DBError):
    """Raised when an operation is attempted on a closed database."""


class DBReadOnlyError(DBError):
    """Raised for foreground writes while the DB is degraded read-only.

    A hard or fatal background error (see
    :mod:`repro.lsm.error_handler`) puts the store into read-only mode:
    reads keep working, writes fail fast with this typed error.
    ``severity`` is ``"hard"`` or ``"fatal"``; ``source`` names the
    background path that failed (``flush``/``compaction``/``wal``/
    ``manifest``).
    """

    def __init__(self, message: str, severity: str = "", source: str = "") -> None:
        super().__init__(message)
        self.severity = severity
        self.source = source


class CorruptionError(DBError):
    """Raised when an on-disk structure fails validation (e.g. WAL CRC)."""


class WriteStallError(DBError):
    """Raised when a non-blocking write would stall (``no_slowdown`` mode)."""


class OptionsError(DBError):
    """Raised for invalid or inconsistent configuration options."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications."""


class ServingError(ReproError):
    """Base class for serving-tier client errors (:mod:`repro.serving`).

    Every failure the resilient serving client surfaces to a tenant is a
    subclass of this — the "typed error, never a hang" half of the
    per-op deadline contract.
    """


class DeadlineExceededError(ServingError):
    """An op could not complete within its client deadline.

    ``op`` is ``"get"``/``"put"``/``"scan"``; ``elapsed_ns`` is the
    virtual time burned before giving up (always <= the deadline: the
    client raises *at* the deadline rather than sleeping past it).
    """

    def __init__(self, message: str, op: str = "", elapsed_ns: int = 0) -> None:
        super().__init__(message)
        self.op = op
        self.elapsed_ns = elapsed_ns


class ShedError(ServingError):
    """An op was shed before reaching storage (graceful degradation).

    ``reason`` names the shedding layer: ``"brownout-write"`` (writes
    shed while the shard group cannot reach a write quorum),
    ``"error-budget"`` (the tenant exhausted its typed-error budget and
    is backed off wholesale), or ``"breaker"`` (the per-shard circuit
    breaker is open, suppressing a retry storm against a hard-down
    shard).
    """

    def __init__(self, message: str, reason: str = "", shard: int = -1) -> None:
        super().__init__(message)
        self.reason = reason
        self.shard = shard


class ShardUnavailableError(ServingError):
    """Every retry against a shard group failed before the deadline.

    Distinct from :class:`DeadlineExceededError`: time remained, but the
    attempt budget ran out (e.g. the group is mid-election and each
    probe fast-fails).
    """

    def __init__(self, message: str, shard: int = -1, attempts: int = 0) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts
