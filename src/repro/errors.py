"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class StorageError(ReproError):
    """Raised by the simulated storage devices."""


class FileSystemError(ReproError):
    """Raised by the simulated filesystem."""


class FileNotFoundInFS(FileSystemError):
    """Raised when opening or deleting a path that does not exist."""


class FileExistsInFS(FileSystemError):
    """Raised when exclusively creating a path that already exists."""


class OutOfSpaceError(FileSystemError):
    """Raised when the simulated device has no free capacity left."""


class DBError(ReproError):
    """Base class for key-value store errors."""


class DBClosedError(DBError):
    """Raised when an operation is attempted on a closed database."""


class CorruptionError(DBError):
    """Raised when an on-disk structure fails validation (e.g. WAL CRC)."""


class WriteStallError(DBError):
    """Raised when a non-blocking write would stall (``no_slowdown`` mode)."""


class OptionsError(DBError):
    """Raised for invalid or inconsistent configuration options."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications."""
