"""Tests for database pre-population."""

import pytest

from repro.errors import WorkloadError
from repro.lsm.value import ValueRef
from repro.sim.units import kb
from repro.workloads.generators import encode_key
from repro.workloads.prefill import PrefillSpec, prefill
from tests.conftest import make_db, run_op, tiny_options


def build(engine, keys=2000, value_size=64, **opts):
    db = make_db(engine, options=tiny_options(**opts))
    spec = PrefillSpec(key_count=keys, value_size=value_size)
    files = prefill(db, spec)
    return db, spec, files


def test_spec_validation():
    with pytest.raises(WorkloadError):
        PrefillSpec(key_count=0)
    with pytest.raises(WorkloadError):
        PrefillSpec(key_count=10, value_size=0)


def test_spec_sizes():
    spec = PrefillSpec(key_count=100, value_size=1024)
    assert spec.entry_bytes == 16 + 1024 + 8
    assert spec.total_bytes == 100 * spec.entry_bytes
    assert spec.keyspace().count == 100
    assert spec.value_spec().size == 1024


def test_all_keys_readable(engine):
    db, spec, _ = build(engine, keys=1500)
    values = spec.value_spec()

    def checker():
        for i in range(0, 1500, 97):
            got = yield from db.get(encode_key(i))
            assert got == values.value_for(i), i

    run_op(engine, checker())


def test_no_l0_files_initially(engine):
    db, _, files = build(engine)
    assert db.versions.current.num_files(0) == 0
    assert 0 not in files


def test_levels_under_compaction_triggers(engine):
    """Prefill must not start at/above level targets (no instant churn)."""
    db, _, _ = build(engine, keys=4000)
    for level in range(1, db.options.num_levels - 1):
        if db.versions.current.num_files(level):
            assert (
                db.versions.current.level_bytes(level)
                <= db.options.max_bytes_for_level(level)
            )
    assert db.versions.pending_compaction_bytes() == 0


def test_multiple_levels_populated(engine):
    db, _, files = build(engine, keys=4000)
    assert len(files) >= 2  # data spans at least two levels
    db.versions.current.check_invariants()


def test_deepest_level_holds_most_data(engine):
    db, _, _ = build(engine, keys=12000)
    populated = [
        level
        for level in range(1, db.options.num_levels)
        if db.versions.current.num_files(level)
    ]
    deepest = populated[-1]
    bytes_per_level = {lvl: db.versions.current.level_bytes(lvl) for lvl in populated}
    assert bytes_per_level[deepest] == max(bytes_per_level.values())


def test_file_sizes_near_target(engine):
    db, _, _ = build(engine, keys=4000)
    target = db.options.target_file_size_base
    for meta in db.versions.current.all_files():
        assert meta.file_bytes <= target * 1.5


def test_files_marked_durable_and_cold(engine):
    db, _, _ = build(engine)
    meta = db.versions.current.all_files()[0]
    assert meta.file.synced_size == meta.file.size
    assert len(db.fs.page_cache) == 0  # cold start


def test_sequence_numbers_assigned(engine):
    db, spec, _ = build(engine)
    assert db.versions.last_sequence == spec.key_count


def test_prefill_requires_empty_db(engine):
    db, spec, _ = build(engine)
    with pytest.raises(WorkloadError):
        prefill(db, spec)


def test_deterministic_layout(engine):
    from repro.sim.engine import Engine

    def shape():
        engine = Engine()
        db, _, files = build(engine, keys=3000)
        return files, db.level_shape()

    assert shape() == shape()
