"""Tests for the db_bench-equivalent workload runner."""

import pytest

from repro.errors import WorkloadError
from repro.sim.units import SEC, seconds
from repro.storage.profiles import xpoint_ssd
from repro.workloads.db_bench import BenchResult, DbBench, DbBenchConfig
from repro.workloads.generators import BurstSchedule
from repro.workloads.prefill import PrefillSpec, prefill
from tests.conftest import make_db, tiny_options


def bench_db(engine, **opts):
    db = make_db(engine, profile=xpoint_ssd(), options=tiny_options(**opts))
    prefill(db, PrefillSpec(key_count=5000, value_size=64))
    return db


def fast_config(**overrides):
    base = dict(
        processes=2,
        duration_ns=seconds(0.2),
        write_fraction=0.5,
        value_size=64,
        key_count=5000,
        seed=5,
    )
    base.update(overrides)
    return DbBenchConfig(**base)


def test_config_validation():
    with pytest.raises(WorkloadError):
        DbBenchConfig(processes=0)
    with pytest.raises(WorkloadError):
        DbBenchConfig(duration_ns=0)
    with pytest.raises(WorkloadError):
        DbBenchConfig(write_fraction=2.0)
    with pytest.raises(WorkloadError):
        DbBenchConfig(duration_ns=100, warmup_ns=200)


def test_run_produces_counts_and_latencies(engine):
    db = bench_db(engine)
    result = DbBench(fast_config()).run(db)
    assert result.ops == result.reads + result.writes > 0
    assert result.read_latency.count == result.reads
    assert result.write_latency.count == result.writes
    assert result.kops > 0
    assert result.measured_ns == fast_config().duration_ns


def test_write_fraction_respected(engine):
    db = bench_db(engine)
    result = DbBench(fast_config(write_fraction=0.2)).run(db)
    assert result.writes / result.ops == pytest.approx(0.2, abs=0.06)


def test_pure_read_and_pure_write(engine):
    db = bench_db(engine)
    r = DbBench(fast_config(write_fraction=0.0)).run(db)
    assert r.writes == 0 and r.reads > 0
    w = DbBench(fast_config(write_fraction=1.0, duration_ns=seconds(0.1))).run(db)
    assert w.reads == 0 and w.writes > 0


def test_warmup_excluded_from_measurement(engine):
    db = bench_db(engine)
    cfg = fast_config(duration_ns=seconds(0.2), warmup_ns=seconds(0.1))
    result = DbBench(cfg).run(db)
    assert result.measured_ns == seconds(0.1)
    # All recorded samples began after the warmup boundary.
    assert result.ops > 0


def test_timeline_buckets_cover_run(engine):
    db = bench_db(engine)
    cfg = fast_config(timeline_bucket_ns=SEC // 20)
    result = DbBench(cfg).run(db)
    series = result.timeline.series(0, cfg.duration_ns)
    assert len(series) == 4  # 0.2 s / 50 ms
    assert sum(rate for _, rate in series) > 0


def test_l0_sampler_records(engine):
    db = bench_db(engine)
    cfg = fast_config(timeline_bucket_ns=SEC // 20)
    result = DbBench(cfg).run(db)
    assert len(result.l0_file_counts) >= 3


def test_burst_schedule_shifts_mix(engine):
    db = bench_db(engine)
    schedule = BurstSchedule(0.0, 1.0, period_ns=seconds(0.2), burst_ns=seconds(0.1))
    result = DbBench(fast_config(schedule=schedule)).run(db)
    assert result.writes > 0 and result.reads > 0


def test_deterministic_given_seed():
    from repro.sim.engine import Engine

    def run():
        engine = Engine()
        db = bench_db(engine)
        return DbBench(fast_config()).run(db)

    a, b = run(), run()
    assert a.ops == b.ops
    assert a.read_latency.total == b.read_latency.total
    assert a.write_latency.total == b.write_latency.total


def test_summary_keys(engine):
    db = bench_db(engine)
    summary = DbBench(fast_config()).run(db).summary()
    assert {"kops", "read_p90_us", "write_p90_us", "mean_waiting"} <= set(summary)


def test_db_tickers_snapshot(engine):
    db = bench_db(engine)
    result = DbBench(fast_config()).run(db)
    assert result.db_tickers.get("gets", 0) + result.db_tickers.get("puts", 0) > 0
