"""Tests for workload generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim.rng import RandomStream
from repro.sim.units import seconds
from repro.workloads.generators import (
    OP_READ,
    OP_WRITE,
    BurstSchedule,
    KeySpace,
    OperationMix,
    ValueSpec,
    decode_key,
    encode_key,
)


class TestKeys:
    def test_encode_fixed_width_sortable(self):
        assert encode_key(0) == b"0000000000000000"
        assert len(encode_key(123456)) == 16
        assert encode_key(1) < encode_key(2) < encode_key(10)

    def test_roundtrip(self):
        for i in (0, 1, 99999, 10**15 - 1):
            assert decode_key(encode_key(i)) == i

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            encode_key(-1)

    @given(a=st.integers(0, 10**12), b=st.integers(0, 10**12))
    def test_byte_order_equals_numeric_order(self, a, b):
        assert (encode_key(a) < encode_key(b)) == (a < b)


class TestKeySpace:
    def test_key_at_bounds(self):
        ks = KeySpace(100)
        assert ks.key_at(0) == encode_key(0)
        assert ks.key_at(99) == encode_key(99)
        with pytest.raises(WorkloadError):
            ks.key_at(100)

    def test_random_key_in_range(self):
        ks = KeySpace(50)
        rng = RandomStream(1)
        for _ in range(100):
            assert 0 <= decode_key(ks.random_key(rng)) < 50

    def test_span(self):
        lo, hi = KeySpace(10).span()
        assert lo == encode_key(0) and hi == encode_key(9)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            KeySpace(0)


class TestValueSpec:
    def test_default_paper_size(self):
        assert ValueSpec().size == 1024

    def test_value_for_deterministic_per_version(self):
        spec = ValueSpec(100)
        assert spec.value_for(5, 1) == spec.value_for(5, 1)
        assert spec.value_for(5, 1) != spec.value_for(5, 2)
        assert spec.value_for(5, 1).size == 100

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            ValueSpec(0)


class TestOperationMix:
    def test_extremes(self):
        rng = RandomStream(1)
        all_writes = OperationMix(1.0)
        all_reads = OperationMix(0.0)
        assert all(all_writes.next_op(rng) == OP_WRITE for _ in range(20))
        assert all(all_reads.next_op(rng) == OP_READ for _ in range(20))

    def test_frequency(self):
        mix = OperationMix(0.3)
        rng = RandomStream(7)
        writes = sum(mix.next_op(rng) == OP_WRITE for _ in range(5000))
        assert writes / 5000 == pytest.approx(0.3, abs=0.03)

    def test_invalid_fraction(self):
        with pytest.raises(WorkloadError):
            OperationMix(1.5)


class TestBurstSchedule:
    def paper_schedule(self):
        # 1:1 base with a 1:9 burst for 25 s out of every 60 s.
        return BurstSchedule(0.5, 0.9, period_ns=seconds(60), burst_ns=seconds(25))

    def test_burst_phase(self):
        sched = self.paper_schedule()
        assert sched.write_fraction_at(seconds(10)) == 0.9
        assert sched.in_burst(seconds(24))
        assert sched.write_fraction_at(seconds(30)) == 0.5
        assert not sched.in_burst(seconds(59))

    def test_periodicity(self):
        sched = self.paper_schedule()
        assert sched.write_fraction_at(seconds(70)) == 0.9  # second period
        assert sched.write_fraction_at(seconds(95)) == 0.5

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BurstSchedule(0.5, 0.9, period_ns=0, burst_ns=0)
        with pytest.raises(WorkloadError):
            BurstSchedule(0.5, 0.9, period_ns=100, burst_ns=200)
        with pytest.raises(WorkloadError):
            BurstSchedule(1.5, 0.9, period_ns=100, burst_ns=50)
