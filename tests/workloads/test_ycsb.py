"""Tests for the YCSB workload suite and the Zipfian generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim.rng import RandomStream
from repro.sim.units import seconds
from repro.storage.profiles import xpoint_ssd
from repro.workloads.prefill import PrefillSpec, prefill
from repro.workloads.ycsb import (
    CORE_WORKLOADS,
    OP_INSERT,
    OP_READ,
    OP_RMW,
    OP_SCAN,
    OP_UPDATE,
    LatestGenerator,
    YcsbRunner,
    YcsbSpec,
    ZipfianGenerator,
)
from tests.conftest import make_db, tiny_options


class TestZipfian:
    def test_range_respected(self):
        gen = ZipfianGenerator(1000)
        rng = RandomStream(1, "z")
        for _ in range(2000):
            assert 0 <= gen.next(rng) < 1000

    def test_skew_head_is_hot(self):
        """With theta=0.99, the hottest ~1% of keys draw a large share."""
        gen = ZipfianGenerator(10_000)
        rng = RandomStream(2, "z")
        draws = [gen.next(rng) for _ in range(5000)]
        head = sum(1 for d in draws if d < 100)
        assert head / len(draws) > 0.3

    def test_higher_theta_more_skew(self):
        def head_share(theta):
            gen = ZipfianGenerator(10_000, theta)
            rng = RandomStream(3, f"z{theta}")
            draws = [gen.next(rng) for _ in range(4000)]
            return sum(1 for d in draws if d < 100) / len(draws)

        assert head_share(0.99) > head_share(0.5)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0)
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, theta=1.5)

    @given(n=st.integers(min_value=1, max_value=50_000))
    @settings(max_examples=20, deadline=None)
    def test_any_range_stays_in_bounds(self, n):
        gen = ZipfianGenerator(n)
        rng = RandomStream(4, "zb")
        for _ in range(50):
            assert 0 <= gen.next(rng) < n


class TestLatest:
    def test_prefers_recent(self):
        gen = LatestGenerator(10_000)
        rng = RandomStream(5, "l")
        draws = [gen.next(rng) for _ in range(3000)]
        recent = sum(1 for d in draws if d >= 9_900)
        assert recent / len(draws) > 0.3

    def test_grow_extends_range(self):
        gen = LatestGenerator(10)
        for _ in range(100):
            gen.grow()
        rng = RandomStream(6, "l")
        assert max(gen.next(rng) for _ in range(500)) > 10


class TestSpecs:
    def test_core_workloads_registered(self):
        assert sorted(CORE_WORKLOADS) == ["A", "B", "C", "D", "E", "F"]

    def test_mix_fractions_sum_to_one(self):
        for spec in CORE_WORKLOADS.values():
            total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw
            assert total == pytest.approx(1.0), spec.name

    def test_invalid_mix_rejected(self):
        with pytest.raises(WorkloadError):
            YcsbSpec("bad", read=0.5)
        with pytest.raises(WorkloadError):
            YcsbSpec("bad", read=1.0, distribution="gaussian")

    def test_pick_op_frequencies(self):
        spec = CORE_WORKLOADS["B"]  # 95/5
        rng = RandomStream(7, "ops")
        reads = sum(spec.pick_op(rng) == OP_READ for _ in range(4000))
        assert reads / 4000 == pytest.approx(0.95, abs=0.02)

    def test_pick_op_rmw(self):
        spec = CORE_WORKLOADS["F"]
        rng = RandomStream(8, "ops")
        ops = {spec.pick_op(rng) for _ in range(200)}
        assert ops == {OP_READ, OP_RMW}


class TestRunner:
    def run_workload(self, engine, name, duration=0.15):
        db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())
        prefill(db, PrefillSpec(key_count=5000, value_size=64))
        runner = YcsbRunner(
            CORE_WORKLOADS[name],
            key_count=5000,
            value_size=64,
            clients=2,
            duration_ns=seconds(duration),
            seed=9,
        )
        return runner.run(db)

    @pytest.mark.parametrize("name", ["A", "B", "C", "D", "E", "F"])
    def test_all_core_workloads_run(self, engine, name):
        result = self.run_workload(engine, name)
        assert result.ops > 0
        assert result.kops > 0
        assert result.latency.count == result.ops

    def test_workload_c_pure_reads(self, engine):
        result = self.run_workload(engine, "C")
        assert set(result.op_counts) == {OP_READ}

    def test_workload_d_inserts_fresh_keys(self, engine):
        result = self.run_workload(engine, "D")
        assert result.op_counts.get(OP_INSERT, 0) > 0

    def test_workload_e_scans(self, engine):
        result = self.run_workload(engine, "E")
        assert result.op_counts.get(OP_SCAN, 0) > 0

    def test_summary_keys(self, engine):
        summary = self.run_workload(engine, "A").summary()
        assert {"workload", "kops", "p50_us", "p99_us"} <= set(summary)

    def test_deterministic(self):
        from repro.sim.engine import Engine

        def run():
            engine = Engine()
            return self.run_workload(engine, "A")

        a, b = run(), run()
        assert a.ops == b.ops
        assert a.latency.total == b.latency.total
