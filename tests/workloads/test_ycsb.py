"""Tests for the YCSB workload suite and the Zipfian generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim.rng import RandomStream
from repro.sim.units import seconds
from repro.storage.profiles import xpoint_ssd
from repro.workloads.prefill import PrefillSpec, prefill
from repro.workloads.ycsb import (
    CORE_WORKLOADS,
    OP_INSERT,
    OP_READ,
    OP_RMW,
    OP_SCAN,
    OP_UPDATE,
    LatestGenerator,
    YcsbRunner,
    YcsbSpec,
    ZipfianGenerator,
)
from tests.conftest import make_db, tiny_options


class TestZipfian:
    def test_range_respected(self):
        gen = ZipfianGenerator(1000)
        rng = RandomStream(1, "z")
        for _ in range(2000):
            assert 0 <= gen.next(rng) < 1000

    def test_skew_head_is_hot(self):
        """With theta=0.99, the hottest ~1% of keys draw a large share."""
        gen = ZipfianGenerator(10_000)
        rng = RandomStream(2, "z")
        draws = [gen.next(rng) for _ in range(5000)]
        head = sum(1 for d in draws if d < 100)
        assert head / len(draws) > 0.3

    def test_higher_theta_more_skew(self):
        def head_share(theta):
            gen = ZipfianGenerator(10_000, theta)
            rng = RandomStream(3, f"z{theta}")
            draws = [gen.next(rng) for _ in range(4000)]
            return sum(1 for d in draws if d < 100) / len(draws)

        assert head_share(0.99) > head_share(0.5)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0)
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, theta=1.5)

    @given(n=st.integers(min_value=1, max_value=50_000))
    @settings(max_examples=20, deadline=None)
    def test_any_range_stays_in_bounds(self, n):
        gen = ZipfianGenerator(n)
        rng = RandomStream(4, "zb")
        for _ in range(50):
            assert 0 <= gen.next(rng) < n


class _FixedU:
    """Stub rng whose uniform draw is pinned (boundary regression probe)."""

    def __init__(self, u: float) -> None:
        self._u = u

    def random(self) -> float:
        return self._u


class TestZipfianBoundary:
    @pytest.mark.parametrize("n", [3, 10, 1000])
    def test_draw_at_top_of_unit_interval_stays_below_n(self, n):
        """Regression: as u -> 1 the tail formula's float rounding landed on
        exactly ``n`` — one past the documented [0, n) range — sending reads
        to a key that does not exist and inserts to a colliding index."""
        gen = ZipfianGenerator(n)
        assert gen.next(_FixedU(1.0 - 2**-53)) <= n - 1
        # random.random() never returns 1.0, but the clamp must hold anyway.
        assert gen.next(_FixedU(1.0)) == n - 1

    @pytest.mark.parametrize("theta", [0.3, 0.5, 0.99])
    def test_clamp_holds_for_any_theta(self, theta):
        gen = ZipfianGenerator(100, theta)
        for u in (0.999999, 1.0 - 2**-53, 1.0):
            assert 0 <= gen.next(_FixedU(u)) < 100


class TestLatest:
    def test_prefers_recent(self):
        gen = LatestGenerator(10_000)
        rng = RandomStream(5, "l")
        draws = [gen.next(rng) for _ in range(3000)]
        recent = sum(1 for d in draws if d >= 9_900)
        assert recent / len(draws) > 0.3

    def test_grow_extends_range(self):
        gen = LatestGenerator(10)
        for _ in range(100):
            gen.grow()
        rng = RandomStream(6, "l")
        assert max(gen.next(rng) for _ in range(500)) > 10


class TestSpecs:
    def test_core_workloads_registered(self):
        assert sorted(CORE_WORKLOADS) == ["A", "B", "C", "D", "E", "F"]

    def test_mix_fractions_sum_to_one(self):
        for spec in CORE_WORKLOADS.values():
            total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw
            assert total == pytest.approx(1.0), spec.name

    def test_invalid_mix_rejected(self):
        with pytest.raises(WorkloadError):
            YcsbSpec("bad", read=0.5)
        with pytest.raises(WorkloadError):
            YcsbSpec("bad", read=1.0, distribution="gaussian")

    def test_pick_op_frequencies(self):
        spec = CORE_WORKLOADS["B"]  # 95/5
        rng = RandomStream(7, "ops")
        reads = sum(spec.pick_op(rng) == OP_READ for _ in range(4000))
        assert reads / 4000 == pytest.approx(0.95, abs=0.02)

    def test_pick_op_rmw(self):
        spec = CORE_WORKLOADS["F"]
        rng = RandomStream(8, "ops")
        ops = {spec.pick_op(rng) for _ in range(200)}
        assert ops == {OP_READ, OP_RMW}


class TestRunner:
    def run_workload(self, engine, name, duration=0.15):
        db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())
        prefill(db, PrefillSpec(key_count=5000, value_size=64))
        runner = YcsbRunner(
            CORE_WORKLOADS[name],
            key_count=5000,
            value_size=64,
            clients=2,
            duration_ns=seconds(duration),
            seed=9,
        )
        return runner.run(db)

    @pytest.mark.parametrize("name", ["A", "B", "C", "D", "E", "F"])
    def test_all_core_workloads_run(self, engine, name):
        result = self.run_workload(engine, name)
        assert result.ops > 0
        assert result.kops > 0
        assert result.latency.count == result.ops

    def test_workload_c_pure_reads(self, engine):
        result = self.run_workload(engine, "C")
        assert set(result.op_counts) == {OP_READ}

    def test_workload_d_inserts_fresh_keys(self, engine):
        result = self.run_workload(engine, "D")
        assert result.op_counts.get(OP_INSERT, 0) > 0

    def test_workload_e_scans(self, engine):
        result = self.run_workload(engine, "E")
        assert result.op_counts.get(OP_SCAN, 0) > 0

    def test_summary_keys(self, engine):
        summary = self.run_workload(engine, "A").summary()
        assert {"workload", "kops", "p50_us", "p99_us"} <= set(summary)

    def test_deterministic(self):
        from repro.sim.engine import Engine

        def run():
            engine = Engine()
            return self.run_workload(engine, "A")

        a, b = run(), run()
        assert a.ops == b.ops
        assert a.latency.total == b.latency.total

    def test_runner_is_reentrant(self):
        """Regression: ``_next_insert`` leaked across ``run()`` calls, so a
        reused runner's second run keyed inserts past the first run's end
        and clamped lookups against a stale key-space bound."""
        from repro.sim.engine import Engine

        runner = YcsbRunner(
            CORE_WORKLOADS["D"],
            key_count=3000,
            value_size=64,
            clients=2,
            duration_ns=seconds(0.1),
            seed=13,
        )

        def run_once():
            engine = Engine()
            db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())
            prefill(db, PrefillSpec(key_count=3000, value_size=64))
            return runner.run(db)

        first = run_once()
        inserted = runner._next_insert - runner.key_count
        assert inserted == first.op_counts.get(OP_INSERT, 0)
        second = run_once()
        # Fresh run, fresh key space: the counter restarts at key_count
        # instead of continuing where the first run stopped.
        assert runner._next_insert - runner.key_count == second.op_counts.get(
            OP_INSERT, 0
        )
        assert first.ops == second.ops
        assert first.op_counts == second.op_counts


class TestChooserRanges:
    """Seed-swept property: every distribution stays inside the key space."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=5000),
        dist=st.sampled_from(["zipfian", "latest", "uniform"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_pick_key_in_range_for_all_ops(self, seed, n, dist):
        runner = YcsbRunner(
            YcsbSpec("probe", read=1.0, distribution=dist), key_count=n
        )
        if dist == "latest":
            chooser = LatestGenerator(n)
        elif dist == "zipfian":
            chooser = ZipfianGenerator(n)
        else:
            chooser = None
        rng = RandomStream(seed, "chooser-range")
        for step in range(120):
            assert 0 <= runner._pick_key(rng, chooser) < runner._next_insert
            if step % 10 == 9:  # interleave inserts: the bound must track
                runner._next_insert += 1
                if isinstance(chooser, LatestGenerator):
                    chooser.grow()
