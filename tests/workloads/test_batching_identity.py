"""Differential proof that batched execution is bit-identical.

Every workload client grew a batched twin (pre-drawn RNG vectors, DB fast
paths, clock warps) whose *only* permitted effect is host wall-clock speed.
These tests run the same seeded scenario with batching disabled and enabled
and compare an md5 over everything observable — summaries, op counts, DB
tickers, raw histogram buckets, event logs — so any drift in the op stream,
RNG draw order or stats recording fails loudly.

The DST scenarios (storm, serving chaos) don't use the batched clients, but
they do exercise the shared put/get/write machinery the fast paths were
carved out of; their digests pin the seed-replay contract across the knob.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.harness.experiments import DEVICES
from repro.harness.machine import Machine
from repro.harness.presets import preset_by_name
from repro.sim.units import ms, seconds
from repro.workloads.batching import batch_ops, set_batch_ops
from repro.workloads.prefill import prefill


@pytest.fixture
def batch_knob():
    """Set the batch size for one run; always restore the session value."""
    prior = batch_ops()

    def use(n: int) -> None:
        set_batch_ops(n)

    yield use
    set_batch_ops(prior)


def _digest(payload) -> str:
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.md5(blob.encode()).hexdigest()


def _tiny_db():
    preset = preset_by_name("tiny")
    machine = Machine.create(
        DEVICES["pcie-flash"](), preset.page_cache_bytes, seed=11
    )
    db = machine.open_db(preset.options())
    prefill(db, preset.prefill_spec())
    return preset, db


def _db_bench_digest(write_fraction: float, processes: int) -> str:
    from repro.workloads.db_bench import DbBench, DbBenchConfig

    preset, db = _tiny_db()
    duration = int(seconds(0.1))
    cfg = DbBenchConfig(
        processes=processes,
        duration_ns=duration,
        write_fraction=write_fraction,
        value_size=preset.value_size,
        key_count=preset.key_count,
        seed=11,
        timeline_bucket_ns=max(1, duration // 10),
    )
    result = DbBench(cfg).run(db)
    return _digest(
        {
            "summary": result.summary(),
            "ops": [result.ops, result.reads, result.writes],
            "tickers": result.db_tickers,
            "timeline": sorted(result.timeline._buckets.items()),
            "l0": result.l0_file_counts,
            "rlat": sorted(result.read_latency._buckets.items()),
            "wlat": sorted(result.write_latency._buckets.items()),
        }
    )


def _ycsb_digest(workload: str, clients: int) -> str:
    from repro.workloads.ycsb import CORE_WORKLOADS, YcsbRunner

    preset, db = _tiny_db()
    runner = YcsbRunner(
        CORE_WORKLOADS[workload],
        key_count=preset.key_count,
        value_size=preset.value_size,
        clients=clients,
        duration_ns=int(seconds(0.08)),
        seed=11,
    )
    result = runner.run(db)
    return _digest(
        {
            "summary": result.summary(),
            "ops": result.ops,
            "op_counts": result.op_counts,
            "tickers": db.stats.tickers(),
            "lat": sorted(result.latency._buckets.items()),
            "rlat": sorted(result.read_latency._buckets.items()),
            "ulat": sorted(result.update_latency._buckets.items()),
        }
    )


def _storm_digest(seed: int) -> str:
    from repro.dst.storm import StormConfig, StormRun

    result = StormRun(seed, StormConfig(num_ops=200)).run()
    assert result.ok, result.reason
    return _digest(
        {
            "verdict": result.verdict,
            "writes": [
                result.writes_issued,
                result.writes_acked,
                result.writes_rejected,
            ],
            "degraded": [result.degraded_entries, result.resume_successes],
            "quiesce_ns": result.quiesce_ns,
            "events": result.events,
        }
    )


def _serving_digest(seed: int) -> str:
    from repro.dst.serving import ServingDstConfig, ServingDstRun

    cfg = ServingDstConfig(duration_ns=ms(40), settle_ns=ms(120))
    result = ServingDstRun(seed, cfg).run()
    assert result.ok, result.reason
    return _digest(
        {
            "verdict": result.verdict,
            "ops": [result.ops, result.shed, result.errors],
            "acked": result.writes_acked,
            "failovers": result.failovers,
            "log_digest": result.log_digest,
            "tenants": result.tenant_rows,
            "events": result.events,
        }
    )


class TestDbBenchBatchingIdentity:
    @pytest.mark.parametrize(
        "write_fraction,processes",
        [(1.0, 1), (0.0, 1), (0.5, 1), (0.5, 2)],
        ids=["fill-solo", "read-solo", "mixed-solo", "mixed-2proc"],
    )
    def test_batched_equals_per_op(self, batch_knob, write_fraction, processes):
        batch_knob(0)
        per_op = _db_bench_digest(write_fraction, processes)
        batch_knob(64)
        batched = _db_bench_digest(write_fraction, processes)
        assert batched == per_op

    def test_batch_size_does_not_matter(self, batch_knob):
        """Any chunk size must yield the same stream, not just the default."""
        batch_knob(3)
        small = _db_bench_digest(0.5, 1)
        batch_knob(256)
        large = _db_bench_digest(0.5, 1)
        assert small == large


class TestYcsbBatchingIdentity:
    @pytest.mark.parametrize("workload", list("ABCDEF"))
    def test_batched_equals_per_op(self, batch_knob, workload):
        batch_knob(0)
        per_op = _ycsb_digest(workload, clients=1)
        batch_knob(64)
        batched = _ycsb_digest(workload, clients=1)
        assert batched == per_op

    def test_concurrent_clients(self, batch_knob):
        """Workload A (insert-heavy update mix) with two phase-locked
        clients: the batched path may not warp the clock here."""
        batch_knob(0)
        per_op = _ycsb_digest("A", clients=2)
        batch_knob(64)
        batched = _ycsb_digest("A", clients=2)
        assert batched == per_op


class TestDstSeedReplayAcrossBatchKnob:
    """Storm and serving-chaos seeds replay md5-identically with the knob
    flipped — the shared write/read machinery under the fast paths must not
    leak batching state into non-batched harnesses."""

    def test_storm_seed(self, batch_knob):
        batch_knob(0)
        per_op = _storm_digest(seed=3)
        batch_knob(64)
        batched = _storm_digest(seed=3)
        assert batched == per_op

    def test_serving_chaos_seed(self, batch_knob):
        batch_knob(0)
        per_op = _serving_digest(seed=0)
        batch_knob(64)
        batched = _serving_digest(seed=0)
        assert batched == per_op
