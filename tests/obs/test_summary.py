"""Tests for the tenant SLO digest (``repro.obs.summary``)."""

from __future__ import annotations

from repro.obs import tenant_slo_digest


def legacy_row(name="a", ops=10, p99=2.0, slo=5.0, **extra):
    row = {
        "tenant": name,
        "users": 100,
        "ops": ops,
        "kops": 1.0,
        "p50_us": 1.0,
        "p99_us": p99,
        "slo_p99_us": slo,
        "slo_violation_frac": 0.0,
        "throttled_frac": 0.0,
    }
    row.update(extra)
    return row


class TestLegacyFormat:
    def test_zero_fault_digest_is_byte_identical_to_legacy(self):
        """Rows without resilience columns (or with them all zero) render
        the exact pre-resilience format — serving baselines must not move."""
        rows = [legacy_row("a"), legacy_row("b", p99=9.0)]
        expected = (
            "tenant-slo digest: 1/2 tenants meeting p99 SLO\n"
            "  a: p99 2.0us vs SLO 5.0us [ok] | 10 ops (1.0 kops) | "
            "0.00% over-SLO | 0.00% throttled\n"
            "  b: p99 9.0us vs SLO 5.0us [MISS] | 10 ops (1.0 kops) | "
            "0.00% over-SLO | 0.00% throttled"
        )
        assert tenant_slo_digest(rows) == expected
        zeroed = [
            legacy_row("a", shed=0, errors=0, fault_ops=0),
            legacy_row("b", p99=9.0, shed=0, errors=0, fault_ops=0),
        ]
        assert tenant_slo_digest(zeroed) == expected

    def test_empty(self):
        assert tenant_slo_digest([]) == "tenant-slo digest: no tenants recorded"


class TestResilienceColumns:
    def test_fully_shed_tenant_does_not_vanish_or_divide_by_zero(self):
        rows = [
            legacy_row("healthy"),
            legacy_row("starved", ops=0, p99=0.0, shed=41, errors=3),
        ]
        text = tenant_slo_digest(rows)
        head = text.splitlines()[0]
        # The starved tenant is excluded from the SLO headline but
        # explicitly accounted for.
        assert head == (
            "tenant-slo digest: 1/1 tenants meeting p99 SLO "
            "(1 with no completed ops)"
        )
        assert "starved: no completed ops | shed 41 | errors 3" in text

    def test_shed_and_error_counts_print_when_nonzero(self):
        text = tenant_slo_digest([legacy_row("a", shed=7, errors=2)])
        assert "| shed 7 | errors 2" in text

    def test_fault_window_tail_split_prints_when_faults_ran(self):
        row = legacy_row(
            "a", fault_ops=12, fault_p99_us=900.0, steady_p99_us=40.0
        )
        text = tenant_slo_digest([row])
        assert "fault-window p99 900.0us vs steady 40.0us" in text
        quiet = tenant_slo_digest([legacy_row("a")])
        assert "fault-window" not in quiet
