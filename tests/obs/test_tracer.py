"""Tests for the virtual-time tracing layer (repro.obs)."""

import json

from repro.lsm.db import DB
from repro.lsm.write_controller import StallMetrics, WriteController
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    active_tracer,
    busiest_device_windows,
    set_active_tracer,
    stall_episodes,
    summarize,
)
from repro.sim.engine import Engine
from repro.storage.profiles import xpoint_ssd
from tests.conftest import make_db, run_op, tiny_options


def spans(tracer):
    return [e for e in tracer.iter_events() if e[1] == "X"]


def instants(tracer):
    return [e for e in tracer.iter_events() if e[1] == "i"]


class TestTracerCore:
    def test_span_records_start_duration_and_merged_args(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)

        def proc():
            engine.tracer.span_begin("work", "step", {"a": 1})
            yield 500
            engine.tracer.span_end("work", {"b": 2})

        engine.process(proc())
        engine.run()
        assert spans(tracer) == [("work", "X", "step", 0, 500, {"a": 1, "b": 2})]

    def test_nested_spans_pop_innermost_first(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)

        def proc():
            engine.tracer.span_begin("t", "outer")
            yield 100
            engine.tracer.span_begin("t", "inner")
            yield 50
            engine.tracer.span_end("t")
            yield 100
            engine.tracer.span_end("t")

        engine.process(proc())
        engine.run()
        assert spans(tracer) == [
            ("t", "X", "inner", 100, 50, None),
            ("t", "X", "outer", 0, 250, None),
        ]

    def test_unmatched_span_end_is_dropped(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)
        engine.tracer.span_end("t", {"ignored": True})
        assert spans(tracer) == []

    def test_instant_and_counter(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)
        engine.tracer.instant("t", "tick")
        engine.tracer.counter("t", "depth", 3)
        events = list(tracer.iter_events())
        assert ("t", "i", "tick", 0, 0, None) in events
        assert ("t", "C", "depth", 0, 0, {"value": 3}) in events

    def test_device_request_emits_wait_then_service(self):
        tracer = Tracer()
        view = tracer.bind(Engine())
        view.device_request("device/x", "write", 0, 100, 300, 4096, True)
        assert spans(tracer) == [
            ("device/x", "X", "write.wait", 0, 100, None),
            ("device/x", "X", "write", 100, 200, {"bytes": 4096, "sequential": True}),
        ]

    def test_device_request_without_queueing_has_no_wait(self):
        tracer = Tracer()
        view = tracer.bind(Engine())
        view.device_request("device/x", "read", 50, 50, 90, 512, False)
        assert [s[2] for s in spans(tracer)] == ["read"]

    def test_engine_hooks_record_lifecycle(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)

        def proc():
            yield 10

        engine.process(proc(), name="worker")
        engine.run()
        names = [name for _, _, name, _, _, _ in instants(tracer)]
        assert "spawn:worker" in names
        assert "finish:worker" in names

    def test_two_engines_get_distinct_prefixed_tracks(self):
        tracer = Tracer()
        a, b = Engine(tracer=tracer), Engine(tracer=tracer)
        a.tracer.instant("t", "from-a")
        b.tracer.instant("t", "from-b")
        tracks = {track for track, _, name, _, _, _ in instants(tracer)}
        assert tracks == {"engine-1/t", "engine-2/t"}

    def test_max_events_counts_drops(self):
        tracer = Tracer(max_events=2)
        view = tracer.bind(Engine())
        for i in range(5):
            view.instant("t", f"e{i}")
        assert tracer.num_events == 2
        assert tracer.dropped == 3
        assert tracer.to_dict()["otherData"] == {"dropped_events": 3}

    def test_export_writes_valid_chrome_trace(self, tmp_path):
        tracer = Tracer()
        engine = Engine(tracer=tracer)

        def proc():
            engine.tracer.span_begin("track", "job")
            yield 2000
            engine.tracer.span_end("track")

        engine.process(proc(), name="p")
        engine.run()
        path = tmp_path / "trace.json"
        written = tracer.export(str(path))
        assert written == tracer.num_events > 0

        data = json.loads(path.read_text())
        events = data["traceEvents"]
        meta = {e["name"] for e in events if e["ph"] == "M"}
        assert meta == {"process_name", "thread_name"}
        job = next(e for e in events if e["ph"] == "X")
        assert job["name"] == "job"
        assert job["ts"] == 0.0
        assert job["dur"] == 2.0  # 2000 ns -> 2 us
        inst = next(e for e in events if e["ph"] == "i")
        assert inst["s"] == "t"


class TestNullTracer:
    def test_engine_defaults_to_null_tracer(self):
        assert Engine().tracer is NULL_TRACER

    def test_bind_returns_self_and_hooks_are_noops(self):
        null = NullTracer()
        assert null.bind(Engine()) is null
        assert null.enabled is False
        null.span_begin("t", "n")
        null.span_end("t")
        null.complete("t", "n", 0, 1)
        null.instant("t", "n")
        null.counter("t", "n", 1)
        null.process_spawn("p")
        null.process_finish("p", True)
        null.device_request("t", "write", 0, 0, 1, 10, True)
        null.gc_pause("t", 0, 1)
        null.stall_transition("normal", "delayed", 1.0)
        null.write_group(0, 1, 2)

    def test_set_active_tracer_scopes_new_engines(self):
        tracer = Tracer()
        set_active_tracer(tracer)
        try:
            assert active_tracer() is tracer
            assert Engine().tracer.tracer is tracer
        finally:
            set_active_tracer(None)
        assert active_tracer() is NULL_TRACER
        assert Engine().tracer is NULL_TRACER


def _metrics(l0=0):
    return StallMetrics(
        l0_files=l0,
        immutable_memtables=0,
        max_immutable_memtables=1,
        pending_compaction_bytes=0,
    )


class TestSummaries:
    def test_write_controller_transitions_become_episodes(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)
        wc = WriteController(engine, tiny_options())

        def proc():
            wc.update(_metrics(l0=20))  # normal -> delayed
            yield 1000
            wc.update(_metrics(l0=36))  # delayed -> stopped
            yield 2000
            wc.update(_metrics(l0=0))  # stopped -> normal

        engine.process(proc())
        engine.run()
        names = [name for _, _, name, _, _, _ in instants(tracer)]
        assert "normal->delayed" in names
        assert "delayed->stopped" in names
        assert "stopped->normal" in names
        assert stall_episodes(tracer) == [
            ("write_controller", 0, 3000, ["delayed", "stopped"])
        ]

    def test_open_episode_has_no_end(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)
        wc = WriteController(engine, tiny_options())
        wc.update(_metrics(l0=20))
        (track, start, end, states) = stall_episodes(tracer)[0]
        assert end is None
        assert states == ["delayed"]

    def test_busiest_device_windows_ranked_and_waits_excluded(self):
        tracer = Tracer()
        view = tracer.bind(Engine())
        view.complete("device/x", "write", 0, 80)
        view.complete("device/x", "write.wait", 100, 900)  # excluded
        view.complete("device/x", "read", 150, 20)
        windows = busiest_device_windows(tracer, window_ns=100)
        assert windows == [
            ("device/x", 0, 80, 0.8),
            ("device/x", 100, 20, 0.2),
        ]

    def test_summarize_renders_highlights(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)
        wc = WriteController(engine, tiny_options())

        def proc():
            wc.update(_metrics(l0=20))
            yield 5_000_000
            wc.update(_metrics(l0=0))

        engine.process(proc())
        engine.tracer.complete("device/x", "write", 0, 1_000_000)
        engine.run()
        text = summarize(tracer)
        assert "trace summary:" in text
        assert "write stalls: 1 episode(s)" in text
        assert "busiest device intervals:" in text

    def test_summarize_empty_trace(self):
        text = summarize(Tracer())
        assert "write stalls: none recorded" in text
        assert "no device spans recorded" in text


class TestTracedDBRun:
    def test_full_db_run_produces_expected_span_families(self):
        """A traced end-to-end run covers device, flush, compaction, and
        write-group spans — what the acceptance trace must contain."""
        tracer = Tracer()
        engine = Engine(tracer=tracer)
        db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())
        assert isinstance(db, DB)

        def writer():
            for i in range(4000):
                yield from db.put(b"%08d" % i, b"v" * 64)
            yield from db.flush_all()

        run_op(engine, writer())
        engine.run()

        x_names = {(track, name) for track, _, name, _, _, _ in spans(tracer)}
        tracks = {track for track, name in x_names}
        assert any("device/" in track for track in tracks)
        assert any(name == "write" for _, name in x_names)
        assert any(name == "flush" and track.startswith("flush-")
                   for track, name in x_names)
        assert any(name.startswith("compact L") and track.startswith("compact-")
                   for track, name in x_names)
        assert any(name == "write_group" and track == "db" for track, name in x_names)
        i_names = {name for _, _, name, _, _, _ in instants(tracer)}
        assert any(name.startswith("spawn:") for name in i_names)
        assert "memtable.switch" in i_names

    def test_tracing_off_records_nothing(self):
        engine = Engine()
        db = make_db(engine, profile=xpoint_ssd(), options=tiny_options())

        def writer():
            for i in range(100):
                yield from db.put(b"%08d" % i, b"v" * 64)

        run_op(engine, writer())
        assert engine.tracer is NULL_TRACER
