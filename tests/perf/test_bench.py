"""Tests for the perf-regression report format and CLI."""

import json

import pytest

from repro.perf.bench import (
    CALIBRATION,
    SCHEMA,
    BenchProtocol,
    compare_reports,
    run_benchmarks,
)
from repro.perf.__main__ import main as perf_main


def _report(mode="full", **values):
    benchmarks = {CALIBRATION: {"value": 1.0, "unit": "spins/s"}}
    for name, calibrated in values.items():
        benchmarks[name] = {
            "value": calibrated,
            "calibrated": calibrated,
            "unit": "ops/s",
        }
    return {"schema": SCHEMA, "mode": mode, "benchmarks": benchmarks}


def test_compare_passes_within_threshold():
    ok, lines = compare_reports(
        _report(kernel_churn=1.0, fill=0.80), _report(kernel_churn=0.80, fill=0.81)
    )
    assert ok
    assert any("PASSED" in line for line in lines)


def test_compare_fails_on_regression():
    ok, lines = compare_reports(
        _report(kernel_churn=1.0), _report(kernel_churn=0.70), threshold=0.25
    )
    assert not ok
    assert any("REGRESSION" in line for line in lines)


def test_compare_improvement_never_fails():
    ok, _ = compare_reports(_report(kernel_churn=1.0), _report(kernel_churn=5.0))
    assert ok


def test_compare_mode_mismatch_fails():
    ok, lines = compare_reports(_report(mode="full"), _report(mode="quick"))
    assert not ok
    assert any("mode mismatch" in line for line in lines)


def test_compare_one_sided_benchmarks_are_skipped():
    ok, lines = compare_reports(
        _report(old_bench=1.0), _report(new_bench=1.0)
    )
    assert ok
    assert any("no baseline" in line for line in lines)
    assert any("not measured" in line for line in lines)


def test_run_benchmarks_quick_smoke():
    protocol = BenchProtocol(runs=1, warmup=False, quick=True)
    report = run_benchmarks(protocol, only=["kernel_churn"])
    assert report["schema"] == SCHEMA
    assert report["mode"] == "quick"
    benches = report["benchmarks"]
    # calibration is always included so calibrated ratios exist
    assert CALIBRATION in benches
    churn = benches["kernel_churn"]
    assert churn["value"] > 0
    assert churn["unit"] == "events/s"
    assert churn["calibrated"] > 0
    assert len(churn["samples"]) == 1


def test_run_benchmarks_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown benchmark"):
        run_benchmarks(BenchProtocol(runs=1, quick=True), only=["nope"])


def test_cli_report_baseline_compare_roundtrip(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    baseline = tmp_path / "baseline.json"
    argv = [
        "--quick", "--runs", "1", "--only", "kernel_churn",
        "--out", str(out), "--update-baseline", str(baseline),
    ]
    assert perf_main(argv) == 0
    report = json.loads(out.read_text())
    assert report["schema"] == SCHEMA
    assert json.loads(baseline.read_text()) == report

    # comparing a run against its own baseline must pass...
    assert perf_main([
        "--quick", "--runs", "1", "--only", "kernel_churn",
        "--out", str(out), "--compare", str(baseline),
    ]) == 0

    # ...and a doctored 2x-slower baseline must fail the check
    for entry in report["benchmarks"].values():
        entry["value"] *= 2
        if "calibrated" in entry:
            entry["calibrated"] *= 2
    baseline.write_text(json.dumps(report))
    assert perf_main([
        "--quick", "--runs", "1", "--only", "kernel_churn",
        "--out", str(out), "--compare", str(baseline),
    ]) == 1
