"""Tests for the deterministic parallel sweep runner (``repro.perf.parallel``).

The contract under test: any ``jobs`` value returns results in point order,
bit-identical to the serial loop, and worker failures surface in the parent.
The workers here are module-level (the multiprocessing pickling contract).
"""

import pytest

from repro.errors import SimulationError
from repro.perf.parallel import default_jobs, imap_points, map_points


def square(x):
    return x * x


def boom(x):
    if x == 3:
        raise ValueError(f"bad point {x}")
    return x


def simulate_point(point):
    """A tiny real simulation per point: results must not depend on jobs."""
    from repro.sim.engine import Engine
    from repro.sim.rng import RandomStream

    seed, n = point
    engine = Engine()
    rng = RandomStream(seed)
    out = []

    def proc():
        for _ in range(n):
            yield rng.randint(1, 9)
            out.append(engine.now)

    engine.process(proc(), name="p")
    engine.run()
    return out


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_map_points_order_and_values(jobs):
    points = list(range(20))
    assert map_points(square, points, jobs=jobs) == [p * p for p in points]


@pytest.mark.parametrize("jobs", [1, 3])
def test_imap_points_streams_in_order(jobs):
    points = list(range(12))
    seen = list(imap_points(square, points, jobs=jobs))
    assert seen == [p * p for p in points]


def test_parallel_matches_serial_on_simulations():
    points = [(seed, 50 + seed) for seed in range(6)]
    serial = map_points(simulate_point, points, jobs=1)
    parallel = map_points(simulate_point, points, jobs=3)
    assert parallel == serial


@pytest.mark.parametrize("jobs", [1, 2])
def test_worker_exception_propagates(jobs):
    with pytest.raises(ValueError, match="bad point 3"):
        map_points(boom, list(range(6)), jobs=jobs)


def test_single_point_never_forks():
    # len(points) <= 1 must take the in-process path even with jobs > 1
    # (closures are fine there; a pool would fail to pickle this lambda).
    assert map_points(lambda x: x + 1, [41], jobs=8) == [42]
    assert list(imap_points(lambda x: x + 1, [41], jobs=8)) == [42]


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert default_jobs() == 6
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert default_jobs() == 1


def test_harness_run_points_parallel_matches_serial():
    """End-to-end: a real figure sweep point through the worker boundary."""
    from repro.harness import experiments as ex
    from repro.harness.presets import preset_by_name
    from repro.sim.units import seconds

    preset = preset_by_name("tiny")
    points = [
        ex.WorkloadPoint(
            device=device,
            preset=preset,
            write_fraction=1.0,
            duration_ns=int(seconds(0.05)),
            seed=5,
        )
        for device in ("sata-flash", "xpoint")
    ]
    old = ex.get_jobs()
    try:
        ex.set_jobs(1)
        serial = ex.run_points(points)
        ex.set_jobs(2)
        parallel = ex.run_points(points)
    finally:
        ex.set_jobs(old)
    assert len(serial) == len(parallel) == 2
    for s, p in zip(serial, parallel):
        assert p.result.ops == s.result.ops
        assert p.result.summary() == s.result.summary()
        assert p.max_waiting == s.max_waiting


def test_unknown_controller_name_fails_fast():
    from repro.harness import experiments as ex
    from repro.harness.presets import preset_by_name

    point = ex.WorkloadPoint(
        device="sata-flash",
        preset=preset_by_name("tiny"),
        write_fraction=1.0,
        duration_ns=1000,
        controller="definitely-not-registered",
    )
    with pytest.raises((KeyError, SimulationError)):
        ex.run_point(point)
