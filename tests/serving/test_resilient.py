"""Tests for the replicated resilient serving stack (``repro.serving.resilient``)."""

from __future__ import annotations

import pytest

from repro.errors import ShedError, WorkloadError
from repro.faults import CRASH, PARTITION, WRITE_ERROR, FaultSchedule, FaultSpec
from repro.serving.fleet import default_tenants
from repro.serving.resilient import (
    ResilientServingConfig,
    ResilientServingStack,
)
from repro.sim.units import ms, us


def run_gen(engine, gen, name="test-op"):
    proc = engine.process(gen, name=name)
    proc.callbacks.append(lambda _ev: None)
    while not proc.done:
        nxt = engine.peek()
        assert nxt is not None, f"{name} deadlocked at t={engine.now}"
        engine.run(until=nxt)
    if proc.exception is not None:
        raise proc.exception
    return proc.value


def make_stack(shards=2, replicas=3, chaos=None, seed=1):
    stack = ResilientServingStack(
        ResilientServingConfig(shards=shards, replicas=replicas, seed=seed),
        chaos=chaos,
    )
    stack.start()
    return stack


class TestConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ResilientServingConfig(shards=0)
        with pytest.raises(WorkloadError):
            ResilientServingConfig(replicas=1)

    def test_total_nodes(self):
        assert ResilientServingConfig(shards=3, replicas=3).total_nodes == 9


class TestDataPath:
    def test_put_get_round_trip_through_replication(self):
        stack = make_stack()
        session = stack.session("t", 0)
        seq = run_gen(stack.engine, stack.put(session, b"user42"))
        assert seq >= 1
        value = run_gen(stack.engine, stack.get(session, b"user42"))
        assert value is not None and value.endswith(b"user42")
        assert run_gen(stack.engine, stack.verify_writes(), "audit") == []
        assert stack.ryw_violations() == []
        assert stack.ops_started == stack.ops_resolved == 2
        stack.shutdown()

    def test_scan_merges_across_shard_groups(self):
        stack = make_stack()
        session = stack.session("t", 0)
        keys = [b"k%03d" % i for i in range(16)]
        shards_hit = {stack.shard_of(k) for k in keys}
        assert shards_hit == {0, 1}  # the scan genuinely scatter-gathers
        for key in keys:
            run_gen(stack.engine, stack.put(session, key))
        rows = run_gen(stack.engine, stack.scan(session, b"k", b"l"), "scan")
        assert [k for k, _v in rows] == keys
        limited = run_gen(
            stack.engine, stack.scan(session, b"k", b"l", limit=5), "scan"
        )
        assert [k for k, _v in limited] == keys[:5]
        stack.shutdown()

    def test_audit_rejects_a_phantom_ack(self):
        """The no-loss oracle is not vacuous: an acked value that never
        reached replication is reported."""
        stack = make_stack(shards=1)
        session = stack.session("t", 0)
        run_gen(stack.engine, stack.put(session, b"key"))
        stack._issued[b"key"].add(b"phantom")
        stack._acked[b"key"].append((999, b"phantom"))
        violations = run_gen(stack.engine, stack.verify_writes(), "audit")
        assert len(violations) == 1 and b"key" in violations[0].encode() or "key" in violations[0]
        stack.shutdown()


class TestBrownout:
    def test_quorum_loss_sheds_writes_before_reads(self):
        stack = make_stack(shards=2)
        group = stack.groups[0]
        assert group.write_quorum_reachable()
        stack.admission.check("t", 0, True, stack.engine.now)  # no shed
        group.network.partition([group.cluster.leader_id])  # leader alone
        assert not group.write_quorum_reachable()
        with pytest.raises(ShedError) as exc_info:
            stack.admission.check("t", 0, True, stack.engine.now)
        assert exc_info.value.reason == "brownout-write"
        stack.admission.check("t", 0, False, stack.engine.now)  # reads pass
        stack.admission.check("t", 1, True, stack.engine.now)  # other group fine
        group.network.heal()
        stack.admission.check("t", 0, True, stack.engine.now)
        stack.shutdown()

    def test_error_budget_backs_off_a_failing_tenant(self):
        stack = make_stack()
        spec = stack.admission.error_budget_spec
        now = stack.engine.now
        for _ in range(spec.max_errors):
            stack.admission.record_error("victim", now)
        with pytest.raises(ShedError) as exc_info:
            stack.admission.check("victim", 0, False, now)
        assert exc_info.value.reason == "error-budget"
        stack.admission.check("healthy", 0, False, now)  # others unaffected
        # The budget is a *rolling* window: it drains with time.
        later = now + spec.window_ns + 1
        stack.admission.check("victim", 0, False, later)
        stack.shutdown()


class TestChaosRouting:
    def test_crash_specs_are_extracted_for_the_harness(self):
        chaos = FaultSchedule(
            [
                FaultSpec(CRASH, at_time=ms(5), node=4),
                FaultSpec(
                    WRITE_ERROR,
                    at_time=ms(1),
                    until_time=ms(2),
                    count=100,
                    transient=True,
                    node=2,
                ),
            ]
        )
        stack = ResilientServingStack(
            ResilientServingConfig(shards=2, replicas=3), chaos=chaos
        )
        assert [s.node for s in stack.crash_specs] == [4]
        # The write_error spec routed to global node 2 (group 0, replica 2)
        # and nowhere else.
        assert len(stack.groups[0].injectors[2]._device_states) == 1
        assert all(
            len(stack.groups[1].injectors[r]._device_states) == 0
            for r in range(3)
        )

    def test_partitions_localize_to_the_groups_they_cross(self):
        chaos = FaultSchedule(
            [
                FaultSpec(
                    PARTITION,
                    at_time=ms(1),
                    until_time=ms(3),
                    nodes=(0,),  # isolates group 0's replica 0 only
                )
            ]
        )
        stack = ResilientServingStack(
            ResilientServingConfig(shards=2, replicas=3), chaos=chaos
        )
        assert len(stack.groups[0].network._windows) == 1
        assert len(stack.groups[1].network._windows) == 0

    def test_global_crash_control_maps_to_group_local_node(self):
        stack = make_stack(shards=2, replicas=3)
        stack.crash_global(4)  # group 1, local node 1
        assert not stack.groups[1].cluster.nodes[1].alive
        assert all(n.alive for n in stack.groups[0].cluster.nodes)
        stack.restart_global(4)
        assert stack.groups[1].cluster.nodes[1].alive
        stack.shutdown()


class TestFleetReporting:
    def test_zero_fault_fleet_and_render(self):
        stack = make_stack()
        tenants = default_tenants(2, users_per_tenant=20_000, key_count=8, clients=1)
        workloads = stack.build_fleet(tenants)
        run_gen(stack.engine, stack.prefill(workloads), "prefill")
        end = stack.engine.now + ms(30)
        procs = stack.spawn_fleet(workloads, end)
        while not all(p.done for p in procs):
            nxt = stack.engine.peek()
            assert nxt is not None, "fleet deadlocked"
            stack.engine.run(until=nxt)
        assert stack.ops_started == stack.ops_resolved
        assert run_gen(stack.engine, stack.verify_writes(), "audit") == []
        assert stack.ryw_violations() == []
        result = stack.collect(workloads, ms(30))
        text = result.render()
        assert "resilient serving" in text
        assert "client layer:" in text
        for row in result.tenant_rows:
            assert row["shed"] == 0 and row["errors"] == 0
        assert result.client_row["deadline_exceeded"] == 0
        stack.shutdown()

    def test_fault_window_split_routes_latencies(self):
        stack = make_stack()
        stack.fault_windows = [(0, us(1))]
        assert stack.in_fault_window(0)
        assert not stack.in_fault_window(us(2))
