"""Tests for per-shard filesystem views (``repro.serving.shardfs``)."""

import pytest

from repro.serving.shardfs import ShardFsView
from tests.conftest import make_fs


def test_prefix_validation(engine):
    fs = make_fs(engine)
    with pytest.raises(ValueError):
        ShardFsView(fs, "")
    with pytest.raises(ValueError):
        ShardFsView(fs, "a/b")


def test_paths_translate_and_namespaces_are_disjoint(engine):
    fs = make_fs(engine)
    view0 = ShardFsView(fs, "shard-0")
    view1 = ShardFsView(fs, "shard-1")
    view0.create("MANIFEST")
    assert view0.exists("MANIFEST")
    assert not view1.exists("MANIFEST")
    assert fs.exists("shard-0/MANIFEST")


def test_list_strips_prefix(engine):
    fs = make_fs(engine)
    view = ShardFsView(fs, "shard-3")
    view.create("sst/000001.sst")
    view.create("sst/000002.sst")
    view.create("wal/000003.log")
    assert sorted(view.list(prefix="sst/")) == [
        "sst/000001.sst",
        "sst/000002.sst",
    ]
    assert "shard-3/sst/000001.sst" in fs.list()


def test_delete_translates(engine):
    fs = make_fs(engine)
    view = ShardFsView(fs, "shard-0")
    view.create("wal/1.log")
    view.delete("wal/1.log")
    assert not fs.exists("shard-0/wal/1.log")


def test_install_synced_translates(engine):
    fs = make_fs(engine)
    view = ShardFsView(fs, "shard-0")
    f = view.install_synced("sst/9.sst", 4096)
    assert f is not None
    assert fs.exists("shard-0/sst/9.sst")


def test_shared_state_delegates(engine):
    """Space accounting and the device are the shared filesystem's."""
    fs = make_fs(engine)
    view0 = ShardFsView(fs, "shard-0")
    view1 = ShardFsView(fs, "shard-1")
    assert view0.device is fs.device
    assert view0.page_cache is fs.page_cache
    before = fs.free_bytes()
    view0.install_synced("sst/1.sst", 1 << 20)
    after = fs.free_bytes()
    assert after < before
    assert view1.free_bytes() == after  # one joint budget, seen by all views
