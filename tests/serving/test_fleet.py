"""Tests for the tenant fleet generator (``repro.serving.fleet``)."""

import pytest

from repro.errors import WorkloadError
from repro.serving.fleet import (
    TenantSpec,
    TenantWorkload,
    default_tenants,
    tenant_key,
)
from repro.sim.rng import RandomStream
from repro.sim.units import seconds
from repro.workloads.ycsb import YcsbSpec


def make_spec(**overrides):
    base = dict(name="t0", users=1000, key_count=100, clients=2)
    base.update(overrides)
    return TenantSpec(**base)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_spec(users=0)
        with pytest.raises(WorkloadError):
            make_spec(key_count=0)
        with pytest.raises(WorkloadError):
            make_spec(ops_per_user_per_sec=0.0)
        with pytest.raises(WorkloadError):
            make_spec(diurnal_amplitude=1.0)
        with pytest.raises(WorkloadError):
            make_spec(hot_migration_stride=-1)

    def test_aggregate_rate(self):
        spec = make_spec(users=2000, ops_per_user_per_sec=0.1)
        assert spec.aggregate_rate == pytest.approx(200.0)

    def test_rate_multiplier_flat_without_amplitude(self):
        spec = make_spec()
        assert spec.rate_multiplier(0) == 1.0
        assert spec.rate_multiplier(10**9) == 1.0

    def test_rate_multiplier_oscillates(self):
        spec = make_spec(
            diurnal_amplitude=0.5, diurnal_period_ns=seconds(4.0)
        )
        peak = spec.rate_multiplier(seconds(1.0))  # sin at quarter period
        trough = spec.rate_multiplier(seconds(3.0))
        assert peak == pytest.approx(1.5)
        assert trough == pytest.approx(0.5)
        assert spec.rate_multiplier(0) == pytest.approx(1.0)


class TestTenantKey:
    def test_prefix_isolates_tenants(self):
        assert tenant_key(3, 7).startswith(b"cf03/")
        assert tenant_key(4, 7).startswith(b"cf04/")

    def test_orders_within_tenant(self):
        keys = [tenant_key(1, i) for i in (0, 5, 99, 1000)]
        assert keys == sorted(keys)


class TestTenantWorkload:
    @pytest.mark.parametrize("distribution", ["zipfian", "latest", "uniform"])
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_pick_index_stays_in_range(self, distribution, seed):
        spec = make_spec(
            key_count=50,
            mix=YcsbSpec("m", read=1.0, distribution=distribution),
        )
        wl = TenantWorkload(0, spec, seed)
        rng = RandomStream(seed, "fleet-test")
        for now in (0, 10**6, 10**9, 7 * 10**9):
            for _ in range(200):
                assert 0 <= wl.pick_index(rng, now) < wl._next_insert

    def test_insert_extends_key_space(self):
        wl = TenantWorkload(0, make_spec(key_count=10), seed=1)
        assert wl.insert_index() == 10
        assert wl.insert_index() == 11
        rng = RandomStream(2, "fleet-test")
        assert all(0 <= wl.pick_index(rng, 0) < 12 for _ in range(300))

    def test_migration_rotates_hot_set(self):
        spec = make_spec(
            key_count=100,
            hot_migration_period_ns=seconds(1.0),
            hot_migration_stride=10,
        )
        wl = TenantWorkload(0, spec, seed=3)
        assert wl._migration_offset(0) == 0
        assert wl._migration_offset(seconds(1.5)) == 10
        assert wl._migration_offset(seconds(3.0)) == 30
        # Rank 0 maps to a rotated key index after a period elapses.
        assert (0 + wl._migration_offset(seconds(1.5))) % 100 == 10

    def test_all_keys_cover_initial_population(self):
        wl = TenantWorkload(2, make_spec(key_count=5), seed=1)
        keys = wl.all_keys()
        assert len(keys) == 5
        assert all(k.startswith(b"cf02/") for k in keys)
        assert keys == sorted(keys)


class TestDefaultTenants:
    def test_shapes(self):
        specs = default_tenants(6, users_per_tenant=1000, key_count=200)
        assert len(specs) == 6
        assert [s.name for s in specs] == [f"tenant-{i:02d}" for i in range(6)]
        assert all(s.users == 1000 and s.key_count == 200 for s in specs)
        # Mixes cycle: the population is heterogeneous by construction.
        assert len({s.mix.name for s in specs}) > 1
        # Some tenants migrate their hot keys, most do not.
        migrators = [s for s in specs if s.hot_migration_period_ns > 0]
        assert 0 < len(migrators) < len(specs)

    def test_phases_spread_over_the_day(self):
        specs = default_tenants(4, users_per_tenant=100)
        assert len({s.diurnal_phase for s in specs}) == 4
