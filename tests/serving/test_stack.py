"""Integration tests for the serving stack (``repro.serving.stack``)."""

import pytest

from repro.errors import WorkloadError
from repro.serving.fleet import TenantSpec, TenantWorkload, tenant_key
from repro.serving.stack import ServingConfig, ServingStack
from repro.sim.units import kb, seconds
from repro.workloads.ycsb import YcsbSpec
from tests.conftest import run_op


def tiny_config(**overrides):
    base = dict(
        shards=2,
        device="xpoint",
        seed=1,
        block_cache_bytes=kb(64),
        write_buffer_budget=kb(256),
    )
    base.update(overrides)
    return ServingConfig(**base)


def tiny_tenants(n=2, key_count=300):
    return [
        TenantSpec(
            name=f"t{i}",
            users=20_000,
            key_count=key_count,
            clients=2,
            mix=YcsbSpec("mixed", read=0.6, update=0.3, insert=0.05, scan=0.05),
        )
        for i in range(n)
    ]


class TestServingConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            tiny_config(shards=0)
        with pytest.raises(WorkloadError):
            tiny_config(write_buffer_budget=0)
        with pytest.raises(WorkloadError):
            tiny_config(admission_headroom=0.0)


class TestServingStack:
    def test_shared_plumbing(self):
        """Every shard DB hangs off the one cache, budget and device."""
        stack = ServingStack(tiny_config(shards=3))
        assert len(stack.dbs) == 3
        assert stack.write_buffer_manager.num_dbs == 3
        for shard, db in enumerate(stack.dbs):
            assert db.block_cache is stack.block_cache
            assert db.write_buffer_manager is stack.write_buffer_manager
            assert db._cache_ns == shard
            assert db.fs.device is stack.machine.fs.device

    def test_routed_get_after_prefill(self):
        stack = ServingStack(tiny_config())
        workloads = [
            TenantWorkload(i, spec, stack.config.seed)
            for i, spec in enumerate(tiny_tenants(key_count=100))
        ]
        stack.prefill_fleet(workloads)
        for tenant in range(2):
            for index in (0, 42, 99):
                value = run_op(stack.engine, stack.get(tenant_key(tenant, index)))
                assert value is not None

    def test_scan_scatter_gathers_across_shards(self):
        """A range scan merges results from every shard in key order."""
        stack = ServingStack(tiny_config())
        workloads = [TenantWorkload(0, tiny_tenants(1, key_count=50)[0], 1)]
        stack.prefill_fleet(workloads)
        rows = run_op(
            stack.engine,
            stack.scan(tenant_key(0, 0), tenant_key(0, 49), limit=20),
        )
        keys = [k for k, _v in rows]
        assert len(keys) == 20
        assert keys == sorted(keys)
        # The scanned range genuinely spans both shards (hash scatter).
        shards_hit = {stack.shard_for(k) for k in keys}
        assert shards_hit == {0, 1}

    def test_run_fleet_reports_everything(self):
        stack = ServingStack(tiny_config())
        result = stack.run_fleet(tiny_tenants(), duration_ns=seconds(0.1))
        assert result.total_ops > 0
        assert result.total_users == 40_000
        assert len(result.tenant_rows) == 2
        assert len(result.shard_rows) == 2
        assert result.cache_row["capacity_bytes"] == kb(64)
        assert result.wbm_row["budget_bytes"] == kb(256)
        # Shared cache honors its joint byte budget across both shards.
        assert result.cache_row["used_bytes"] <= result.cache_row["capacity_bytes"]
        rendered = result.render()
        assert "tenant-slo digest:" in rendered
        assert "shared block cache:" in rendered
        assert "write-buffer budget:" in rendered

    def test_run_fleet_requires_tenants(self):
        stack = ServingStack(tiny_config())
        with pytest.raises(WorkloadError):
            stack.run_fleet([], duration_ns=seconds(0.01))

    def test_deterministic_across_fresh_stacks(self):
        def run():
            stack = ServingStack(tiny_config())
            return stack.run_fleet(tiny_tenants(), duration_ns=seconds(0.1))

        a, b = run(), run()
        assert a.tenant_rows == b.tenant_rows
        assert a.shard_rows == b.shard_rows
        assert a.cache_row == b.cache_row
        assert a.wbm_row == b.wbm_row
