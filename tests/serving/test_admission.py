"""Tests for admission control (``repro.serving.admission``)."""

import pytest

from repro.errors import WorkloadError
from repro.lsm.options import Options
from repro.lsm.write_controller import DELAYED, STOPPED, WriteController
from repro.serving.admission import (
    MIN_PRESSURE,
    STOP_FACTOR,
    AdmissionController,
    TenantBudget,
    TokenBucket,
)
from repro.sim.engine import Engine
from repro.sim.units import SEC


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TokenBucket(0)
        with pytest.raises(WorkloadError):
            TokenBucket(-5.0)
        with pytest.raises(WorkloadError):
            TokenBucket(100, burst=0)

    def test_paces_to_configured_rate(self):
        """Back-to-back arrivals are spaced one token interval apart."""
        bucket = TokenBucket(1000.0, burst=1)  # token = 1 ms
        token_ns = SEC // 1000
        assert bucket.reserve(0) == 0
        for i in range(1, 5):
            assert bucket.reserve(0) == i * token_ns

    def test_burst_admits_free_then_paces(self):
        """A full bucket admits exactly ``burst`` ops with zero delay."""
        bucket = TokenBucket(1000.0, burst=4)
        free = 0
        while bucket.reserve(0) == 0:
            free += 1
        assert free == 4

    def test_idle_credit_capped_at_burst(self):
        """Long idle banks at most ``burst`` tokens of credit."""
        bucket = TokenBucket(1000.0, burst=2)
        while bucket.reserve(0) == 0:
            pass  # drain the initial credit
        later = 10 * SEC
        free = 0
        while bucket.reserve(later) == 0:
            free += 1
        assert free == 2

    def test_scale_tightens_rate(self):
        """scale < 1 stretches the token interval for that reservation."""
        token_ns = SEC // 1000
        full = TokenBucket(1000.0, burst=1)
        full.reserve(0)
        squeezed = TokenBucket(1000.0, burst=1)
        squeezed.reserve(0, scale=0.5)
        assert full.reserve(0) == token_ns
        assert squeezed.reserve(0, scale=0.5) == 2 * token_ns

    def test_scale_floored_at_min_pressure(self):
        """scale = 0 must not zero the rate (clients must keep probing)."""
        bucket = TokenBucket(1000.0, burst=1)
        bucket.reserve(0, scale=0.0)
        delay = bucket.reserve(0, scale=0.0)
        assert delay == round(SEC / (1000.0 * MIN_PRESSURE))

    def test_deterministic(self):
        a, b = TokenBucket(777.0, burst=3), TokenBucket(777.0, burst=3)
        arrivals = [0, 100, 100, 5_000_000, 5_000_001, 9_000_000]
        assert [a.reserve(t) for t in arrivals] == [
            b.reserve(t) for t in arrivals
        ]


def make_controller(**overrides):
    return WriteController(Engine(), Options(**overrides))


class TestAdmissionController:
    def test_unbudgeted_tenant_passes_free(self):
        admission = AdmissionController([])
        assert admission.admit("nobody", now=0) == 0
        assert admission.stats.get("admitted.nobody") == 0

    def test_throttle_stats(self):
        admission = AdmissionController(
            [], budgets={"t0": TenantBudget(ops_per_sec=1000.0, burst=1)}
        )
        assert admission.admit("t0", now=0) == 0
        delay = admission.admit("t0", now=0)
        assert delay > 0
        assert admission.stats.get("admitted.t0") == 2
        assert admission.stats.get("throttled.t0") == 1
        assert admission.stats.get("throttle_ns.t0") == delay

    def test_pressure_normal(self):
        admission = AdmissionController([make_controller()])
        assert admission.pressure() == 1.0

    def test_pressure_tracks_worst_delayed_shard(self):
        healthy = make_controller()
        delayed = make_controller()
        delayed.state = DELAYED
        delayed.delayed_write_rate = (
            float(delayed.options.delayed_write_rate) / 4
        )
        admission = AdmissionController([healthy, delayed])
        assert admission.pressure() == pytest.approx(0.25)

    def test_pressure_stopped_floors_at_trickle(self):
        stopped = make_controller()
        stopped.state = STOPPED
        admission = AdmissionController([make_controller(), stopped])
        assert admission.pressure() == STOP_FACTOR

    def test_stall_pressure_stretches_admission(self):
        """The same arrival pattern throttles harder under a stalled shard."""
        stalled = make_controller()
        stalled.state = STOPPED
        tight = AdmissionController(
            [stalled], budgets={"t": TenantBudget(1000.0, burst=1)}
        )
        loose = AdmissionController(
            [make_controller()], budgets={"t": TenantBudget(1000.0, burst=1)}
        )
        tight.admit("t", 0)
        loose.admit("t", 0)
        assert tight.admit("t", 0) > loose.admit("t", 0)
